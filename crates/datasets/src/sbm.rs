//! Stochastic block model (planted partition) generator.
//!
//! Community-detection experiments need graphs whose ground-truth community
//! structure is known and whose strength is tunable — the planted-partition
//! model provides exactly that: `k` blocks with intra-block edge probability
//! `p_in` and inter-block probability `p_out`. With `p_in ≫ p_out` Louvain
//! should recover the blocks; as they approach each other the structure
//! (and the benefit of community-based reordering) dissolves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_graph::{Csr, GraphBuilder};

/// A planted-partition graph together with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedPartition {
    /// The generated graph.
    pub graph: Csr,
    /// Ground-truth block of every vertex.
    pub blocks: Vec<u32>,
    /// Number of blocks `k`.
    pub num_blocks: usize,
}

/// Generates a stochastic block model graph: `k` equal blocks over `n`
/// vertices, each intra-block pair connected with probability `p_in` and
/// each inter-block pair with probability `p_out`.
///
/// Edge sampling uses geometric skipping, so generation costs
/// `O(n + m)` rather than `O(n²)`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`, or if the probabilities are outside
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use reorderlab_datasets::stochastic_block_model;
///
/// let pp = stochastic_block_model(200, 4, 0.2, 0.01, 7);
/// assert_eq!(pp.num_blocks, 4);
/// assert_eq!(pp.blocks.len(), 200);
/// ```
pub fn stochastic_block_model(
    n: usize,
    k: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> PlantedPartition {
    assert!(k >= 1 && k <= n.max(1), "need 1..=n blocks");
    assert!((0.0..=1.0).contains(&p_in), "p_in must be a probability");
    assert!((0.0..=1.0).contains(&p_out), "p_out must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    // Round-robin block assignment keeps blocks equal-sized without
    // correlating block and id range (the collection-order property is the
    // jitter's job elsewhere; here interleaving also exercises reordering).
    let blocks: Vec<u32> = (0..n as u32).map(|v| v % k as u32).collect();

    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Geometric skipping at the envelope rate p_max over the linearized
    // strictly-upper-triangular pair space, thinned to the landed pair's
    // actual class probability — O(n + m) regardless of n².
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let p_max = p_in.max(p_out);
    if p_max > 0.0 {
        let mut cursor = 0u64;
        while cursor < total_pairs {
            if p_max < 1.0 {
                // Failures before the next envelope success.
                let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let skip = (r.ln() / (1.0 - p_max).ln()).floor() as u64;
                cursor = cursor.saturating_add(skip);
                if cursor >= total_pairs {
                    break;
                }
            }
            let (u, v) = unrank_pair(cursor, n as u64);
            let p_here = if blocks[u as usize] == blocks[v as usize] { p_in } else { p_out };
            // Thinning: envelope hits survive with probability p/p_max.
            if p_here >= p_max || rng.gen::<f64>() < p_here / p_max {
                edges.push((u, v));
            }
            cursor += 1;
        }
    }

    let graph = GraphBuilder::undirected(n).edges(edges).build_expect();
    PlantedPartition { graph, blocks, num_blocks: k }
}

/// Maps a linear index in `[0, n(n-1)/2)` to the corresponding strictly
/// upper-triangular pair `(u, v)`, `u < v`.
fn unrank_pair(index: u64, n: u64) -> (u32, u32) {
    // Row u owns (n - 1 - u) pairs. Find u by solving the triangular sum.
    // cumulative(u) = u*n - u*(u+1)/2 pairs precede row u.
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let before = mid * n - mid * (mid + 1) / 2;
        if before <= index {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let before = u * n - u * (u + 1) / 2;
    let v = u + 1 + (index - before);
    (u as u32, v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrank_covers_all_pairs() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..(n * (n - 1) / 2) {
            let (u, v) = unrank_pair(i, n);
            assert!(u < v && (v as u64) < n, "bad pair ({u},{v}) at {i}");
            assert!(seen.insert((u, v)), "duplicate pair at {i}");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn block_sizes_are_balanced() {
        let pp = stochastic_block_model(100, 4, 0.1, 0.01, 1);
        let mut counts = [0usize; 4];
        for &b in &pp.blocks {
            counts[b as usize] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
    }

    #[test]
    fn edge_density_tracks_probabilities() {
        let n = 400;
        let k = 4;
        let pp = stochastic_block_model(n, k, 0.2, 0.01, 3);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v, _) in pp.graph.edges() {
            if pp.blocks[u as usize] == pp.blocks[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Expected pairs: intra = k * C(100,2) = 4*4950 = 19800 -> ~3960
        // edges; inter = C(400,2) - 19800 = 60000 -> ~600 edges.
        let intra_rate = intra as f64 / 19_800.0;
        let inter_rate = inter as f64 / 60_000.0;
        assert!((intra_rate - 0.2).abs() < 0.03, "intra rate {intra_rate}");
        assert!((inter_rate - 0.01).abs() < 0.005, "inter rate {inter_rate}");
    }

    #[test]
    fn strong_structure_is_detectable() {
        use reorderlab_graph::Components;
        let pp = stochastic_block_model(300, 3, 0.25, 0.002, 9);
        assert!(pp.graph.num_edges() > 1000);
        // Most vertices connect (the intra blocks are dense).
        let c = Components::find(&pp.graph);
        assert!(c.sizes().iter().max().unwrap() > &250);
    }

    #[test]
    fn p_zero_and_one_degenerate() {
        let empty = stochastic_block_model(30, 3, 0.0, 0.0, 5);
        assert_eq!(empty.graph.num_edges(), 0);
        let full_intra = stochastic_block_model(30, 3, 1.0, 0.0, 5);
        // 3 blocks of 10: 3 * C(10,2) = 135 intra edges, no inter.
        assert_eq!(full_intra.graph.num_edges(), 135);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            stochastic_block_model(120, 4, 0.15, 0.01, 11),
            stochastic_block_model(120, 4, 0.15, 0.01, 11)
        );
    }

    #[test]
    #[should_panic(expected = "blocks")]
    fn rejects_zero_blocks() {
        let _ = stochastic_block_model(10, 0, 0.1, 0.1, 0);
    }
}
