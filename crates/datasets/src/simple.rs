//! Deterministic elementary graph families.
//!
//! These are used both as components of the synthetic instance suite and as
//! fixtures with known-optimal orderings in tests (e.g. RCM achieves
//! bandwidth 1 on a path and bandwidth `cols` on a grid).

use reorderlab_graph::{Csr, GraphBuilder};

/// A path graph `0 - 1 - … - (n-1)`.
///
/// # Examples
///
/// ```
/// let g = reorderlab_datasets::path(4);
/// assert_eq!(g.num_edges(), 3);
/// ```
pub fn path(n: usize) -> Csr {
    let edges = (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1));
    GraphBuilder::undirected(n).edges(edges).build_expect()
}

/// A cycle graph on `n >= 3` vertices (for `n < 3` this degenerates to a
/// path).
pub fn cycle(n: usize) -> Csr {
    let mut b = GraphBuilder::undirected(n);
    b = b.edges((0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)));
    if n >= 3 {
        b = b.edge(n as u32 - 1, 0);
    }
    b.build_expect()
}

/// A star: vertex 0 is the hub connected to all others.
pub fn star(n: usize) -> Csr {
    let edges = (1..n as u32).map(|i| (0, i));
    GraphBuilder::undirected(n).edges(edges).build_expect()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Csr {
    let mut b = GraphBuilder::undirected(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b = b.edge(u, v);
        }
    }
    b.build_expect()
}

/// A `rows x cols` 4-neighbor lattice (the skeleton of road networks).
pub fn grid2d(rows: usize, cols: usize) -> Csr {
    let n = rows * cols;
    let mut b = GraphBuilder::undirected(n).reserve(2 * n);
    for r in 0..rows as u32 {
        for c in 0..cols as u32 {
            let v = r * cols as u32 + c;
            if c + 1 < cols as u32 {
                b = b.edge(v, v + 1);
            }
            if r + 1 < rows as u32 {
                b = b.edge(v, v + cols as u32);
            }
        }
    }
    b.build_expect()
}

/// A complete binary tree on `n` vertices (vertex `i` has children `2i+1`,
/// `2i+2`).
pub fn binary_tree(n: usize) -> Csr {
    let mut b = GraphBuilder::undirected(n);
    for v in 1..n as u32 {
        b = b.edge((v - 1) / 2, v);
    }
    b.build_expect()
}

/// `k` disjoint cliques of `size` vertices each, with consecutive cliques
/// bridged by a single edge — a planted community structure with known
/// optimal clustering.
pub fn clique_chain(k: usize, size: usize) -> Csr {
    let n = k * size;
    let mut b = GraphBuilder::undirected(n);
    for c in 0..k {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                b = b.edge(base + i, base + j);
            }
        }
        if c + 1 < k {
            b = b.edge(base + size as u32 - 1, base + size as u32);
        }
    }
    b.build_expect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_graph::{Components, GraphStats};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn path_degenerate() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        for v in 0..6 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn cycle_small_degenerates_to_path() {
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(cycle(1).num_edges(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(GraphStats::compute(&g).triangles, 10);
    }

    #[test]
    fn grid_shape() {
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn clique_chain_shape() {
        let g = clique_chain(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // 3 cliques of C(4,2)=6 edges + 2 bridges
        assert_eq!(g.num_edges(), 20);
        assert!(Components::find(&g).is_connected());
    }
}
