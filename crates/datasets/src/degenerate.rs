//! The degenerate-graph corpus behind the repo's degenerate-graph contract
//! (DESIGN.md): the structurally extreme inputs every scheme, measure, and
//! application must handle without panics or NaNs.
//!
//! Real SuiteSparse/DIMACS10 collections contain all of these shapes —
//! empty matrices, isolated vertices, diagonal-only matrices, duplicated
//! coordinate entries — so any pipeline that ingests them must be total
//! over this corpus. The contract test suite
//! (`crates/core/tests/degenerate_contracts.rs`) runs every scheme ×
//! every measure × Louvain × IMM over [`degenerate_suite`] at 1/2/7
//! threads.

use reorderlab_graph::{Csr, GraphBuilder, SelfLoopPolicy};

/// One named entry of the degenerate corpus.
#[derive(Debug, Clone)]
pub struct DegenerateCase {
    /// Stable name used in test diagnostics and manifests.
    pub name: &'static str,
    /// The graph itself.
    pub graph: Csr,
}

/// The full degenerate corpus, in a stable order.
///
/// Covers: the empty graph, a single vertex, zero-edge (all-isolated)
/// graphs, an all-self-loop graph, disconnected graphs (isolated pairs and
/// mixed components), a star, and a duplicate-heavy multigraph collapsed by
/// the builder's merge policy.
pub fn degenerate_suite() -> Vec<DegenerateCase> {
    vec![
        DegenerateCase { name: "empty", graph: empty() },
        DegenerateCase { name: "single_vertex", graph: zero_edge(1) },
        DegenerateCase { name: "zero_edge_4", graph: zero_edge(4) },
        DegenerateCase { name: "zero_edge_33", graph: zero_edge(33) },
        DegenerateCase { name: "single_edge", graph: single_edge() },
        DegenerateCase { name: "all_self_loops", graph: all_self_loops(5) },
        DegenerateCase { name: "disconnected_pairs", graph: disconnected_pairs(6) },
        DegenerateCase { name: "two_components", graph: two_components() },
        DegenerateCase { name: "star_9", graph: crate::star(9) },
        DegenerateCase { name: "duplicate_heavy", graph: duplicate_heavy(7) },
    ]
}

/// The empty graph: zero vertices, zero edges.
pub fn empty() -> Csr {
    GraphBuilder::undirected(0).build_expect()
}

/// `n` isolated vertices, no edges.
pub fn zero_edge(n: usize) -> Csr {
    GraphBuilder::undirected(n).build_expect()
}

/// Two vertices joined by one edge plus one isolated vertex.
pub fn single_edge() -> Csr {
    GraphBuilder::undirected(3).edge(0, 1).build_expect()
}

/// `n` vertices, each carrying only a self loop (a diagonal matrix).
pub fn all_self_loops(n: usize) -> Csr {
    let edges = (0..n as u32).map(|v| (v, v));
    GraphBuilder::undirected(n).self_loops(SelfLoopPolicy::Keep).edges(edges).build_expect()
}

/// `pairs` disjoint edges: a perfect matching with no connecting structure.
pub fn disconnected_pairs(pairs: usize) -> Csr {
    let edges = (0..pairs as u32).map(|i| (2 * i, 2 * i + 1));
    GraphBuilder::undirected(2 * pairs).edges(edges).build_expect()
}

/// A triangle and a path, unconnected, plus an isolated vertex — the
/// smallest graph exercising multi-component traversal orders.
pub fn two_components() -> Csr {
    GraphBuilder::undirected(7).edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]).build_expect()
}

/// A path whose every edge is inserted many times in both directions; the
/// builder's merge policy collapses them, so degrees stay small while the
/// raw insertion stream is heavily duplicated.
pub fn duplicate_heavy(n: usize) -> Csr {
    let mut b = GraphBuilder::undirected(n);
    for i in 0..n.saturating_sub(1) as u32 {
        for _ in 0..5 {
            b = b.edge(i, i + 1);
            b = b.edge(i + 1, i);
        }
    }
    b.build_expect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_stable_names_and_shapes() {
        let suite = degenerate_suite();
        assert_eq!(suite.len(), 10);
        let names: Vec<&str> = suite.iter().map(|c| c.name).collect();
        assert!(names.contains(&"empty"));
        assert!(names.contains(&"all_self_loops"));
        let empty = &suite[0];
        assert_eq!(empty.graph.num_vertices(), 0);
        assert_eq!(empty.graph.num_edges(), 0);
    }

    #[test]
    fn self_loop_graph_keeps_loops() {
        let g = all_self_loops(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn duplicate_heavy_collapses_to_simple_path() {
        let g = duplicate_heavy(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn disconnected_pairs_is_a_matching() {
        let g = disconnected_pairs(3);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 3);
        assert!(g.vertices().all(|v| g.degree(v) == 1));
    }
}
