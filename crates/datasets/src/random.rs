//! Randomized graph models with low degree skew: Erdős–Rényi, random
//! geometric, and Watts–Strogatz small-world graphs.
//!
//! All generators are deterministic given their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_graph::{Csr, DuplicatePolicy, GraphBuilder};
use std::collections::HashSet;

/// An Erdős–Rényi `G(n, m)` graph: exactly `m` distinct edges sampled
/// uniformly (capped at `C(n, 2)`).
///
/// # Panics
///
/// Panics if `n < 2` and `m > 0`.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Csr {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_m);
    assert!(m == 0 || n >= 2, "G(n, m) needs at least two vertices for any edge");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    GraphBuilder::undirected(n).edges(edges).build_expect()
}

/// A random geometric graph: `n` points uniform in the unit square, an edge
/// whenever two points are within `radius`. Uses grid buckets, so it runs in
/// roughly `O(n + m)`.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Csr {
    assert!(radius > 0.0 && radius.is_finite(), "radius must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let cells = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in points.iter().enumerate() {
        buckets[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let r2 = radius * radius;
    let mut b = GraphBuilder::undirected(n);
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
            for dx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                for &j in &buckets[dy * cells + dx] {
                    if j as usize <= i {
                        continue;
                    }
                    let (px, py) = points[j as usize];
                    if (px - x).powi(2) + (py - y).powi(2) <= r2 {
                        b = b.edge(i as u32, j);
                    }
                }
            }
        }
    }
    b.build_expect()
}

/// A Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k/2` nearest neighbors on each side, with every edge
/// rewired to a random endpoint with probability `beta`.
///
/// # Panics
///
/// Panics if `k` is odd or `k >= n`, or if `beta` is outside `\[0, 1\]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Csr {
    assert!(k.is_multiple_of(2), "watts_strogatz requires even k");
    assert!(k < n, "watts_strogatz requires k < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k / 2);
    for u in 0..n as u32 {
        for step in 1..=(k / 2) as u32 {
            let v = (u + step) % n as u32;
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a uniformly random non-self target.
                let mut w = rng.gen_range(0..n as u32);
                while w == u {
                    w = rng.gen_range(0..n as u32);
                }
                edges.push((u, w));
            } else {
                edges.push((u, v));
            }
        }
    }
    GraphBuilder::undirected(n).duplicates(DuplicatePolicy::KeepFirst).edges(edges).build_expect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_graph::GraphStats;

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = erdos_renyi_gnm(50, 120, 7);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 120);
    }

    #[test]
    fn gnm_caps_at_complete() {
        let g = erdos_renyi_gnm(5, 1000, 7);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnm_deterministic_per_seed() {
        assert_eq!(erdos_renyi_gnm(30, 60, 1), erdos_renyi_gnm(30, 60, 1));
        assert_ne!(erdos_renyi_gnm(30, 60, 1), erdos_renyi_gnm(30, 60, 2));
    }

    #[test]
    fn gnm_empty() {
        let g = erdos_renyi_gnm(10, 0, 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn geometric_radius_controls_density() {
        let sparse = random_geometric(200, 0.05, 11);
        let dense = random_geometric(200, 0.2, 11);
        assert!(dense.num_edges() > sparse.num_edges());
    }

    #[test]
    fn geometric_matches_bruteforce() {
        let n = 60;
        let g = random_geometric(n, 0.25, 5);
        // Re-derive points with the same RNG stream and brute-force check.
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        let mut expect = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let d2 = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                if d2 <= 0.25 * 0.25 {
                    expect += 1;
                    assert!(g.has_edge(i as u32, j as u32), "missing edge ({i},{j})");
                }
            }
        }
        assert_eq!(g.num_edges(), expect);
    }

    #[test]
    fn ws_zero_beta_is_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 9);
        assert_eq!(g.num_edges(), 40);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
        // High clustering is the signature of the lattice.
        assert!(GraphStats::compute(&g).clustering_coefficient > 0.4);
    }

    #[test]
    fn ws_rewiring_reduces_clustering() {
        let lattice = watts_strogatz(200, 8, 0.0, 9);
        let random = watts_strogatz(200, 8, 1.0, 9);
        let c0 = GraphStats::compute(&lattice).clustering_coefficient;
        let c1 = GraphStats::compute(&random).clustering_coefficient;
        assert!(c1 < c0 / 2.0, "rewiring should destroy clustering ({c0} -> {c1})");
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn ws_rejects_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }
}
