//! The named instance suite standing in for the paper's Table I.
//!
//! The paper evaluates 25 small graphs (gap-measure study, §V) and 9 large
//! graphs (application study, §VI) drawn from KONECT and DIMACS10. Those
//! collections are not redistributable here, so every instance is replaced
//! by a synthetic graph from the generator that matches its *structural
//! class* — road / mesh / social / web / collaboration — with parameters
//! chosen to land near the paper's vertex count, edge count, and degree
//! skew. Large instances are additionally scaled down (factor recorded in
//! [`InstanceSpec::scale_denominator`]) so the full suite runs on a laptop.
//!
//! Every instance is deterministic: the generation seed is derived from the
//! instance name.

use crate::mesh::{road_fragment, road_network, tri_mesh};
use crate::powerlaw::{barabasi_albert, hub_and_spokes, rmat, RmatParams};
use crate::random::{erdos_renyi_gnm, random_geometric, watts_strogatz};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_graph::{Csr, Permutation};

/// Fraction of vertices displaced by the collection-order jitter applied to
/// every suite instance (see [`InstanceSpec::generate`]).
const JITTER_FRACTION: f64 = 0.3;

/// The application domain a synthetic instance models (Table I groups its
/// inputs informally by these classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Domain {
    /// Road networks and power grids: near-planar, low degree, huge diameter.
    Road,
    /// Finite-element and Delaunay meshes: uniform moderate degree.
    Mesh,
    /// Social networks: heavy-tailed degree, strong communities.
    Social,
    /// Web / internet topology: extreme hubs.
    Web,
    /// Co-authorship / collaboration: dense, clustered, skewed.
    Collaboration,
    /// Peer-to-peer overlays: mild skew, low clustering.
    PeerToPeer,
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Domain::Road => "road",
            Domain::Mesh => "mesh",
            Domain::Social => "social",
            Domain::Web => "web",
            Domain::Collaboration => "collaboration",
            Domain::PeerToPeer => "p2p",
        };
        f.write_str(s)
    }
}

/// A recipe describing how to synthesize an instance. Kept as data (rather
/// than a closure) so specs are inspectable and comparable.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Recipe {
    /// [`road_fragment`]: possibly-disconnected sparse road extract.
    RoadFragment {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// Probability of dropping a tree edge.
        drop_prob: f64,
    },
    /// [`road_network`]: connected road network.
    RoadNetwork {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// Probability of keeping a non-tree lattice edge.
        keep_prob: f64,
    },
    /// [`tri_mesh`]: triangulated grid.
    TriMesh {
        /// Mesh rows.
        rows: usize,
        /// Mesh columns.
        cols: usize,
        /// Probability of flipping each cell diagonal.
        flip_prob: f64,
    },
    /// [`barabasi_albert`] preferential attachment.
    Ba {
        /// Vertex count.
        n: usize,
        /// Edges per new vertex.
        m_attach: usize,
    },
    /// [`rmat`] recursive quadrant model.
    Rmat {
        /// Vertex count.
        n: usize,
        /// Target edge count.
        m: usize,
        /// Quadrant probability a (skew strength).
        a: f64,
        /// Quadrant probability b.
        b: f64,
        /// Quadrant probability c.
        c: f64,
    },
    /// [`hub_and_spokes`] ego-network model.
    HubSpokes {
        /// Vertex count.
        n: usize,
        /// Number of hubs.
        hubs: usize,
        /// Fraction of vertices each hub attaches to.
        frac: f64,
        /// Extra uniform edges.
        extra: usize,
    },
    /// [`watts_strogatz`] small world.
    Ws {
        /// Vertex count.
        n: usize,
        /// Ring degree (even).
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// [`erdos_renyi_gnm`] uniform random.
    Gnm {
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
    },
    /// [`random_geometric`] unit-square geometric graph.
    Geometric {
        /// Vertex count.
        n: usize,
        /// Connection radius.
        radius: f64,
    },
}

impl Recipe {
    /// Synthesizes the graph for this recipe with the given seed.
    pub fn generate(&self, seed: u64) -> Csr {
        match *self {
            Recipe::RoadFragment { rows, cols, drop_prob } => {
                road_fragment(rows, cols, drop_prob, seed)
            }
            Recipe::RoadNetwork { rows, cols, keep_prob } => {
                road_network(rows, cols, keep_prob, seed)
            }
            Recipe::TriMesh { rows, cols, flip_prob } => tri_mesh(rows, cols, flip_prob, seed),
            Recipe::Ba { n, m_attach } => barabasi_albert(n, m_attach, seed),
            Recipe::Rmat { n, m, a, b, c } => rmat(n, m, RmatParams { a, b, c }, seed),
            Recipe::HubSpokes { n, hubs, frac, extra } => {
                hub_and_spokes(n, hubs, frac, extra, seed)
            }
            Recipe::Ws { n, k, beta } => watts_strogatz(n, k, beta, seed),
            Recipe::Gnm { n, m } => erdos_renyi_gnm(n, m, seed),
            Recipe::Geometric { n, radius } => random_geometric(n, radius, seed),
        }
    }
}

/// A named synthetic instance: the stand-in for one row of the paper's
/// Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    /// The (paper's) instance name, e.g. `"delaunay_n12"`.
    pub name: &'static str,
    /// Structural class the synthetic replacement models.
    pub domain: Domain,
    /// Vertex count reported in the paper's Table I.
    pub paper_vertices: u64,
    /// Edge count reported in the paper's Table I.
    pub paper_edges: u64,
    /// Down-scaling denominator relative to the paper (1 = unscaled).
    pub scale_denominator: u32,
    /// Generation recipe.
    pub recipe: Recipe,
}

impl InstanceSpec {
    /// Deterministic seed derived from the instance name (FNV-1a).
    pub fn seed(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Synthesizes the graph.
    ///
    /// A deterministic *collection-order jitter* is applied after
    /// generation: a fraction of vertex ids are randomly transposed. Raw
    /// generator output carries an artificially perfect "natural" order
    /// (e.g. row-major grids), whereas real collected datasets arrive in a
    /// crawl/collection order with only partial locality — the paper's
    /// results place the Natural scheme mid-field, and this jitter
    /// reproduces that property. Use [`InstanceSpec::generate_unjittered`]
    /// for the raw generator layout.
    pub fn generate(&self) -> Csr {
        let g = self.generate_unjittered();
        let pi = jitter_permutation(g.num_vertices(), self.seed() ^ 0x6a77);
        // SAFETY: the jitter permutation is built for exactly
        // `g.num_vertices()` ids two lines above.
        g.permuted(&pi).expect("jitter permutation matches the graph")
    }

    /// Synthesizes the graph in raw generator order (no collection-order
    /// jitter).
    pub fn generate_unjittered(&self) -> Csr {
        self.recipe.generate(self.seed())
    }

    /// Whether this instance was scaled down relative to the paper.
    pub fn is_scaled(&self) -> bool {
        self.scale_denominator > 1
    }
}

/// The 25 small instances used in the paper's qualitative gap-measure study
/// (§V), in Table I order.
pub fn small_suite() -> Vec<InstanceSpec> {
    use Domain::*;
    use Recipe::*;
    vec![
        InstanceSpec {
            name: "chicago_road",
            domain: Road,
            paper_vertices: 1_467,
            paper_edges: 1_298,
            scale_denominator: 1,
            recipe: RoadFragment { rows: 39, cols: 38, drop_prob: 0.125 },
        },
        InstanceSpec {
            name: "euroroad",
            domain: Road,
            paper_vertices: 1_174,
            paper_edges: 1_417,
            scale_denominator: 1,
            recipe: RoadNetwork { rows: 34, cols: 35, keep_prob: 0.203 },
        },
        InstanceSpec {
            name: "facebook_nips",
            domain: Social,
            paper_vertices: 2_888,
            paper_edges: 2_981,
            scale_denominator: 1,
            recipe: HubSpokes { n: 2_888, hubs: 1, frac: 0.266, extra: 2_213 },
        },
        InstanceSpec {
            name: "rovira",
            domain: Social,
            paper_vertices: 1_133,
            paper_edges: 5_451,
            scale_denominator: 1,
            recipe: Ba { n: 1_133, m_attach: 5 },
        },
        InstanceSpec {
            name: "delaunay_n11",
            domain: Mesh,
            paper_vertices: 2_048,
            paper_edges: 6_128,
            scale_denominator: 1,
            recipe: TriMesh { rows: 32, cols: 64, flip_prob: 0.3 },
        },
        InstanceSpec {
            name: "figeys",
            domain: Web,
            paper_vertices: 2_239,
            paper_edges: 6_452,
            scale_denominator: 1,
            recipe: Rmat { n: 2_239, m: 6_452, a: 0.65, b: 0.15, c: 0.15 },
        },
        InstanceSpec {
            name: "us_power_grid",
            domain: Road,
            paper_vertices: 4_941,
            paper_edges: 6_594,
            scale_denominator: 1,
            recipe: RoadNetwork { rows: 70, cols: 71, keep_prob: 0.336 },
        },
        InstanceSpec {
            name: "delaunay_n12",
            domain: Mesh,
            paper_vertices: 4_096,
            paper_edges: 12_265,
            scale_denominator: 1,
            recipe: TriMesh { rows: 64, cols: 64, flip_prob: 0.3 },
        },
        InstanceSpec {
            name: "hamster_small",
            domain: Social,
            paper_vertices: 1_858,
            paper_edges: 12_534,
            scale_denominator: 1,
            recipe: Ba { n: 1_858, m_attach: 7 },
        },
        InstanceSpec {
            name: "hamster_full",
            domain: Social,
            paper_vertices: 2_426,
            paper_edges: 16_631,
            scale_denominator: 1,
            recipe: Ba { n: 2_426, m_attach: 7 },
        },
        InstanceSpec {
            name: "pgp",
            domain: Social,
            paper_vertices: 10_680,
            paper_edges: 24_316,
            scale_denominator: 1,
            recipe: Rmat { n: 10_680, m: 24_316, a: 0.5, b: 0.2, c: 0.2 },
        },
        InstanceSpec {
            name: "delaunay_n13",
            domain: Mesh,
            paper_vertices: 8_192,
            paper_edges: 24_548,
            scale_denominator: 1,
            recipe: TriMesh { rows: 64, cols: 128, flip_prob: 0.3 },
        },
        InstanceSpec {
            name: "openflights",
            domain: Web,
            paper_vertices: 2_939,
            paper_edges: 30_501,
            scale_denominator: 1,
            recipe: Rmat { n: 2_939, m: 30_501, a: 0.6, b: 0.17, c: 0.17 },
        },
        InstanceSpec {
            name: "fe_4elt2",
            domain: Mesh,
            paper_vertices: 11_143,
            paper_edges: 32_819,
            scale_denominator: 1,
            recipe: TriMesh { rows: 86, cols: 130, flip_prob: 0.3 },
        },
        InstanceSpec {
            name: "twitter_lists",
            domain: Social,
            paper_vertices: 23_370,
            paper_edges: 33_101,
            scale_denominator: 1,
            recipe: Rmat { n: 23_370, m: 33_101, a: 0.55, b: 0.19, c: 0.19 },
        },
        InstanceSpec {
            name: "google_plus",
            domain: Social,
            paper_vertices: 23_628,
            paper_edges: 39_242,
            scale_denominator: 1,
            recipe: HubSpokes { n: 23_628, hubs: 2, frac: 0.11, extra: 34_044 },
        },
        InstanceSpec {
            name: "cs4",
            domain: Mesh,
            paper_vertices: 22_499,
            paper_edges: 43_859,
            scale_denominator: 1,
            recipe: RoadNetwork { rows: 150, cols: 150, keep_prob: 1.0 },
        },
        InstanceSpec {
            name: "cti",
            domain: Mesh,
            paper_vertices: 16_840,
            paper_edges: 48_233,
            scale_denominator: 1,
            recipe: TriMesh { rows: 120, cols: 140, flip_prob: 0.2 },
        },
        InstanceSpec {
            name: "delaunay_n14",
            domain: Mesh,
            paper_vertices: 16_384,
            paper_edges: 49_123,
            scale_denominator: 1,
            recipe: TriMesh { rows: 128, cols: 128, flip_prob: 0.3 },
        },
        InstanceSpec {
            name: "caida",
            domain: Web,
            paper_vertices: 26_475,
            paper_edges: 53_381,
            scale_denominator: 1,
            recipe: Rmat { n: 26_475, m: 53_381, a: 0.72, b: 0.13, c: 0.13 },
        },
        InstanceSpec {
            name: "vsp",
            domain: Web,
            paper_vertices: 10_498,
            paper_edges: 53_869,
            scale_denominator: 1,
            recipe: Rmat { n: 10_498, m: 53_869, a: 0.5, b: 0.2, c: 0.2 },
        },
        InstanceSpec {
            name: "wing_nodal",
            domain: Mesh,
            paper_vertices: 10_937,
            paper_edges: 75_489,
            scale_denominator: 1,
            recipe: Geometric { n: 10_937, radius: 0.02 },
        },
        InstanceSpec {
            name: "cora",
            domain: Collaboration,
            paper_vertices: 23_166,
            paper_edges: 91_500,
            scale_denominator: 1,
            recipe: Ba { n: 23_166, m_attach: 4 },
        },
        InstanceSpec {
            name: "gnutella",
            domain: PeerToPeer,
            paper_vertices: 62_586,
            paper_edges: 147_892,
            scale_denominator: 1,
            recipe: Rmat { n: 62_586, m: 147_892, a: 0.45, b: 0.22, c: 0.22 },
        },
        InstanceSpec {
            name: "arxiv_astro_ph",
            domain: Collaboration,
            paper_vertices: 18_771,
            paper_edges: 198_050,
            scale_denominator: 1,
            recipe: Ba { n: 18_771, m_attach: 10 },
        },
    ]
}

/// The 9 large instances used in the paper's application study (§VI), in
/// Table I order, scaled down by the recorded denominators.
pub fn large_suite() -> Vec<InstanceSpec> {
    use Domain::*;
    use Recipe::*;
    vec![
        InstanceSpec {
            name: "livemocha",
            domain: Social,
            paper_vertices: 104_000,
            paper_edges: 2_190_000,
            scale_denominator: 8,
            recipe: Ba { n: 13_032, m_attach: 21 },
        },
        InstanceSpec {
            name: "ca_roadnet",
            domain: Road,
            paper_vertices: 1_970_000,
            paper_edges: 2_770_000,
            scale_denominator: 16,
            recipe: RoadNetwork { rows: 350, cols: 351, keep_prob: 0.41 },
        },
        InstanceSpec {
            name: "hyves",
            domain: Social,
            paper_vertices: 1_400_000,
            paper_edges: 2_780_000,
            scale_denominator: 16,
            recipe: Rmat { n: 87_500, m: 174_000, a: 0.7, b: 0.13, c: 0.13 },
        },
        InstanceSpec {
            name: "arxiv_hep_ph",
            domain: Collaboration,
            paper_vertices: 28_100,
            paper_edges: 4_600_000,
            scale_denominator: 4,
            recipe: Ba { n: 7_025, m_attach: 41 },
        },
        InstanceSpec {
            name: "youtube",
            domain: Social,
            paper_vertices: 3_220_000,
            paper_edges: 9_380_000,
            scale_denominator: 32,
            recipe: Rmat { n: 100_600, m: 293_000, a: 0.65, b: 0.15, c: 0.15 },
        },
        InstanceSpec {
            name: "skitter",
            domain: Web,
            paper_vertices: 1_700_000,
            paper_edges: 11_100_000,
            scale_denominator: 16,
            recipe: Rmat { n: 106_250, m: 694_000, a: 0.62, b: 0.16, c: 0.16 },
        },
        InstanceSpec {
            name: "actor_collab",
            domain: Collaboration,
            paper_vertices: 382_000,
            paper_edges: 33_100_000,
            scale_denominator: 32,
            recipe: Ba { n: 11_938, m_attach: 87 },
        },
        InstanceSpec {
            name: "livejournal",
            domain: Social,
            paper_vertices: 5_200_000,
            paper_edges: 48_700_000,
            scale_denominator: 64,
            recipe: Rmat { n: 81_250, m: 761_000, a: 0.6, b: 0.17, c: 0.17 },
        },
        InstanceSpec {
            name: "orkut",
            domain: Social,
            paper_vertices: 3_070_000,
            paper_edges: 117_000_000,
            scale_denominator: 64,
            recipe: Ba { n: 47_968, m_attach: 38 },
        },
    ]
}

/// All 34 instances (25 small followed by 9 large).
pub fn full_suite() -> Vec<InstanceSpec> {
    let mut all = small_suite();
    all.extend(large_suite());
    all
}

/// Looks up an instance spec by its name.
pub fn by_name(name: &str) -> Option<InstanceSpec> {
    full_suite().into_iter().find(|s| s.name == name)
}

/// Builds the collection-order jitter permutation: identity with
/// `JITTER_FRACTION / 2 × n` random transpositions.
fn jitter_permutation(n: usize, seed: u64) -> Permutation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ranks: Vec<u32> = (0..n as u32).collect();
    let swaps = ((n as f64 * JITTER_FRACTION) / 2.0).round() as usize;
    for _ in 0..swaps {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        ranks.swap(i, j);
    }
    Permutation::from_ranks_unchecked(ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_graph::GraphStats;

    #[test]
    fn suites_have_paper_cardinality() {
        assert_eq!(small_suite().len(), 25);
        assert_eq!(large_suite().len(), 9);
        assert_eq!(full_suite().len(), 34);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = full_suite().into_iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 34);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("delaunay_n12").is_some());
        assert!(by_name("no_such_graph").is_none());
    }

    #[test]
    fn seeds_differ_across_instances() {
        let a = by_name("delaunay_n12").unwrap().seed();
        let b = by_name("delaunay_n13").unwrap().seed();
        assert_ne!(a, b);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = by_name("euroroad").unwrap();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn small_instances_match_paper_sizes_within_tolerance() {
        for spec in small_suite() {
            let g = spec.generate();
            let n = g.num_vertices() as f64;
            let m = g.num_edges() as f64;
            let pn = spec.paper_vertices as f64;
            let pm = spec.paper_edges as f64;
            assert!((n - pn).abs() / pn < 0.05, "{}: |V|={n} vs paper {pn}", spec.name);
            assert!((m - pm).abs() / pm < 0.15, "{}: |E|={m} vs paper {pm}", spec.name);
        }
    }

    #[test]
    fn chicago_road_is_sparser_than_vertices() {
        let g = by_name("chicago_road").unwrap().generate();
        assert!(g.num_edges() < g.num_vertices(), "Chicago Road has m < n in Table I");
    }

    #[test]
    fn social_instances_are_skewed_mesh_are_not() {
        let social = by_name("facebook_nips").unwrap().generate();
        let mesh = by_name("delaunay_n12").unwrap().generate();
        let ss = GraphStats::compute(&social);
        let ms = GraphStats::compute(&mesh);
        assert!(ss.degree_std_dev > 10.0, "social σ={}", ss.degree_std_dev);
        assert!(ms.degree_std_dev < 2.0, "mesh σ={}", ms.degree_std_dev);
        assert!(ss.max_degree > 500, "facebook_nips needs an extreme hub (paper Δ=769)");
        assert!(ms.max_degree <= 8);
    }

    #[test]
    fn large_instances_are_marked_scaled() {
        for spec in large_suite() {
            assert!(spec.is_scaled(), "{} should record its scale", spec.name);
        }
        for spec in small_suite() {
            assert!(!spec.is_scaled(), "{} should be unscaled", spec.name);
        }
    }

    #[test]
    fn cs4_is_a_bounded_degree_mesh() {
        let g = by_name("cs4").unwrap().generate();
        assert!(g.max_degree() <= 4, "cs4 has Δ=4 in the paper");
    }

    #[test]
    fn jitter_preserves_structure_but_breaks_layout() {
        let spec = by_name("delaunay_n11").unwrap();
        let raw = spec.generate_unjittered();
        let jittered = spec.generate();
        // Same graph up to relabeling…
        assert_eq!(raw.num_vertices(), jittered.num_vertices());
        assert_eq!(raw.num_edges(), jittered.num_edges());
        assert_eq!(raw.max_degree(), jittered.max_degree());
        // …but the natural layout's locality is partially destroyed: the
        // mesh generator's row-major bandwidth is tiny, the jittered one
        // is not.
        let band =
            |g: &reorderlab_graph::Csr| g.edges().map(|(u, v, _)| u.abs_diff(v)).max().unwrap_or(0);
        assert!(band(&jittered) > 4 * band(&raw), "jitter must break perfect layouts");
    }

    #[test]
    fn jitter_is_deterministic() {
        let spec = by_name("vsp").unwrap();
        assert_eq!(spec.generate(), spec.generate());
    }
}
