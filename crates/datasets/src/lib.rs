//! # reorderlab-datasets
//!
//! Synthetic graph generators and the named instance suite that stands in
//! for the paper's Table I (25 small + 9 large graphs from KONECT and
//! DIMACS10, which are not redistributable).
//!
//! Each generator targets one structural class whose properties drive
//! reordering behaviour:
//!
//! - **road / power-grid** ([`road_network`], [`road_fragment`]): low
//!   degree, huge diameter, near-planar;
//! - **mesh** ([`tri_mesh`], [`grid2d`]): uniform moderate degree;
//! - **social / web** ([`barabasi_albert`], [`rmat`], [`hub_and_spokes`]):
//!   heavy-tailed degrees and hubs;
//! - **baseline randomness** ([`erdos_renyi_gnm`], [`watts_strogatz`],
//!   [`random_geometric`]).
//!
//! ## Example
//!
//! ```
//! use reorderlab_datasets::suite;
//!
//! let spec = suite::by_name("delaunay_n12").expect("known instance");
//! let g = spec.generate();
//! assert_eq!(g.num_vertices(), 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degenerate;
mod mesh;
mod powerlaw;
mod random;
mod sbm;
mod simple;
pub mod suite;

pub use degenerate::{degenerate_suite, DegenerateCase};
pub use mesh::{road_fragment, road_network, tri_mesh};
pub use powerlaw::{barabasi_albert, hub_and_spokes, rmat, RmatParams};
pub use random::{erdos_renyi_gnm, random_geometric, watts_strogatz};
pub use sbm::{stochastic_block_model, PlantedPartition};
pub use simple::{binary_tree, clique_chain, complete, cycle, grid2d, path, star};
pub use suite::{by_name, full_suite, large_suite, small_suite, Domain, InstanceSpec, Recipe};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use reorderlab_graph::Components;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ba_always_connected(n in 10usize..200, m in 1usize..5, seed in any::<u64>()) {
            let g = barabasi_albert(n, m, seed);
            prop_assert!(Components::find(&g).is_connected());
            prop_assert_eq!(g.num_vertices(), n);
        }

        #[test]
        fn gnm_exact_m(n in 5usize..100, m in 0usize..200, seed in any::<u64>()) {
            let g = erdos_renyi_gnm(n, m, seed);
            let cap = n * (n - 1) / 2;
            prop_assert_eq!(g.num_edges(), m.min(cap));
        }

        #[test]
        fn road_network_always_connected(
            rows in 2usize..20,
            cols in 2usize..20,
            keep in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let g = road_network(rows, cols, keep, seed);
            prop_assert!(Components::find(&g).is_connected());
            prop_assert!(g.num_edges() >= rows * cols - 1);
        }

        #[test]
        fn tri_mesh_bounded_degree(
            rows in 2usize..20,
            cols in 2usize..20,
            flip in 0.0f64..1.0,
            seed in any::<u64>(),
        ) {
            let g = tri_mesh(rows, cols, flip, seed);
            prop_assert!(g.max_degree() <= 8);
            prop_assert!(Components::find(&g).is_connected());
        }

        #[test]
        fn rmat_respects_bounds(n in 4usize..256, m in 1usize..400, seed in any::<u64>()) {
            let g = rmat(n, m, RmatParams::graph500(), seed);
            prop_assert_eq!(g.num_vertices(), n);
            prop_assert!(g.num_edges() <= m);
        }
    }
}
