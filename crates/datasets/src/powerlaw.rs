//! Skewed-degree graph models: Barabási–Albert preferential attachment,
//! RMAT, and an explicit hub-and-spokes model for ego-network-like inputs
//! with extreme maximum degree.
//!
//! These stand in for the paper's social/web/collaboration instances, whose
//! defining features for reordering behaviour are the heavy-tailed degree
//! distribution (Table I reports degree σ up to 591) and the presence of
//! hubs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_graph::{Csr, GraphBuilder};
use std::collections::HashSet;

/// A Barabási–Albert preferential-attachment graph: starting from a small
/// clique, each new vertex attaches to `m_attach` existing vertices chosen
/// proportionally to degree.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n <= m_attach`.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Csr {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(n > m_attach, "need more vertices than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);
    // `endpoints` holds one entry per arc endpoint; sampling uniformly from
    // it implements preferential attachment.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m_attach);
    // Seed clique over the first m_attach + 1 vertices.
    let core = m_attach as u32 + 1;
    for u in 0..core {
        for v in (u + 1)..core {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut chosen: HashSet<u32> = HashSet::with_capacity(m_attach * 2);
    for v in core..n as u32 {
        chosen.clear();
        // Sample m_attach distinct targets by degree.
        let mut guard = 0;
        while chosen.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            chosen.insert(t);
            guard += 1;
            if guard > 64 * m_attach {
                // Degenerate corner (tiny graphs): fall back to uniform.
                let t = rng.gen_range(0..v);
                chosen.insert(t);
            }
        }
        // Sort for determinism: HashSet iteration order would otherwise leak
        // into the preferential-attachment stream.
        let mut targets: Vec<u32> = chosen.iter().copied().collect();
        targets.sort_unstable();
        for t in targets {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    GraphBuilder::undirected(n).edges(edges).build_expect()
}

/// Parameters of the RMAT recursive quadrant model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the (0,0) quadrant — larger `a` means stronger skew.
    pub a: f64,
    /// Probability of the (0,1) quadrant.
    pub b: f64,
    /// Probability of the (1,0) quadrant.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 parameterization `(0.57, 0.19, 0.19)`.
    pub fn graph500() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19 }
    }

    /// A milder skew resembling peer-to-peer topologies.
    pub fn mild() -> Self {
        RmatParams { a: 0.45, b: 0.22, c: 0.22 }
    }

    /// Implied probability of the (1,1) quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// An RMAT graph on `n` vertices with (approximately) `m` distinct
/// undirected edges.
///
/// Edges are drawn in the standard `2^ceil(log2 n)` recursive id space, then
/// mapped into `[0, n)`; self loops and duplicates are rejected, and we
/// resample until `m` distinct edges exist (with a cap of `32 m` attempts to
/// guarantee termination on dense requests).
///
/// # Panics
///
/// Panics if the quadrant probabilities are not a distribution or `n < 2`.
pub fn rmat(n: usize, m: usize, params: RmatParams, seed: u64) -> Csr {
    assert!(n >= 2, "rmat needs at least two vertices");
    let d = params.d();
    assert!(
        params.a > 0.0 && params.b >= 0.0 && params.c >= 0.0 && (0.0..=1.0).contains(&d),
        "rmat quadrant probabilities must form a distribution"
    );
    let levels = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m * 2);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    let mut attempts = 0usize;
    let max_attempts = 32 * m.max(1);
    while edges.len() < m && attempts < max_attempts {
        attempts += 1;
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..levels {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < params.a {
                // (0,0): nothing to add
            } else if r < params.a + params.b {
                v |= 1;
            } else if r < params.a + params.b + params.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        let (u, v) = (u % n as u32, v % n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    GraphBuilder::undirected(n).edges(edges).build_expect()
}

/// A hub-and-spokes graph modelling ego networks: `num_hubs` designated hubs
/// each connect to a `hub_frac` fraction of all vertices; `extra_edges`
/// additional uniform edges connect the periphery.
///
/// This reproduces inputs like the paper's *Facebook (NIPS)* instance
/// (n = 2 888, Δ = 769) whose maximum degree is a large fraction of `n` —
/// far beyond what preferential attachment produces at that size.
///
/// # Panics
///
/// Panics if `num_hubs >= n` or `hub_frac` is outside `(0, 1]`.
pub fn hub_and_spokes(
    n: usize,
    num_hubs: usize,
    hub_frac: f64,
    extra_edges: usize,
    seed: u64,
) -> Csr {
    assert!(num_hubs < n, "need fewer hubs than vertices");
    assert!(hub_frac > 0.0 && hub_frac <= 1.0, "hub_frac must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let spokes_per_hub = ((n as f64) * hub_frac) as usize;
    for h in 0..num_hubs as u32 {
        let mut attached: HashSet<u32> = HashSet::with_capacity(spokes_per_hub);
        while attached.len() < spokes_per_hub {
            let t = rng.gen_range(0..n as u32);
            if t != h {
                attached.insert(t);
            }
        }
        edges.extend(attached.into_iter().map(|t| (h, t)));
    }
    for _ in 0..extra_edges {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    GraphBuilder::undirected(n).edges(edges).build_expect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_graph::{Components, GraphStats};

    #[test]
    fn ba_edge_count_and_connectivity() {
        let g = barabasi_albert(200, 3, 13);
        assert_eq!(g.num_vertices(), 200);
        // Seed clique C(4,2)=6 + 196 * 3 new edges, minus any duplicates
        // (sampled targets are distinct per vertex, so none).
        assert_eq!(g.num_edges(), 6 + 196 * 3);
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn ba_is_skewed() {
        let g = barabasi_albert(2000, 2, 13);
        let s = GraphStats::compute(&g);
        assert!(s.max_degree > 20, "BA should grow hubs, got Δ={}", s.max_degree);
        assert!(s.degree_std_dev > 2.0);
    }

    #[test]
    fn ba_deterministic() {
        assert_eq!(barabasi_albert(100, 2, 5), barabasi_albert(100, 2, 5));
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn ba_rejects_tiny_n() {
        let _ = barabasi_albert(2, 2, 0);
    }

    #[test]
    fn rmat_hits_edge_target() {
        let g = rmat(512, 2000, RmatParams::graph500(), 21);
        assert_eq!(g.num_vertices(), 512);
        assert_eq!(g.num_edges(), 2000);
    }

    #[test]
    fn rmat_skew_increases_with_a() {
        let skewed = rmat(1024, 4000, RmatParams { a: 0.7, b: 0.12, c: 0.12 }, 3);
        let uniform = rmat(1024, 4000, RmatParams { a: 0.25, b: 0.25, c: 0.25 }, 3);
        let ds = GraphStats::compute(&skewed).degree_std_dev;
        let du = GraphStats::compute(&uniform).degree_std_dev;
        assert!(ds > 1.5 * du, "skewed σ={ds} vs uniform σ={du}");
    }

    #[test]
    fn rmat_params_d_complements() {
        assert!((RmatParams::graph500().d() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn hub_and_spokes_has_extreme_hub() {
        let g = hub_and_spokes(1000, 2, 0.4, 500, 17);
        let s = GraphStats::compute(&g);
        assert!(s.max_degree >= 400, "Δ={}", s.max_degree);
    }

    #[test]
    fn hub_and_spokes_deterministic() {
        assert_eq!(hub_and_spokes(300, 1, 0.5, 100, 9), hub_and_spokes(300, 1, 0.5, 100, 9));
    }
}
