//! Mesh-like and road-like generators.
//!
//! These model the paper's DIMACS10 finite-element meshes (`delaunay_n*`,
//! `fe_4elt2`, `cs4`, `cti`, `wing_nodal`) and its road networks (Chicago,
//! Euroroad, US power grid, California roadnet): low, near-uniform degree,
//! large diameter, and strong geometric locality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_graph::{Csr, GraphBuilder};

/// A triangulated `rows x cols` grid: the 4-neighbor lattice plus one
/// diagonal per cell, giving interior degree 6 — the degree profile of a
/// Delaunay triangulation.
///
/// With `flip_prob > 0`, each cell's diagonal direction is randomized, which
/// perturbs the regularity the way point-set Delaunay meshes are irregular.
pub fn tri_mesh(rows: usize, cols: usize, flip_prob: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&flip_prob), "flip_prob must be a probability");
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n).reserve(3 * n);
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b = b.edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b = b.edge(at(r, c), at(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols {
                // One diagonal per cell; direction possibly flipped.
                if rng.gen::<f64>() < flip_prob {
                    b = b.edge(at(r, c + 1), at(r + 1, c));
                } else {
                    b = b.edge(at(r, c), at(r + 1, c + 1));
                }
            }
        }
    }
    b.build_expect()
}

/// A road-network-like graph: a random spanning tree of the `rows x cols`
/// lattice guarantees connectivity, and each remaining lattice edge is kept
/// with probability `keep_prob`.
///
/// `keep_prob = 0` yields a tree (m = n − 1, like the paper's *Chicago Road*
/// where m < n); `keep_prob = 1` yields the full grid.
pub fn road_network(rows: usize, cols: usize, keep_prob: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&keep_prob), "keep_prob must be a probability");
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    // Enumerate lattice edges.
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut lattice: Vec<(u32, u32)> = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                lattice.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                lattice.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    // Random spanning tree via randomized Kruskal.
    for i in (1..lattice.len()).rev() {
        let j = rng.gen_range(0..=i);
        lattice.swap(i, j);
    }
    let mut uf = reorderlab_graph::UnionFind::new(n);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n);
    let mut extras: Vec<(u32, u32)> = Vec::new();
    for &(u, v) in &lattice {
        if uf.union(u, v) {
            edges.push((u, v));
        } else {
            extras.push((u, v));
        }
    }
    for &(u, v) in &extras {
        if rng.gen::<f64>() < keep_prob {
            edges.push((u, v));
        }
    }
    GraphBuilder::undirected(n).edges(edges).build_expect()
}

/// A sparse forest-like road fragment: `road_network` with some tree edges
/// *removed*, modelling disconnected road extracts such as the paper's
/// *Chicago Road* instance (1 467 vertices but only 1 298 edges).
pub fn road_fragment(rows: usize, cols: usize, drop_prob: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&drop_prob), "drop_prob must be a probability");
    let tree = road_network(rows, cols, 0.0, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let kept = tree.edges().filter(|_| rng.gen::<f64>() >= drop_prob).map(|(u, v, _)| (u, v));
    GraphBuilder::undirected(tree.num_vertices()).edges(kept).build_expect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_graph::{Components, GraphStats};

    #[test]
    fn tri_mesh_degree_profile() {
        let g = tri_mesh(20, 20, 0.0, 1);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 400);
        // Interior degree 6, so max degree is 6 and σ is small.
        assert_eq!(s.max_degree, 6);
        assert!(s.degree_std_dev < 1.5);
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn tri_mesh_edge_count() {
        // edges = rows*(cols-1) + cols*(rows-1) + (rows-1)*(cols-1)
        let g = tri_mesh(5, 7, 0.3, 2);
        assert_eq!(g.num_edges(), 5 * 6 + 7 * 4 + 4 * 6);
    }

    #[test]
    fn tri_mesh_has_triangles() {
        let g = tri_mesh(10, 10, 0.5, 3);
        assert!(GraphStats::compute(&g).triangles > 0);
    }

    #[test]
    fn road_network_tree_when_keep_zero() {
        let g = road_network(15, 15, 0.0, 4);
        assert_eq!(g.num_edges(), 15 * 15 - 1);
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn road_network_full_grid_when_keep_one() {
        let g = road_network(6, 6, 1.0, 4);
        assert_eq!(g.num_edges(), 2 * 6 * 5);
    }

    #[test]
    fn road_network_connected_at_any_density() {
        for &p in &[0.0, 0.2, 0.5] {
            let g = road_network(12, 12, p, 5);
            assert!(Components::find(&g).is_connected(), "disconnected at keep={p}");
        }
    }

    #[test]
    fn road_network_low_degree() {
        let g = road_network(30, 30, 0.3, 6);
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn road_fragment_loses_edges() {
        let g = road_fragment(20, 20, 0.15, 7);
        assert!(g.num_edges() < 399);
        assert!(!Components::find(&g).is_connected());
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(tri_mesh(8, 8, 0.4, 9), tri_mesh(8, 8, 0.4, 9));
        assert_eq!(road_network(8, 8, 0.4, 9), road_network(8, 8, 0.4, 9));
    }
}
