//! # reorderlab-kernels
//!
//! The "standard suite of prototypical graph operations" from the prior
//! reordering literature the paper positions itself against (§VI: "prior
//! works on graph orderings \[2, 12\] have predominantly focused on …
//! PageRank, Single Source Shortest Paths, and Betweenness Centrality").
//!
//! These kernels serve as the comparison baseline for the paper's more
//! complex application choices (community detection, influence
//! maximization): simple iterative traversals whose per-edge indirection
//! responds directly to vertex reordering.
//!
//! ## Example
//!
//! ```
//! use reorderlab_datasets::star;
//! use reorderlab_kernels::{bfs_sssp, betweenness, pagerank, PageRankConfig};
//!
//! let g = star(20);
//! assert_eq!(pagerank(&g, &PageRankConfig::new()).ranking()[0], 0);
//! assert_eq!(bfs_sssp(&g, 1).distance[2], 2.0);
//! assert_eq!(betweenness(&g).top(), Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bc;
mod dobfs;
mod pagerank;
mod sssp;

pub use bc::{betweenness, betweenness_from, BcResult};
pub use dobfs::{direction_optimizing_bfs, DoBfsConfig, DoBfsResult};
pub use pagerank::{pagerank, pagerank_compressed, PageRankConfig, PageRankResult};
pub use sssp::{bfs_sssp, dijkstra, SsspResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use reorderlab_graph::GraphBuilder;

    fn arb_graph() -> impl Strategy<Value = reorderlab_graph::Csr> {
        (3usize..25).prop_flat_map(|n| {
            proptest::collection::vec((0..n as u32, 0..n as u32), 1..60)
                .prop_map(move |edges| GraphBuilder::undirected(n).edges(edges).build().unwrap())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn pagerank_is_a_distribution(g in arb_graph()) {
            let r = pagerank(&g, &PageRankConfig::new());
            let total: f64 = r.scores.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "sum {}", total);
            prop_assert!(r.scores.iter().all(|&s| s > 0.0));
        }

        #[test]
        fn bfs_satisfies_triangle_inequality(g in arb_graph()) {
            let r = bfs_sssp(&g, 0);
            for (u, v, _) in g.edges() {
                let (du, dv) = (r.distance[u as usize], r.distance[v as usize]);
                if du.is_finite() && dv.is_finite() {
                    prop_assert!((du - dv).abs() <= 1.0 + 1e-9);
                }
            }
        }

        #[test]
        fn dijkstra_matches_bfs_unweighted(g in arb_graph()) {
            let a = bfs_sssp(&g, 1);
            let b = dijkstra(&g, 1);
            prop_assert_eq!(a.distance, b.distance);
        }

        #[test]
        fn betweenness_nonnegative_and_bounded(g in arb_graph()) {
            let n = g.num_vertices() as f64;
            let r = betweenness(&g);
            for &s in &r.score {
                prop_assert!(s >= -1e-9);
                prop_assert!(s <= n * n, "score {} exceeds n^2", s);
            }
        }
    }
}
