//! Single-source shortest paths — the second prototypical kernel of the
//! prior reordering studies (\[2, 8\]): frontier-based BFS for unweighted
//! graphs and binary-heap Dijkstra for weighted ones.

use reorderlab_graph::Csr;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Distances from a source; unreachable vertices are `f64::INFINITY`.
#[derive(Debug, Clone, PartialEq)]
pub struct SsspResult {
    /// `distance[v]` from the source.
    pub distance: Vec<f64>,
    /// Number of vertices settled (reached).
    pub reached: usize,
    /// Edges relaxed during the run.
    pub relaxations: u64,
}

impl SsspResult {
    /// The largest finite distance (0 when only the source is reachable).
    pub fn eccentricity(&self) -> f64 {
        self.distance.iter().copied().filter(|d| d.is_finite()).fold(0.0, f64::max)
    }
}

/// Unweighted SSSP: level-synchronous BFS from `source` (edge weights are
/// ignored; every edge has length 1).
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn bfs_sssp(graph: &Csr, source: u32) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of bounds");
    let mut distance = vec![f64::INFINITY; n];
    distance[source as usize] = 0.0;
    let mut frontier = vec![source];
    let mut reached = 1usize;
    let mut relaxations = 0u64;
    let mut depth = 0.0f64;
    while !frontier.is_empty() {
        depth += 1.0;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                relaxations += 1;
                if distance[u as usize].is_infinite() {
                    distance[u as usize] = depth;
                    reached += 1;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    SsspResult { distance, reached, relaxations }
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    vertex: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance (reverse), deterministic tie-break on id.
        other.dist.total_cmp(&self.dist).then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Weighted SSSP: Dijkstra with a binary heap and lazy deletion. Edge
/// weights must be non-negative (guaranteed by graph construction);
/// unweighted graphs behave as if every edge weighed 1.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Examples
///
/// ```
/// use reorderlab_graph::GraphBuilder;
/// use reorderlab_kernels::dijkstra;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = GraphBuilder::undirected(3)
///     .weighted_edge(0, 1, 5.0)
///     .weighted_edge(1, 2, 2.0)
///     .weighted_edge(0, 2, 9.0)
///     .build()?;
/// let r = dijkstra(&g, 0);
/// assert_eq!(r.distance[2], 7.0); // via vertex 1
/// # Ok(())
/// # }
/// ```
pub fn dijkstra(graph: &Csr, source: u32) -> SsspResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of bounds");
    let mut distance = vec![f64::INFINITY; n];
    distance[source as usize] = 0.0;
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem { dist: 0.0, vertex: source });
    let mut reached = 0usize;
    let mut relaxations = 0u64;
    while let Some(HeapItem { dist, vertex }) = heap.pop() {
        if settled[vertex as usize] {
            continue;
        }
        settled[vertex as usize] = true;
        reached += 1;
        for (u, w) in graph.weighted_neighbors(vertex) {
            relaxations += 1;
            let cand = dist + w;
            if cand < distance[u as usize] {
                distance[u as usize] = cand;
                heap.push(HeapItem { dist: cand, vertex: u });
            }
        }
    }
    SsspResult { distance, reached, relaxations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{grid2d, path, star};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let r = bfs_sssp(&g, 0);
        assert_eq!(r.distance, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.reached, 5);
        assert_eq!(r.eccentricity(), 4.0);
    }

    #[test]
    fn bfs_unreachable_infinite() {
        let g = GraphBuilder::undirected(4).edge(0, 1).build().unwrap();
        let r = bfs_sssp(&g, 0);
        assert!(r.distance[2].is_infinite());
        assert_eq!(r.reached, 2);
    }

    #[test]
    fn bfs_matches_manhattan_on_grid_corner() {
        let g = grid2d(4, 5);
        let r = bfs_sssp(&g, 0);
        for row in 0..4u32 {
            for col in 0..5u32 {
                assert_eq!(r.distance[(row * 5 + col) as usize], (row + col) as f64);
            }
        }
    }

    #[test]
    fn dijkstra_equals_bfs_on_unweighted() {
        let g = grid2d(6, 6);
        let a = bfs_sssp(&g, 7);
        let b = dijkstra(&g, 7);
        assert_eq!(a.distance, b.distance);
        assert_eq!(a.reached, b.reached);
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        let g = GraphBuilder::undirected(4)
            .weighted_edge(0, 3, 10.0)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(1, 2, 1.0)
            .weighted_edge(2, 3, 1.0)
            .build()
            .unwrap();
        let r = dijkstra(&g, 0);
        assert_eq!(r.distance[3], 3.0);
    }

    #[test]
    fn relaxations_counted() {
        let g = star(10);
        let r = bfs_sssp(&g, 0);
        // Hub scans 9 edges, each leaf scans 1.
        assert_eq!(r.relaxations, 9 + 9);
    }

    #[test]
    fn distances_invariant_under_relabeling() {
        use reorderlab_graph::Permutation;
        let g = grid2d(5, 5);
        let pi = Permutation::from_order(&(0..25u32).rev().collect::<Vec<_>>()).unwrap();
        let h = g.permuted(&pi).unwrap();
        let rg = bfs_sssp(&g, 3);
        let rh = bfs_sssp(&h, pi.rank(3));
        for v in 0..25u32 {
            assert_eq!(rg.distance[v as usize], rh.distance[pi.rank(v) as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bfs_rejects_bad_source() {
        let g = path(3);
        let _ = bfs_sssp(&g, 9);
    }
}
