//! Betweenness centrality (Brandes' algorithm) — the third kernel of the
//! prior reordering studies the paper cites (\[2, 12\]). Exact over all
//! sources, or estimated from a sampled source subset; sources are
//! processed in parallel with per-thread accumulation.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use rayon::prelude::*;
use reorderlab_graph::Csr;

/// Betweenness scores (unnormalized; undirected conventions halve pair
/// contributions at the end).
#[derive(Debug, Clone, PartialEq)]
pub struct BcResult {
    /// `score[v]`: betweenness centrality of `v`.
    pub score: Vec<f64>,
    /// Number of source vertices processed.
    pub sources: usize,
}

impl BcResult {
    /// The vertex with the highest score (ties to the lower id); `None`
    /// for an empty graph.
    pub fn top(&self) -> Option<u32> {
        (0..self.score.len() as u32).max_by(|&a, &b| {
            self.score[a as usize].total_cmp(&self.score[b as usize]).then(b.cmp(&a))
        })
    }
}

/// Exact betweenness centrality over every source.
pub fn betweenness(graph: &Csr) -> BcResult {
    let sources: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    betweenness_from(graph, &sources)
}

/// Betweenness accumulated from the given source subset (Brandes'
/// single-source dependency accumulation per source, summed). With all
/// sources this is exact; with a sample it is the standard estimator.
pub fn betweenness_from(graph: &Csr, sources: &[u32]) -> BcResult {
    let n = graph.num_vertices();
    let partials: Vec<Vec<f64>> =
        sources.par_iter().map(|&s| single_source_dependency(graph, s)).collect();
    let mut score = vec![0.0f64; n];
    for partial in partials {
        for (v, d) in partial.into_iter().enumerate() {
            score[v] += d;
        }
    }
    if !graph.is_directed() {
        for s in score.iter_mut() {
            *s /= 2.0; // each unordered pair counted from both endpoints
        }
    }
    BcResult { score, sources: sources.len() }
}

/// One Brandes pass: BFS from `s` counting shortest paths, then dependency
/// accumulation in reverse BFS order.
fn single_source_dependency(graph: &Csr, s: u32) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut sigma = vec![0.0f64; n]; // shortest-path counts
    let mut dist = vec![i64::MAX; n];
    let mut order: Vec<u32> = Vec::new(); // BFS visit order
    sigma[s as usize] = 1.0;
    dist[s as usize] = 0;
    let mut frontier = vec![s];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            order.push(v);
            for &u in graph.neighbors(v) {
                if dist[u as usize] == i64::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    next.push(u);
                }
                if dist[u as usize] == dist[v as usize] + 1 {
                    sigma[u as usize] += sigma[v as usize];
                }
            }
        }
        frontier = next;
    }
    // Dependency accumulation, deepest first.
    let mut delta = vec![0.0f64; n];
    for &v in order.iter().rev() {
        for &u in graph.neighbors(v) {
            if dist[u as usize] == dist[v as usize] + 1 && sigma[u as usize] > 0.0 {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[u as usize] * (1.0 + delta[u as usize]);
            }
        }
    }
    delta[s as usize] = 0.0;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{complete, cycle, path, star};

    #[test]
    fn path_middle_has_max_betweenness() {
        // Path 0-1-2-3-4: vertex 2 sits on the most shortest paths.
        let g = path(5);
        let r = betweenness(&g);
        assert_eq!(r.top(), Some(2));
        // Exact value for the middle of a 5-path: pairs (0,3),(0,4),(1,3),
        // (1,4) and (0..1 vs 3..4) — classic result is 4.
        assert!((r.score[2] - 4.0).abs() < 1e-9, "got {}", r.score[2]);
        assert_eq!(r.score[0], 0.0);
    }

    #[test]
    fn star_hub_carries_everything() {
        let g = star(6);
        let r = betweenness(&g);
        // Hub lies on all C(5,2) = 10 leaf pairs.
        assert!((r.score[0] - 10.0).abs() < 1e-9);
        for leaf in 1..6 {
            assert_eq!(r.score[leaf], 0.0);
        }
    }

    #[test]
    fn complete_graph_zero_everywhere() {
        let g = complete(6);
        let r = betweenness(&g);
        for &s in &r.score {
            assert!(s.abs() < 1e-9);
        }
    }

    #[test]
    fn cycle_symmetric() {
        let g = cycle(8);
        let r = betweenness(&g);
        for w in r.score.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "cycle must be symmetric: {:?}", r.score);
        }
        assert!(r.score[0] > 0.0);
    }

    #[test]
    fn sampled_sources_scale_down() {
        let g = path(9);
        let exact = betweenness(&g);
        let sampled = betweenness_from(&g, &[0, 4, 8]);
        assert_eq!(sampled.sources, 3);
        assert_eq!(exact.top(), Some(4));
        // Under this source sample the estimator's maximum shifts to a
        // near-middle vertex (sources contribute no dependency to
        // themselves), but it must stay in the center of the path.
        assert!(matches!(sampled.top(), Some(3..=5)), "top {:?}", sampled.top());
        // Endpoints still score zero.
        assert_eq!(sampled.score[0], 0.0);
        assert_eq!(sampled.score[8], 0.0);
    }

    #[test]
    fn invariant_under_relabeling() {
        use reorderlab_graph::Permutation;
        let g = path(7);
        let pi = Permutation::from_ranks(vec![6, 2, 4, 0, 5, 1, 3]).unwrap();
        let h = g.permuted(&pi).unwrap();
        let rg = betweenness(&g);
        let rh = betweenness(&h);
        for v in 0..7u32 {
            assert!(
                (rg.score[v as usize] - rh.score[pi.rank(v) as usize]).abs() < 1e-9,
                "score of {v} changed"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = reorderlab_graph::GraphBuilder::undirected(0).build().unwrap();
        let r = betweenness(&g);
        assert!(r.score.is_empty());
        assert_eq!(r.top(), None);
    }
}
