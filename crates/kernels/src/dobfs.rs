//! Direction-optimizing BFS (Beamer's push/pull switching) — the standard
//! systems optimization for BFS on low-diameter skewed graphs, included in
//! the kernel suite because its *pull* phase (scan every unvisited vertex's
//! neighbor list until an active parent is found) is among the most
//! layout-sensitive access patterns in graph processing.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use reorderlab_graph::Csr;

/// Counters from a direction-optimizing BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct DoBfsResult {
    /// `distance[v]` from the source (`u32::MAX` if unreachable).
    pub distance: Vec<u32>,
    /// Vertices reached (including the source).
    pub reached: usize,
    /// Edges examined in push (top-down) steps.
    pub push_edges: u64,
    /// Edges examined in pull (bottom-up) steps.
    pub pull_edges: u64,
    /// Number of levels processed bottom-up.
    pub pull_levels: usize,
}

/// Tuning for the push/pull switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoBfsConfig {
    /// Switch to pull when the frontier's out-edge count exceeds
    /// `remaining edges / alpha` (Beamer's α, default 15).
    pub alpha: f64,
    /// Switch back to push when the frontier shrinks below
    /// `n / beta` vertices (Beamer's β, default 18).
    pub beta: f64,
}

impl Default for DoBfsConfig {
    fn default() -> Self {
        DoBfsConfig { alpha: 15.0, beta: 18.0 }
    }
}

/// Runs a direction-optimizing BFS from `source` on an undirected graph.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
///
/// # Examples
///
/// ```
/// use reorderlab_datasets::star;
/// use reorderlab_kernels::{direction_optimizing_bfs, DoBfsConfig};
///
/// let g = star(1000);
/// let r = direction_optimizing_bfs(&g, 0, &DoBfsConfig::default());
/// assert_eq!(r.reached, 1000);
/// assert!(r.pull_levels > 0, "a star's huge frontier should trigger pull");
/// ```
pub fn direction_optimizing_bfs(graph: &Csr, source: u32, config: &DoBfsConfig) -> DoBfsResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of bounds");
    let mut distance = vec![u32::MAX; n];
    distance[source as usize] = 0;
    let mut frontier: Vec<u32> = vec![source];
    let mut depth = 0u32;
    let mut reached = 1usize;
    let mut push_edges = 0u64;
    let mut pull_edges = 0u64;
    let mut pull_levels = 0usize;
    let total_arcs = graph.num_arcs() as u64;
    let mut scanned = 0u64;

    while !frontier.is_empty() {
        depth += 1;
        // Heuristic: edges the frontier would push vs edges remaining.
        let frontier_edges: u64 = frontier.iter().map(|&v| graph.degree(v) as u64).sum();
        let use_pull = config.alpha > 0.0
            && frontier_edges as f64 > (total_arcs.saturating_sub(scanned)) as f64 / config.alpha
            && frontier.len() as f64 > n as f64 / config.beta.max(1.0) / 8.0;

        let mut next: Vec<u32> = Vec::new();
        if use_pull {
            pull_levels += 1;
            // Bottom-up: every unvisited vertex looks for a parent at the
            // current depth; early exit on the first hit.
            for v in 0..n as u32 {
                if distance[v as usize] != u32::MAX {
                    continue;
                }
                for &u in graph.neighbors(v) {
                    pull_edges += 1;
                    if distance[u as usize] == depth - 1 {
                        distance[v as usize] = depth;
                        next.push(v);
                        break;
                    }
                }
            }
        } else {
            // Top-down push.
            for &v in &frontier {
                for &u in graph.neighbors(v) {
                    push_edges += 1;
                    if distance[u as usize] == u32::MAX {
                        distance[u as usize] = depth;
                        next.push(u);
                    }
                }
            }
        }
        scanned += frontier_edges;
        reached += next.len();
        frontier = next;
    }
    DoBfsResult { distance, reached, push_edges, pull_edges, pull_levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::bfs_sssp;
    use reorderlab_datasets::{barabasi_albert, grid2d, path, star};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn distances_match_plain_bfs() {
        for g in [grid2d(8, 8), barabasi_albert(300, 3, 5), path(40)] {
            let plain = bfs_sssp(&g, 0);
            let fancy = direction_optimizing_bfs(&g, 0, &DoBfsConfig::default());
            assert_eq!(plain.reached, fancy.reached);
            for v in 0..g.num_vertices() {
                let a = plain.distance[v];
                let b = fancy.distance[v];
                if a.is_finite() {
                    assert_eq!(a as u32, b, "vertex {v}");
                } else {
                    assert_eq!(b, u32::MAX, "vertex {v}");
                }
            }
        }
    }

    #[test]
    fn star_uses_pull_and_saves_edges() {
        let g = star(5_000);
        let r = direction_optimizing_bfs(&g, 0, &DoBfsConfig::default());
        assert!(r.pull_levels >= 1, "star frontier covers all edges: pull must fire");
        // Pull from the leaves: each finds the hub in one probe.
        assert!(r.pull_edges <= 5_000);
    }

    #[test]
    fn path_never_pulls() {
        let g = path(200);
        let r = direction_optimizing_bfs(&g, 0, &DoBfsConfig::default());
        assert_eq!(r.pull_levels, 0, "a width-1 frontier should always push");
        assert_eq!(r.reached, 200);
    }

    #[test]
    fn alpha_zero_disables_pull() {
        let g = star(1_000);
        let r = direction_optimizing_bfs(&g, 0, &DoBfsConfig { alpha: 0.0, beta: 18.0 });
        assert_eq!(r.pull_levels, 0);
        assert_eq!(r.reached, 1_000);
    }

    #[test]
    fn disconnected_unreached_marked() {
        let g = GraphBuilder::undirected(5).edge(0, 1).build().unwrap();
        let r = direction_optimizing_bfs(&g, 0, &DoBfsConfig::default());
        assert_eq!(r.reached, 2);
        assert_eq!(r.distance[3], u32::MAX);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_source() {
        let g = path(3);
        let _ = direction_optimizing_bfs(&g, 7, &DoBfsConfig::default());
    }
}
