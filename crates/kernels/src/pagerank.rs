//! PageRank \[32\] — the canonical kernel of the lightweight-reordering
//! literature the paper positions itself against (\[2, 12\]): a pull-style
//! power iteration whose per-edge indirection (`scores[neighbor]`) is
//! exactly the access pattern vertex reordering tries to make local.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use rayon::prelude::*;
use reorderlab_graph::{cast, det_sum_f64, CompressError, CompressedCsr, Csr};

/// Configuration for [`pagerank`].
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `d` (the classic value is 0.85).
    pub damping: f64,
    /// Stop when the L1 change between iterations drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl PageRankConfig {
    /// The standard configuration: `d = 0.85`, tolerance `1e-8`, 200
    /// iterations max (the geometric rate `d^k` needs ~115 iterations to
    /// cross `1e-8`).
    pub fn new() -> Self {
        PageRankConfig { damping: 0.85, tolerance: 1e-8, max_iterations: 200 }
    }

    /// Sets the damping factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < d < 1`.
    pub fn damping(mut self, d: f64) -> Self {
        assert!(d > 0.0 && d < 1.0, "damping must be in (0, 1)");
        self.damping = d;
        self
    }

    /// Sets the convergence tolerance.
    ///
    /// # Panics
    ///
    /// Panics unless `t > 0`.
    pub fn tolerance(mut self, t: f64) -> Self {
        assert!(t > 0.0, "tolerance must be positive");
        self.tolerance = t;
        self
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n.max(1);
        self
    }
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig::new()
    }
}

/// The outcome of a PageRank run.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// Final scores, summing to 1 (within numerical error).
    pub scores: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the cap.
    pub converged: bool,
}

impl PageRankResult {
    /// Vertices sorted by decreasing score (ties by id).
    pub fn ranking(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.scores.len() as u32).collect();
        order.sort_by(|&a, &b| {
            self.scores[b as usize].total_cmp(&self.scores[a as usize]).then(a.cmp(&b))
        });
        order
    }
}

/// Runs pull-based PageRank on `graph` (for directed graphs pass the graph
/// itself; the pull iteration internally uses the transpose).
///
/// Dangling vertices (out-degree 0) redistribute their mass uniformly, the
/// standard correction.
///
/// # Examples
///
/// ```
/// use reorderlab_datasets::star;
/// use reorderlab_kernels::{pagerank, PageRankConfig};
///
/// let g = star(50);
/// let r = pagerank(&g, &PageRankConfig::new());
/// assert!(r.converged);
/// assert_eq!(r.ranking()[0], 0, "the hub collects the most rank");
/// ```
pub fn pagerank(graph: &Csr, config: &PageRankConfig) -> PageRankResult {
    let n = graph.num_vertices();
    if n == 0 {
        return PageRankResult { scores: Vec::new(), iterations: 0, converged: true };
    }
    // Pull iteration reads in-neighbors: for undirected graphs the
    // adjacency is symmetric; for directed ones we pull over the transpose.
    let pull = if graph.is_directed() { graph.transposed() } else { graph.clone() };
    let out_degree: Vec<f64> = (0..n as u32).map(|v| graph.degree(v) as f64).collect();
    pagerank_pull(n, &out_degree, |v| pull.neighbors(v).iter().copied(), config)
}

/// Runs pull-based PageRank directly on the compressed form, decoding
/// nothing but (for directed graphs) the transpose it pulls over.
///
/// Bit-identical to [`pagerank`] on the [`CompressedCsr::decode`] of the
/// same graph: the pull loop visits in-neighbors in exactly the same
/// order, via the zero-copy gap-stream iterator instead of a flat slice.
///
/// # Errors
///
/// [`CompressError::UnsortedRow`] — provably unreachable (a transpose of
/// a decoded graph always has sorted rows), surfaced as a typed error
/// rather than a panic to keep library code panic-free.
pub fn pagerank_compressed(
    cz: &CompressedCsr,
    config: &PageRankConfig,
) -> Result<PageRankResult, CompressError> {
    let n = cz.num_vertices();
    if n == 0 {
        return Ok(PageRankResult { scores: Vec::new(), iterations: 0, converged: true });
    }
    let out_degree: Vec<f64> =
        (0..n).map(|v| cast::try_vertex_id(v).map_or(0.0, |v| cz.degree(v) as f64)).collect();
    let result = if cz.is_directed() {
        let pull = CompressedCsr::from_csr(&cz.decode().transposed())?;
        pagerank_pull(n, &out_degree, |v| pull.neighbors(v), config)
    } else {
        pagerank_pull(n, &out_degree, |v| cz.neighbors(v), config)
    };
    Ok(result)
}

/// The shared pull iteration: both entry points delegate here, so the
/// flat and compressed paths execute the identical float-operation
/// sequence (the D2-safe delta reduction included) and differ only in
/// where the in-neighbor stream comes from.
fn pagerank_pull<I, F>(
    n: usize,
    out_degree: &[f64],
    pull_row: F,
    config: &PageRankConfig,
) -> PageRankResult
where
    I: Iterator<Item = u32>,
    F: Fn(u32) -> I + Sync,
{
    let d = config.damping;
    let base = (1.0 - d) / n as f64;
    let mut scores = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;

    while iterations < config.max_iterations {
        iterations += 1;
        // Mass of dangling vertices, redistributed uniformly.
        let dangling: f64 = (0..n).filter(|&v| out_degree[v] == 0.0).map(|v| scores[v]).sum();
        let dangling_share = d * dangling / n as f64;

        next.par_iter_mut().enumerate().for_each(|(v, slot)| {
            // `fold`, not a `for` loop: compressed rows specialize `fold`
            // into a single tight pass over the gap byte stream, and the
            // flat-slice path compiles identically either way.
            let acc = pull_row(v as u32).fold(0.0, |acc, u| {
                let deg = out_degree[u as usize];
                if deg > 0.0 {
                    acc + scores[u as usize] / deg
                } else {
                    acc
                }
            });
            *slot = base + dangling_share + d * acc;
        });

        // D2 contract: the float reduction goes through the order-fixed
        // wrapper so the accumulation never depends on the schedule.
        let delta = det_sum_f64(
            scores.par_iter().zip(next.par_iter()).map(|(a, b)| (a - b).abs()).collect(),
        );
        std::mem::swap(&mut scores, &mut next);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    PageRankResult { scores, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{complete, cycle, path, star};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn scores_sum_to_one() {
        let g = star(20);
        let r = pagerank(&g, &PageRankConfig::new());
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn regular_graph_uniform_scores() {
        let g = cycle(12);
        let r = pagerank(&g, &PageRankConfig::new());
        for &s in &r.scores {
            assert!((s - 1.0 / 12.0).abs() < 1e-9);
        }
        assert!(r.converged);
    }

    #[test]
    fn hub_outranks_leaves() {
        let g = star(50);
        let r = pagerank(&g, &PageRankConfig::new());
        assert!(r.scores[0] > 10.0 * r.scores[1]);
        assert_eq!(r.ranking()[0], 0);
    }

    #[test]
    fn directed_chain_accumulates_downstream() {
        let g = GraphBuilder::directed(3).edge(0, 1).edge(1, 2).build().unwrap();
        let r = pagerank(&g, &PageRankConfig::new());
        assert!(r.scores[2] > r.scores[1]);
        assert!(r.scores[1] > r.scores[0]);
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "dangling correction keeps mass: {total}");
    }

    #[test]
    fn invariant_under_relabeling() {
        use reorderlab_graph::Permutation;
        let g = complete(6);
        let mut gb = GraphBuilder::undirected(8);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                gb = gb.edge(u, v);
            }
        }
        let g2 = gb.edge(0, 6).edge(6, 7).build().unwrap();
        let _ = g;
        let r = pagerank(&g2, &PageRankConfig::new());
        let pi = Permutation::from_ranks(vec![3, 0, 5, 1, 7, 2, 6, 4]).unwrap();
        let h = g2.permuted(&pi).unwrap();
        let rh = pagerank(&h, &PageRankConfig::new());
        for v in 0..8u32 {
            assert!(
                (r.scores[v as usize] - rh.scores[pi.rank(v) as usize]).abs() < 1e-9,
                "vertex {v} score changed under relabeling"
            );
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let g = path(100);
        let r = pagerank(&g, &PageRankConfig::new().tolerance(1e-15).max_iterations(3));
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(0).build().unwrap();
        let r = pagerank(&g, &PageRankConfig::new());
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let _ = PageRankConfig::new().damping(1.5);
    }

    /// The acceptance contract: compressed-mode PageRank is bit-identical
    /// to the flat oracle at 1, 2, and 7 threads, on undirected and
    /// directed graphs alike.
    #[test]
    fn compressed_matches_flat_bit_for_bit() {
        use reorderlab_graph::{build_pool, CompressedCsr};
        let directed_ring = {
            let mut gb = GraphBuilder::directed(9);
            for v in 0..9u32 {
                gb = gb.edge(v, (v + 1) % 9).edge(v, (v + 3) % 9);
            }
            gb.build().unwrap()
        };
        let cases = [star(40), cycle(25), path(30), directed_ring];
        let cfg = PageRankConfig::new();
        for g in &cases {
            let cz = CompressedCsr::from_csr(g).unwrap();
            let oracle = pagerank(g, &cfg);
            for threads in [1usize, 2, 7] {
                let (flat, packed) = build_pool(threads)
                    .install(|| (pagerank(g, &cfg), pagerank_compressed(&cz, &cfg).unwrap()));
                assert_eq!(flat.iterations, packed.iterations);
                assert_eq!(flat.converged, packed.converged);
                let flat_bits: Vec<u64> = flat.scores.iter().map(|s| s.to_bits()).collect();
                let packed_bits: Vec<u64> = packed.scores.iter().map(|s| s.to_bits()).collect();
                assert_eq!(flat_bits, packed_bits, "{threads} threads");
                let oracle_bits: Vec<u64> = oracle.scores.iter().map(|s| s.to_bits()).collect();
                assert_eq!(flat_bits, oracle_bits, "thread invariance at {threads}");
            }
        }
    }
}
