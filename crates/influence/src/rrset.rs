//! Reverse-reachability (RR) set sampling — the hot loop of IMM.
//!
//! An RR set for root `r` is the random set of vertices that would activate
//! `r` under one random realization of the diffusion process; it is sampled
//! by a *probabilistic BFS on the transpose graph* (paper §VI-C: "tens or
//! hundreds of thousands of probabilistic BFS traversals").

use crate::config::DiffusionModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_graph::Csr;

/// A sampler bound to one graph, holding the transpose used for reverse
/// traversals.
#[derive(Debug, Clone)]
pub struct RrSampler {
    /// Reverse adjacency: `transpose.neighbors(v)` are the in-neighbors of
    /// `v` (for undirected graphs this equals the forward adjacency).
    transpose: Csr,
    model: DiffusionModel,
}

/// Counters from sampling one RR set, aggregated by the engine into the
/// throughput figures of the paper's Figure 11.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RrTrace {
    /// In-edges examined during the reverse BFS.
    pub edges_examined: u64,
    /// Vertices that entered the RR set.
    pub vertices_visited: u64,
}

/// Reusable per-thread scratch for RR sampling.
///
/// The naive traversal allocates an `n`-bit visited array and a fresh queue
/// for every RR set; IMM draws tens of thousands of sets, so those
/// allocations (and the O(n) clears) dominate on small sets. The scratch
/// replaces them with an epoch-stamped visited array — resetting is a single
/// counter increment — and one queue buffer that doubles as the output set.
///
/// Reusing a scratch never changes the sampled sets: visitation is keyed on
/// `(seed, index)`-derived RNG streams only, so `sample_with` returns the
/// same set as [`RrSampler::sample`] for the same arguments.
#[derive(Debug, Clone)]
pub struct SampleScratch {
    /// `stamp[v] == epoch` marks `v` visited in the current sample.
    stamp: Vec<u64>,
    epoch: u64,
    /// BFS queue and output set (root first).
    set: Vec<u32>,
}

impl SampleScratch {
    /// A scratch for graphs of up to `n` vertices.
    pub fn new(n: usize) -> Self {
        SampleScratch { stamp: vec![0; n], epoch: 0, set: Vec::new() }
    }

    /// Starts a new sample rooted at `root`: bumps the epoch (constant-time
    /// reset of the visited set) and seeds the queue.
    fn begin(&mut self, n: usize, root: u32) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch += 1;
        self.set.clear();
        self.set.push(root);
        self.stamp[root as usize] = self.epoch;
    }

    fn is_visited(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    fn visit(&mut self, v: u32) {
        self.stamp[v as usize] = self.epoch;
        self.set.push(v);
    }
}

impl RrSampler {
    /// Prepares a sampler for `graph` under `model`.
    pub fn new(graph: &Csr, model: DiffusionModel) -> Self {
        RrSampler { transpose: graph.transposed(), model }
    }

    /// The number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.transpose.num_vertices()
    }

    /// The transpose graph the sampler traverses (exposed for the memory-
    /// replay workloads that model this routine's cache behaviour).
    pub fn transpose(&self) -> &Csr {
        &self.transpose
    }

    /// Samples the RR set with the given index into a freshly allocated
    /// vector. The RNG is derived from `(seed, index)`, so set `i` is
    /// identical no matter which thread draws it.
    ///
    /// Returns the RR set (root first) and the traversal counters. Hot
    /// loops should prefer [`RrSampler::sample_with`], which reuses buffers.
    pub fn sample(&self, seed: u64, index: u64) -> (Vec<u32>, RrTrace) {
        let mut scratch = SampleScratch::new(self.transpose.num_vertices());
        let (set, trace) = self.sample_with(seed, index, &mut scratch);
        (set.to_vec(), trace)
    }

    /// Allocation-free variant of [`RrSampler::sample`]: traverses into
    /// `scratch` and returns the RR set as a borrow of its buffer. Produces
    /// exactly the same set and trace as `sample(seed, index)` — the stable
    /// `(seed, index)` coin streams make the result independent of both the
    /// thread drawing it and any scratch reuse.
    pub fn sample_with<'s>(
        &self,
        seed: u64,
        index: u64,
        scratch: &'s mut SampleScratch,
    ) -> (&'s [u32], RrTrace) {
        let n = self.transpose.num_vertices();
        debug_assert!(n > 0, "cannot sample from an empty graph");
        let mut rng =
            StdRng::seed_from_u64(splitmix(seed ^ index.wrapping_mul(0x9e3779b97f4a7c15)));
        let root = rng.gen_range(0..n as u32);
        scratch.begin(n, root);
        let trace = match self.model {
            DiffusionModel::IndependentCascade { probability } => {
                self.reverse_bfs(scratch, &mut rng, |_, p_rng| p_rng < probability)
            }
            DiffusionModel::WeightedCascade => {
                // p(u -> v) = 1 / indeg(v): while scanning v's in-neighbors,
                // each passes with probability 1/indeg(v).
                let t = &self.transpose;
                self.reverse_bfs(scratch, &mut rng, |v, p_rng| {
                    let indeg = t.degree(v).max(1) as f64;
                    p_rng < 1.0 / indeg
                })
            }
            DiffusionModel::LinearThreshold => self.reverse_walk(scratch, &mut rng),
        };
        (&scratch.set, trace)
    }

    /// IC-style probabilistic reverse BFS: each in-edge `(u -> v)` of a
    /// visited `v` is live independently, as judged by `live(v, coin)`.
    /// `scratch` arrives seeded with the root.
    fn reverse_bfs<F: Fn(u32, f64) -> bool>(
        &self,
        scratch: &mut SampleScratch,
        rng: &mut StdRng,
        live: F,
    ) -> RrTrace {
        let mut trace = RrTrace { edges_examined: 0, vertices_visited: 1 };
        let mut head = 0usize;
        while head < scratch.set.len() {
            let v = scratch.set[head];
            head += 1;
            for &u in self.transpose.neighbors(v) {
                trace.edges_examined += 1;
                if !scratch.is_visited(u) && live(v, rng.gen::<f64>()) {
                    scratch.visit(u);
                    trace.vertices_visited += 1;
                }
            }
        }
        trace
    }

    /// LT-style reverse random walk: from the root, repeatedly step to one
    /// uniformly chosen in-neighbor until revisiting or hitting a source.
    /// `scratch` arrives seeded with the root.
    fn reverse_walk(&self, scratch: &mut SampleScratch, rng: &mut StdRng) -> RrTrace {
        let mut trace = RrTrace { edges_examined: 0, vertices_visited: 1 };
        let mut current = scratch.set[0];
        loop {
            let nbrs = self.transpose.neighbors(current);
            if nbrs.is_empty() {
                break;
            }
            trace.edges_examined += 1;
            let next = nbrs[rng.gen_range(0..nbrs.len())];
            if scratch.is_visited(next) {
                break;
            }
            scratch.visit(next);
            trace.vertices_visited += 1;
            current = next;
        }
        trace
    }
}

/// SplitMix64 finalizer, decorrelating per-index RNG streams.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{complete, path, star};
    use reorderlab_graph::GraphBuilder;

    fn ic(p: f64) -> DiffusionModel {
        DiffusionModel::IndependentCascade { probability: p }
    }

    #[test]
    fn probability_one_reaches_component() {
        let g = path(10);
        let s = RrSampler::new(&g, ic(1.0));
        let (set, trace) = s.sample(1, 0);
        assert_eq!(set.len(), 10, "p = 1 on a connected graph reaches everything");
        assert_eq!(trace.vertices_visited, 10);
    }

    #[test]
    fn probability_epsilon_reaches_only_root() {
        let g = complete(20);
        let s = RrSampler::new(&g, ic(1e-12));
        for i in 0..10 {
            let (set, _) = s.sample(3, i);
            assert_eq!(set.len(), 1, "p ≈ 0 must keep only the root");
        }
    }

    #[test]
    fn rr_sets_deterministic_per_index() {
        let g = star(50);
        let s = RrSampler::new(&g, ic(0.5));
        assert_eq!(s.sample(7, 3), s.sample(7, 3));
        // Different indices should (overwhelmingly) differ.
        let distinct = (0..20).map(|i| s.sample(7, i).0).collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn directed_graph_uses_transpose() {
        // Arc 0 -> 1 only: an RR set rooted at 1 can contain 0, but an RR
        // set rooted at 0 can never contain 1.
        let g = GraphBuilder::directed(2).edge(0, 1).build().unwrap();
        let s = RrSampler::new(&g, ic(1.0));
        for i in 0..20 {
            let (set, _) = s.sample(11, i);
            if set[0] == 0 {
                assert_eq!(set, vec![0]);
            } else {
                assert_eq!(set, vec![1, 0]);
            }
        }
    }

    #[test]
    fn weighted_cascade_bounded_expansion() {
        let g = complete(30);
        let s = RrSampler::new(&g, DiffusionModel::WeightedCascade);
        // Expected activations per scanned vertex is 1; sets stay small on
        // average. Just verify validity and non-explosion over many draws.
        let mut total = 0usize;
        for i in 0..50 {
            let (set, _) = s.sample(5, i);
            assert!(!set.is_empty());
            total += set.len();
        }
        assert!(total < 50 * 30);
    }

    #[test]
    fn linear_threshold_is_a_path_sample() {
        let g = complete(10);
        let s = RrSampler::new(&g, DiffusionModel::LinearThreshold);
        for i in 0..20 {
            let (set, trace) = s.sample(2, i);
            // A reverse walk visits each vertex at most once and examines
            // one in-edge per step.
            assert_eq!(trace.vertices_visited as usize, set.len());
            let distinct: std::collections::HashSet<_> = set.iter().collect();
            assert_eq!(distinct.len(), set.len());
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        // One scratch reused across many samples (and across models) must
        // reproduce exactly what per-sample allocation produces.
        let g = reorderlab_datasets::erdos_renyi_gnm(120, 360, 13);
        for model in [ic(0.2), DiffusionModel::WeightedCascade, DiffusionModel::LinearThreshold] {
            let s = RrSampler::new(&g, model);
            let mut scratch = SampleScratch::new(g.num_vertices());
            for i in 0..200 {
                let fresh = s.sample(21, i);
                let (set, trace) = s.sample_with(21, i, &mut scratch);
                assert_eq!((set.to_vec(), trace), fresh, "index {i} under {model:?}");
            }
        }
    }

    #[test]
    fn scratch_grows_to_fit_larger_graphs() {
        let small = path(4);
        let big = path(64);
        let mut scratch = SampleScratch::new(small.num_vertices());
        let s = RrSampler::new(&big, ic(1.0));
        let (set, _) = s.sample_with(1, 0, &mut scratch);
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn trace_counts_edges() {
        let g = star(5);
        let s = RrSampler::new(&g, ic(1.0));
        // Root = hub: scans 4 in-edges then each leaf scans 1 (the hub).
        let (set, trace) = s.sample(0, 4);
        if set[0] == 0 {
            assert_eq!(trace.edges_examined, 4 + 4);
        }
        assert!(trace.edges_examined >= set.len() as u64 - 1);
    }
}
