//! Reverse-reachability (RR) set sampling — the hot loop of IMM.
//!
//! An RR set for root `r` is the random set of vertices that would activate
//! `r` under one random realization of the diffusion process; it is sampled
//! by a *probabilistic BFS on the transpose graph* (paper §VI-C: "tens or
//! hundreds of thousands of probabilistic BFS traversals").

use crate::config::{DiffusionModel, SampleKernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_graph::{CompressError, CompressedCsr, Csr, GapNeighbors};

/// The reverse adjacency a sampler traverses: a flat CSR or the
/// delta/varint-compressed form. Both iterate any row's in-neighbors in
/// the identical (sorted) order, so the RNG coin stream — and therefore
/// every sampled set — is independent of the representation.
#[derive(Debug, Clone)]
enum Adjacency {
    /// Flat rows, read in place.
    Flat(Csr),
    /// Compressed rows, streamed zero-copy from the gap bytes.
    Compressed(CompressedCsr),
}

/// Enum-dispatched in-neighbor stream over either representation.
enum RowIter<'a> {
    Flat(std::iter::Copied<std::slice::Iter<'a, u32>>),
    Compressed(GapNeighbors<'a>),
}

impl Iterator for RowIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            RowIter::Flat(it) => it.next(),
            RowIter::Compressed(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RowIter::Flat(it) => it.size_hint(),
            RowIter::Compressed(it) => it.size_hint(),
        }
    }
}

impl Adjacency {
    fn num_vertices(&self) -> usize {
        match self {
            Adjacency::Flat(g) => g.num_vertices(),
            Adjacency::Compressed(cz) => cz.num_vertices(),
        }
    }

    fn degree(&self, v: u32) -> usize {
        match self {
            Adjacency::Flat(g) => g.degree(v),
            Adjacency::Compressed(cz) => cz.degree(v),
        }
    }

    fn iter_row(&self, v: u32) -> RowIter<'_> {
        match self {
            Adjacency::Flat(g) => RowIter::Flat(g.neighbors(v).iter().copied()),
            Adjacency::Compressed(cz) => RowIter::Compressed(cz.neighbors(v)),
        }
    }
}

/// A sampler bound to one graph, holding the transpose used for reverse
/// traversals.
#[derive(Debug, Clone)]
pub struct RrSampler {
    /// Reverse adjacency: the in-neighbors of every vertex (for undirected
    /// graphs this equals the forward adjacency), flat or compressed.
    transpose: Adjacency,
    model: DiffusionModel,
    kernel: SampleKernel,
    /// `hub_slot[v]` is `v`'s index into the compact hub stamp array, or
    /// `u32::MAX` for cold vertices. Empty under [`SampleKernel::Classic`].
    hub_slot: Vec<u32>,
    /// Number of hub slots (the compact array's length).
    num_hubs: usize,
}

/// Counters from sampling one RR set, aggregated by the engine into the
/// throughput figures of the paper's Figure 11.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RrTrace {
    /// In-edges examined during the reverse BFS.
    pub edges_examined: u64,
    /// Vertices that entered the RR set.
    pub vertices_visited: u64,
}

/// Reusable per-thread scratch for RR sampling.
///
/// The naive traversal allocates an `n`-bit visited array and a fresh queue
/// for every RR set; IMM draws tens of thousands of sets, so those
/// allocations (and the O(n) clears) dominate on small sets. The scratch
/// replaces them with an epoch-stamped visited array — resetting is a single
/// counter increment — and one queue buffer that doubles as the output set.
///
/// Reusing a scratch never changes the sampled sets: visitation is keyed on
/// `(seed, index)`-derived RNG streams only, so `sample_with` returns the
/// same set as [`RrSampler::sample`] for the same arguments.
#[derive(Debug, Clone)]
pub struct SampleScratch {
    /// `stamp[v] == epoch` marks `v` visited in the current sample.
    stamp: Vec<u64>,
    /// Compact visited stamps for hub vertices (indexed by hub slot); only
    /// touched by the [`SampleKernel::HubSplit`] path.
    hub_stamp: Vec<u64>,
    epoch: u64,
    /// BFS queue and output set (root first).
    set: Vec<u32>,
}

impl SampleScratch {
    /// A scratch for graphs of up to `n` vertices.
    pub fn new(n: usize) -> Self {
        SampleScratch { stamp: vec![0; n], hub_stamp: Vec::new(), epoch: 0, set: Vec::new() }
    }

    /// Starts a new sample rooted at `root`: bumps the epoch (constant-time
    /// reset of the visited set) and seeds the queue.
    fn begin(&mut self, n: usize, root: u32) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch += 1;
        self.set.clear();
        self.set.push(root);
        self.stamp[root as usize] = self.epoch;
    }

    fn is_visited(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    fn visit(&mut self, v: u32) {
        self.stamp[v as usize] = self.epoch;
        self.set.push(v);
    }

    /// [`SampleScratch::begin`] for the hub/cold split path: also sizes the
    /// compact hub array and stamps the root in whichever array owns it.
    fn begin_split(&mut self, n: usize, num_hubs: usize, root: u32, hub_slot: &[u32]) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.hub_stamp.len() < num_hubs {
            self.hub_stamp.resize(num_hubs, 0);
        }
        self.epoch += 1;
        self.set.clear();
        self.set.push(root);
        let s = hub_slot[root as usize];
        if s != u32::MAX {
            self.hub_stamp[s as usize] = self.epoch;
        } else {
            self.stamp[root as usize] = self.epoch;
        }
    }

    /// Logically identical to [`SampleScratch::is_visited`]; hubs read the
    /// compact array, cold vertices the full one.
    fn is_visited_split(&self, v: u32, hub_slot: &[u32]) -> bool {
        let s = hub_slot[v as usize];
        if s != u32::MAX {
            self.hub_stamp[s as usize] == self.epoch
        } else {
            self.stamp[v as usize] == self.epoch
        }
    }

    /// Logically identical to [`SampleScratch::visit`] under the split
    /// layout.
    fn visit_split(&mut self, v: u32, hub_slot: &[u32]) {
        let s = hub_slot[v as usize];
        if s != u32::MAX {
            self.hub_stamp[s as usize] = self.epoch;
        } else {
            self.stamp[v as usize] = self.epoch;
        }
        self.set.push(v);
    }
}

impl RrSampler {
    /// Prepares a sampler for `graph` under `model` with the default
    /// ([`SampleKernel::Classic`]) iteration path.
    pub fn new(graph: &Csr, model: DiffusionModel) -> Self {
        RrSampler::with_kernel(graph, model, SampleKernel::Classic)
    }

    /// Prepares a sampler using the given iteration kernel. Both kernels
    /// draw bit-identical sets and traces (pinned by differential tests).
    pub fn with_kernel(graph: &Csr, model: DiffusionModel, kernel: SampleKernel) -> Self {
        let transpose = Adjacency::Flat(graph.transposed());
        let (hub_slot, num_hubs) = match kernel {
            SampleKernel::Classic => (Vec::new(), 0),
            SampleKernel::HubSplit => hub_partition(&transpose),
        };
        RrSampler { transpose, model, kernel, hub_slot, num_hubs }
    }

    /// [`RrSampler::with_kernel`] over the compressed form: the reverse
    /// BFS streams in-neighbors straight from the varint gap bytes, never
    /// materializing flat rows. Draws sets and traces bit-identical to a
    /// flat sampler over the same graph — row order (and therefore the
    /// RNG coin stream) is representation-independent.
    ///
    /// # Errors
    ///
    /// [`CompressError::UnsortedRow`] — provably unreachable (the
    /// transpose of a decoded graph always has sorted rows), surfaced as
    /// a typed error rather than a panic to keep library code panic-free.
    pub fn with_kernel_compressed(
        cz: &CompressedCsr,
        model: DiffusionModel,
        kernel: SampleKernel,
    ) -> Result<Self, CompressError> {
        // Undirected adjacency is symmetric: reuse the caller's gap
        // streams. Directed graphs transpose once (flat, then recompress).
        let transpose = if cz.is_directed() {
            Adjacency::Compressed(CompressedCsr::from_csr(&cz.decode().transposed())?)
        } else {
            Adjacency::Compressed(cz.clone())
        };
        let (hub_slot, num_hubs) = match kernel {
            SampleKernel::Classic => (Vec::new(), 0),
            SampleKernel::HubSplit => hub_partition(&transpose),
        };
        Ok(RrSampler { transpose, model, kernel, hub_slot, num_hubs })
    }

    /// The number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.transpose.num_vertices()
    }

    /// The flat transpose graph the sampler traverses, when it holds one
    /// (exposed for the memory-replay workloads that model this routine's
    /// cache behaviour). `None` for compressed samplers.
    pub fn transpose(&self) -> Option<&Csr> {
        match &self.transpose {
            Adjacency::Flat(g) => Some(g),
            Adjacency::Compressed(_) => None,
        }
    }

    /// Samples the RR set with the given index into a freshly allocated
    /// vector. The RNG is derived from `(seed, index)`, so set `i` is
    /// identical no matter which thread draws it.
    ///
    /// Returns the RR set (root first) and the traversal counters. Hot
    /// loops should prefer [`RrSampler::sample_with`], which reuses buffers.
    pub fn sample(&self, seed: u64, index: u64) -> (Vec<u32>, RrTrace) {
        let mut scratch = SampleScratch::new(self.transpose.num_vertices());
        let (set, trace) = self.sample_with(seed, index, &mut scratch);
        (set.to_vec(), trace)
    }

    /// Allocation-free variant of [`RrSampler::sample`]: traverses into
    /// `scratch` and returns the RR set as a borrow of its buffer. Produces
    /// exactly the same set and trace as `sample(seed, index)` — the stable
    /// `(seed, index)` coin streams make the result independent of both the
    /// thread drawing it and any scratch reuse.
    pub fn sample_with<'s>(
        &self,
        seed: u64,
        index: u64,
        scratch: &'s mut SampleScratch,
    ) -> (&'s [u32], RrTrace) {
        let n = self.transpose.num_vertices();
        debug_assert!(n > 0, "cannot sample from an empty graph");
        let mut rng =
            StdRng::seed_from_u64(splitmix(seed ^ index.wrapping_mul(0x9e3779b97f4a7c15)));
        let root = rng.gen_range(0..n as u32);
        // The LT reverse walk visits a handful of vertices per set, so the
        // hub/cold split buys nothing there; it always runs classic.
        let split = self.kernel == SampleKernel::HubSplit
            && !matches!(self.model, DiffusionModel::LinearThreshold);
        if split {
            scratch.begin_split(n, self.num_hubs, root, &self.hub_slot);
        } else {
            scratch.begin(n, root);
        }
        let trace = match self.model {
            DiffusionModel::IndependentCascade { probability } => {
                if split {
                    self.reverse_bfs_split(scratch, &mut rng, |_, p_rng| p_rng < probability)
                } else {
                    self.reverse_bfs(scratch, &mut rng, |_, p_rng| p_rng < probability)
                }
            }
            DiffusionModel::WeightedCascade => {
                // p(u -> v) = 1 / indeg(v): while scanning v's in-neighbors,
                // each passes with probability 1/indeg(v).
                let t = &self.transpose;
                let live = |v: u32, p_rng: f64| {
                    let indeg = t.degree(v).max(1) as f64;
                    p_rng < 1.0 / indeg
                };
                if split {
                    self.reverse_bfs_split(scratch, &mut rng, live)
                } else {
                    self.reverse_bfs(scratch, &mut rng, live)
                }
            }
            DiffusionModel::LinearThreshold => self.reverse_walk(scratch, &mut rng),
        };
        (&scratch.set, trace)
    }

    /// IC-style probabilistic reverse BFS: each in-edge `(u -> v)` of a
    /// visited `v` is live independently, as judged by `live(v, coin)`.
    /// `scratch` arrives seeded with the root.
    fn reverse_bfs<F: Fn(u32, f64) -> bool>(
        &self,
        scratch: &mut SampleScratch,
        rng: &mut StdRng,
        live: F,
    ) -> RrTrace {
        let mut trace = RrTrace { edges_examined: 0, vertices_visited: 1 };
        let mut head = 0usize;
        while head < scratch.set.len() {
            let v = scratch.set[head];
            head += 1;
            for u in self.transpose.iter_row(v) {
                trace.edges_examined += 1;
                if !scratch.is_visited(u) && live(v, rng.gen::<f64>()) {
                    scratch.visit(u);
                    trace.vertices_visited += 1;
                }
            }
        }
        trace
    }

    /// [`RrSampler::reverse_bfs`] over the hub/cold split visited layout.
    /// The visited predicate is evaluated in exactly the same short-circuit
    /// position, so the RNG stream is consumed identically and the sampled
    /// set — push order included — matches the classic path bit for bit.
    fn reverse_bfs_split<F: Fn(u32, f64) -> bool>(
        &self,
        scratch: &mut SampleScratch,
        rng: &mut StdRng,
        live: F,
    ) -> RrTrace {
        let hub_slot = &self.hub_slot;
        let mut trace = RrTrace { edges_examined: 0, vertices_visited: 1 };
        let mut head = 0usize;
        while head < scratch.set.len() {
            let v = scratch.set[head];
            head += 1;
            for u in self.transpose.iter_row(v) {
                trace.edges_examined += 1;
                if !scratch.is_visited_split(u, hub_slot) && live(v, rng.gen::<f64>()) {
                    scratch.visit_split(u, hub_slot);
                    trace.vertices_visited += 1;
                }
            }
        }
        trace
    }

    /// LT-style reverse random walk: from the root, repeatedly step to one
    /// uniformly chosen in-neighbor until revisiting or hitting a source.
    /// `scratch` arrives seeded with the root.
    fn reverse_walk(&self, scratch: &mut SampleScratch, rng: &mut StdRng) -> RrTrace {
        let mut trace = RrTrace { edges_examined: 0, vertices_visited: 1 };
        let mut current = scratch.set[0];
        loop {
            let deg = self.transpose.degree(current);
            if deg == 0 {
                break;
            }
            trace.edges_examined += 1;
            // `nth` streams to the chosen in-neighbor; the index is always
            // in range, so the `None` arm is unreachable and breaking is
            // the graceful (panic-free) answer if it ever weren't.
            let Some(next) = self.transpose.iter_row(current).nth(rng.gen_range(0..deg)) else {
                break;
            };
            if scratch.is_visited(next) {
                break;
            }
            scratch.visit(next);
            trace.vertices_visited += 1;
            current = next;
        }
        trace
    }
}

/// Partitions vertices into hubs and cold for [`SampleKernel::HubSplit`]:
/// the top `n/64` in-degree vertices (at least 1, at most 4096 — a few pages
/// of stamps) get compact slots, deterministically tie-broken by id. Returns
/// `(hub_slot, num_hubs)`.
fn hub_partition(transpose: &Adjacency) -> (Vec<u32>, usize) {
    let n = transpose.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let k = (n / 64).clamp(1, 4096).min(n);
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(transpose.degree(v)), v));
    let mut hub_slot = vec![u32::MAX; n];
    for (slot, &v) in by_degree[..k].iter().enumerate() {
        hub_slot[v as usize] = slot as u32;
    }
    (hub_slot, k)
}

/// SplitMix64 finalizer, decorrelating per-index RNG streams.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{complete, path, star};
    use reorderlab_graph::GraphBuilder;

    fn ic(p: f64) -> DiffusionModel {
        DiffusionModel::IndependentCascade { probability: p }
    }

    #[test]
    fn probability_one_reaches_component() {
        let g = path(10);
        let s = RrSampler::new(&g, ic(1.0));
        let (set, trace) = s.sample(1, 0);
        assert_eq!(set.len(), 10, "p = 1 on a connected graph reaches everything");
        assert_eq!(trace.vertices_visited, 10);
    }

    #[test]
    fn probability_epsilon_reaches_only_root() {
        let g = complete(20);
        let s = RrSampler::new(&g, ic(1e-12));
        for i in 0..10 {
            let (set, _) = s.sample(3, i);
            assert_eq!(set.len(), 1, "p ≈ 0 must keep only the root");
        }
    }

    #[test]
    fn rr_sets_deterministic_per_index() {
        let g = star(50);
        let s = RrSampler::new(&g, ic(0.5));
        assert_eq!(s.sample(7, 3), s.sample(7, 3));
        // Different indices should (overwhelmingly) differ.
        let distinct = (0..20).map(|i| s.sample(7, i).0).collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn directed_graph_uses_transpose() {
        // Arc 0 -> 1 only: an RR set rooted at 1 can contain 0, but an RR
        // set rooted at 0 can never contain 1.
        let g = GraphBuilder::directed(2).edge(0, 1).build().unwrap();
        let s = RrSampler::new(&g, ic(1.0));
        for i in 0..20 {
            let (set, _) = s.sample(11, i);
            if set[0] == 0 {
                assert_eq!(set, vec![0]);
            } else {
                assert_eq!(set, vec![1, 0]);
            }
        }
    }

    #[test]
    fn weighted_cascade_bounded_expansion() {
        let g = complete(30);
        let s = RrSampler::new(&g, DiffusionModel::WeightedCascade);
        // Expected activations per scanned vertex is 1; sets stay small on
        // average. Just verify validity and non-explosion over many draws.
        let mut total = 0usize;
        for i in 0..50 {
            let (set, _) = s.sample(5, i);
            assert!(!set.is_empty());
            total += set.len();
        }
        assert!(total < 50 * 30);
    }

    #[test]
    fn linear_threshold_is_a_path_sample() {
        let g = complete(10);
        let s = RrSampler::new(&g, DiffusionModel::LinearThreshold);
        for i in 0..20 {
            let (set, trace) = s.sample(2, i);
            // A reverse walk visits each vertex at most once and examines
            // one in-edge per step.
            assert_eq!(trace.vertices_visited as usize, set.len());
            let distinct: std::collections::HashSet<_> = set.iter().collect();
            assert_eq!(distinct.len(), set.len());
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        // One scratch reused across many samples (and across models) must
        // reproduce exactly what per-sample allocation produces.
        let g = reorderlab_datasets::erdos_renyi_gnm(120, 360, 13);
        for model in [ic(0.2), DiffusionModel::WeightedCascade, DiffusionModel::LinearThreshold] {
            let s = RrSampler::new(&g, model);
            let mut scratch = SampleScratch::new(g.num_vertices());
            for i in 0..200 {
                let fresh = s.sample(21, i);
                let (set, trace) = s.sample_with(21, i, &mut scratch);
                assert_eq!((set.to_vec(), trace), fresh, "index {i} under {model:?}");
            }
        }
    }

    #[test]
    fn scratch_grows_to_fit_larger_graphs() {
        let small = path(4);
        let big = path(64);
        let mut scratch = SampleScratch::new(small.num_vertices());
        let s = RrSampler::new(&big, ic(1.0));
        let (set, _) = s.sample_with(1, 0, &mut scratch);
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn hub_split_bit_identical_to_classic() {
        // The acceptance criterion for the sampler kernel: the hub/cold
        // split path draws exactly the sets (order included) and traces the
        // classic path draws, for every model and across scratch reuse.
        let graphs = [
            star(80),
            complete(25),
            path(120),
            reorderlab_datasets::erdos_renyi_gnm(300, 1500, 17),
        ];
        for g in &graphs {
            for model in [ic(0.3), DiffusionModel::WeightedCascade, DiffusionModel::LinearThreshold]
            {
                let classic = RrSampler::with_kernel(g, model, SampleKernel::Classic);
                let split = RrSampler::with_kernel(g, model, SampleKernel::HubSplit);
                let mut sc = SampleScratch::new(g.num_vertices());
                let mut ss = SampleScratch::new(g.num_vertices());
                for i in 0..100 {
                    let (a, ta) = classic.sample_with(9, i, &mut sc);
                    let a = a.to_vec();
                    let (b, tb) = split.sample_with(9, i, &mut ss);
                    assert_eq!(a, b, "set mismatch at index {i} under {model:?}");
                    assert_eq!(ta, tb, "trace mismatch at index {i} under {model:?}");
                }
            }
        }
    }

    #[test]
    fn compressed_sampler_bit_identical_to_flat() {
        // The acceptance criterion for compressed-mode IMM: sampling over
        // the varint gap streams draws exactly the sets (order included)
        // and traces the flat transpose draws, for every model and kernel,
        // on undirected and directed graphs alike.
        let directed_ring = {
            let mut b = GraphBuilder::directed(23);
            for v in 0..23u32 {
                b = b.edge(v, (v + 1) % 23).edge(v, (v + 5) % 23);
            }
            b.build().unwrap()
        };
        let graphs = [
            star(80),
            path(120),
            reorderlab_datasets::erdos_renyi_gnm(300, 1500, 17),
            directed_ring,
        ];
        for g in &graphs {
            let cz = CompressedCsr::from_csr(g).unwrap();
            for model in [ic(0.3), DiffusionModel::WeightedCascade, DiffusionModel::LinearThreshold]
            {
                for kernel in [SampleKernel::Classic, SampleKernel::HubSplit] {
                    let flat = RrSampler::with_kernel(g, model, kernel);
                    let packed = RrSampler::with_kernel_compressed(&cz, model, kernel).unwrap();
                    let mut sf = SampleScratch::new(g.num_vertices());
                    let mut sp = SampleScratch::new(g.num_vertices());
                    for i in 0..100 {
                        let (a, ta) = flat.sample_with(9, i, &mut sf);
                        let a = a.to_vec();
                        let (b, tb) = packed.sample_with(9, i, &mut sp);
                        assert_eq!(a, b, "set mismatch at {i} under {model:?}/{kernel:?}");
                        assert_eq!(ta, tb, "trace mismatch at {i} under {model:?}/{kernel:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn transpose_accessor_distinguishes_representations() {
        let g = path(10);
        let flat = RrSampler::new(&g, ic(0.5));
        assert!(flat.transpose().is_some());
        let cz = CompressedCsr::from_csr(&g).unwrap();
        let packed =
            RrSampler::with_kernel_compressed(&cz, ic(0.5), SampleKernel::Classic).unwrap();
        assert!(packed.transpose().is_none());
        assert_eq!(packed.num_vertices(), 10);
    }

    #[test]
    fn hub_partition_is_deterministic_and_prefers_high_degree() {
        let g = star(200);
        let s = RrSampler::with_kernel(&g, ic(0.5), SampleKernel::HubSplit);
        // The hub of a star must hold a compact slot.
        assert_ne!(s.hub_slot[0], u32::MAX);
        assert_eq!(s.num_hubs, 200 / 64);
        // Construction is deterministic.
        let s2 = RrSampler::with_kernel(&g, ic(0.5), SampleKernel::HubSplit);
        assert_eq!(s.hub_slot, s2.hub_slot);
        // Every slot in 0..num_hubs is assigned exactly once.
        let mut seen = vec![false; s.num_hubs];
        for &slot in &s.hub_slot {
            if slot != u32::MAX {
                assert!(!seen[slot as usize]);
                seen[slot as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hub_split_handles_tiny_graphs() {
        for n in [1usize, 2, 3] {
            let g = path(n);
            let s = RrSampler::with_kernel(&g, ic(1.0), SampleKernel::HubSplit);
            let c = RrSampler::with_kernel(&g, ic(1.0), SampleKernel::Classic);
            for i in 0..10 {
                assert_eq!(s.sample(3, i), c.sample(3, i));
            }
        }
    }

    #[test]
    fn trace_counts_edges() {
        let g = star(5);
        let s = RrSampler::new(&g, ic(1.0));
        // Root = hub: scans 4 in-edges then each leaf scans 1 (the hub).
        let (set, trace) = s.sample(0, 4);
        if set[0] == 0 {
            assert_eq!(trace.edges_examined, 4 + 4);
        }
        assert!(trace.edges_examined >= set.len() as u64 - 1);
    }
}
