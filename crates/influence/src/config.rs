//! IMM configuration and diffusion-model selection.

/// The diffusion process simulated during sampling (paper §VI-C: Ripples
/// supports both; the evaluation focuses on IC, "the more computationally
/// challenging").
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DiffusionModel {
    /// Independent Cascade with a uniform edge probability (the paper's
    /// setting; it reports results for `p = 0.25`).
    IndependentCascade {
        /// Per-edge activation probability.
        probability: f64,
    },
    /// Independent Cascade in the *weighted cascade* parameterization:
    /// `p(u → v) = 1 / indegree(v)`.
    WeightedCascade,
    /// Linear Threshold with uniform edge weights `1 / indegree(v)`.
    LinearThreshold,
}

impl DiffusionModel {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DiffusionModel::IndependentCascade { .. } => "IC",
            DiffusionModel::WeightedCascade => "WC",
            DiffusionModel::LinearThreshold => "LT",
        }
    }
}

/// Which iteration path the RR-set reverse-BFS sampler uses.
///
/// Both kernels draw identical RR sets and traces — visitation is keyed on
/// `(seed, index)` RNG streams whose consumption order both paths preserve
/// exactly; they differ only in where the visited stamps live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleKernel {
    /// One epoch-stamped visited array indexed by vertex id.
    #[default]
    Classic,
    /// Hub/cold split: the highest-degree vertices — the ones nearly every
    /// traversal probes — keep their visited stamps in a compact cache-
    /// resident side array, while the cold majority stay in the full-size
    /// array. Same stamps, hot ones packed into a few cache lines.
    HubSplit,
}

impl SampleKernel {
    /// Short display name (used by benches and the snapshot harness).
    pub fn name(&self) -> &'static str {
        match self {
            SampleKernel::Classic => "classic",
            SampleKernel::HubSplit => "hubsplit",
        }
    }

    /// Every kernel, reference first. All entries draw bit-identical RR
    /// sets; they differ only in memory layout and speed.
    pub const ALL: [SampleKernel; 2] = [SampleKernel::Classic, SampleKernel::HubSplit];
}

/// Configuration for [`imm`](crate::imm).
#[derive(Debug, Clone, PartialEq)]
pub struct ImmConfig {
    /// Number of seeds to select.
    pub k: usize,
    /// Approximation parameter ε of the `(1 − 1/e − ε)` guarantee.
    pub epsilon: f64,
    /// Failure-probability exponent ℓ (guarantee holds with probability
    /// `1 − 1/n^ℓ`).
    pub ell: f64,
    /// Diffusion model simulated by the sampler.
    pub model: DiffusionModel,
    /// RNG seed; RR set `i` uses a generator derived from `(seed, i)`, so
    /// results are independent of the thread count.
    pub seed: u64,
    /// Worker threads for the sampling engine (0 = global rayon pool).
    pub threads: usize,
    /// RR sets generated per parallel task.
    pub batch: usize,
    /// Reverse-BFS sampler kernel implementation.
    pub kernel: SampleKernel,
}

impl ImmConfig {
    /// A configuration selecting `k` seeds with default accuracy
    /// (`ε = 0.5`, `ℓ = 1`, IC with `p = 0.25` — the paper's setting).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one seed");
        ImmConfig {
            k,
            epsilon: 0.5,
            ell: 1.0,
            model: DiffusionModel::IndependentCascade { probability: 0.25 },
            seed: 0,
            threads: 0,
            batch: 64,
            kernel: SampleKernel::default(),
        }
    }

    /// Sets ε.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε < 1`.
    pub fn epsilon(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "epsilon must be in (0, 1)");
        self.epsilon = eps;
        self
    }

    /// Sets ℓ.
    ///
    /// # Panics
    ///
    /// Panics unless `ℓ > 0`.
    pub fn ell(mut self, ell: f64) -> Self {
        assert!(ell > 0.0, "ell must be positive");
        self.ell = ell;
        self
    }

    /// Sets the diffusion model.
    ///
    /// # Panics
    ///
    /// Panics if an IC probability is outside `(0, 1]`.
    pub fn model(mut self, model: DiffusionModel) -> Self {
        if let DiffusionModel::IndependentCascade { probability } = model {
            assert!(probability > 0.0 && probability <= 1.0, "IC probability must be in (0, 1]");
        }
        self.model = model;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sampling thread count (0 = global rayon pool).
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Sets the per-task RR batch size.
    pub fn batch(mut self, b: usize) -> Self {
        self.batch = b.max(1);
        self
    }

    /// Selects the reverse-BFS sampler kernel implementation.
    pub fn kernel(mut self, k: SampleKernel) -> Self {
        self.kernel = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ImmConfig::new(10);
        assert_eq!(c.k, 10);
        assert_eq!(c.model, DiffusionModel::IndependentCascade { probability: 0.25 });
        assert_eq!(c.epsilon, 0.5);
    }

    #[test]
    fn builder_chains() {
        let c = ImmConfig::new(5)
            .epsilon(0.3)
            .ell(2.0)
            .model(DiffusionModel::WeightedCascade)
            .seed(9)
            .threads(2)
            .batch(16);
        assert_eq!(c.epsilon, 0.3);
        assert_eq!(c.ell, 2.0);
        assert_eq!(c.model, DiffusionModel::WeightedCascade);
        assert_eq!(c.threads, 2);
        assert_eq!(c.batch, 16);
    }

    #[test]
    fn sample_kernel_selectable() {
        assert_eq!(ImmConfig::new(1).kernel, SampleKernel::Classic);
        for k in SampleKernel::ALL {
            assert_eq!(ImmConfig::new(1).kernel(k).kernel, k);
        }
        assert_ne!(SampleKernel::Classic.name(), SampleKernel::HubSplit.name());
    }

    #[test]
    fn model_names() {
        assert_eq!(DiffusionModel::IndependentCascade { probability: 0.1 }.name(), "IC");
        assert_eq!(DiffusionModel::WeightedCascade.name(), "WC");
        assert_eq!(DiffusionModel::LinearThreshold.name(), "LT");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_zero_k() {
        let _ = ImmConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let _ = ImmConfig::new(1).model(DiffusionModel::IndependentCascade { probability: 1.5 });
    }
}
