//! The IMM algorithm (Tang, Shi & Xiao \[36\]) with its martingale-based
//! stopping rule, plus the parallel sampling engine modeled on Ripples [30]:
//! many probabilistic reverse BFS traversals run concurrently to keep all
//! CPUs busy.

use crate::config::ImmConfig;
use crate::greedy::celf_max_coverage;
use crate::rrset::{RrSampler, RrTrace, SampleScratch};
use rayon::prelude::*;
use reorderlab_graph::{CompressError, CompressedCsr, Csr};
use std::time::{Duration, Instant};

/// Instrumentation from one IMM run — the quantities behind the paper's
/// Figure 11 (sampling throughput and total time).
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingStats {
    /// Wall time spent generating RR sets.
    pub sampling_time: Duration,
    /// Wall time spent in greedy seed selection.
    pub selection_time: Duration,
    /// Total wall time of the run.
    pub total_time: Duration,
    /// Number of RR sets generated.
    pub rr_sets: usize,
    /// RR sets generated per second of sampling time (the paper's
    /// "throughput of the Sampling procedure").
    pub throughput: f64,
    /// Total in-edges examined across all reverse BFS traversals.
    pub edges_examined: u64,
    /// Total vertices entered into RR sets.
    pub vertices_visited: u64,
    /// Mean RR-set size.
    pub mean_rr_size: f64,
}

/// The result of an IMM run.
#[derive(Debug, Clone, PartialEq)]
pub struct ImmResult {
    /// Selected seed vertices (up to `k`).
    pub seeds: Vec<u32>,
    /// Estimated expected influence of the seed set (vertices).
    pub influence_estimate: f64,
    /// Performance counters.
    pub stats: SamplingStats,
}

/// Runs IMM on `graph` (directed or undirected) with the given
/// configuration, returning the `(1 − 1/e − ε)`-approximate seed set and
/// sampling statistics.
///
/// # Examples
///
/// ```
/// use reorderlab_datasets::star;
/// use reorderlab_influence::{imm, ImmConfig};
///
/// let g = star(100);
/// let r = imm(&g, &ImmConfig::new(1).seed(3).threads(1));
/// assert_eq!(r.seeds, vec![0], "the hub dominates influence on a star");
/// ```
pub fn imm(graph: &Csr, cfg: &ImmConfig) -> ImmResult {
    if cfg.threads == 0 {
        imm_inner(graph, cfg)
    } else {
        let pool = reorderlab_graph::build_pool(cfg.threads);
        pool.install(|| imm_inner(graph, cfg))
    }
}

fn imm_inner(graph: &Csr, cfg: &ImmConfig) -> ImmResult {
    let start = Instant::now();
    let n = graph.num_vertices();
    if n == 0 {
        return ImmResult { seeds: Vec::new(), influence_estimate: 0.0, stats: empty_stats() };
    }
    let sampler = RrSampler::with_kernel(graph, cfg.model, cfg.kernel);
    imm_core(n, &sampler, cfg, start)
}

/// [`imm`] running directly on the compressed form: every reverse BFS of
/// the sampling phase streams in-neighbors from the varint gap bytes.
///
/// Bit-identical to [`imm`] on the [`CompressedCsr::decode`] of the same
/// graph — seed sets, RR-set counts, and traversal counters all match
/// exactly, at any thread count (only the wall-clock stats differ).
///
/// # Errors
///
/// [`CompressError::UnsortedRow`] — provably unreachable (see
/// [`RrSampler::with_kernel_compressed`]), surfaced as a typed error
/// rather than a panic.
pub fn imm_compressed(cz: &CompressedCsr, cfg: &ImmConfig) -> Result<ImmResult, CompressError> {
    if cfg.threads == 0 {
        imm_compressed_inner(cz, cfg)
    } else {
        let pool = reorderlab_graph::build_pool(cfg.threads);
        pool.install(|| imm_compressed_inner(cz, cfg))
    }
}

fn imm_compressed_inner(cz: &CompressedCsr, cfg: &ImmConfig) -> Result<ImmResult, CompressError> {
    let start = Instant::now();
    let n = cz.num_vertices();
    if n == 0 {
        return Ok(ImmResult { seeds: Vec::new(), influence_estimate: 0.0, stats: empty_stats() });
    }
    let sampler = RrSampler::with_kernel_compressed(cz, cfg.model, cfg.kernel)?;
    Ok(imm_core(n, &sampler, cfg, start))
}

/// The shared IMM driver: both entry points delegate here once the sampler
/// is built, so flat and compressed runs execute the identical martingale
/// schedule over identical `(seed, index)` sample streams.
fn imm_core(n: usize, sampler: &RrSampler, cfg: &ImmConfig, start: Instant) -> ImmResult {
    let k = cfg.k.min(n);
    let nf = n as f64;
    let ln_n = nf.ln().max(1.0);
    // ℓ is inflated by ln 2 / ln n so the union bound over both IMM phases
    // still yields 1 − 1/n^ℓ overall (Tang et al., §4.2).
    let ell = cfg.ell * (1.0 + 2f64.ln() / ln_n);
    let eps = cfg.epsilon;
    let eps_prime = (2.0f64).sqrt() * eps;
    let log_cnk = log_binomial(n, k);

    let lambda_prime =
        (2.0 + 2.0 * eps_prime / 3.0) * (log_cnk + ell * ln_n + nf.log2().max(1.0).ln()) * nf
            / (eps_prime * eps_prime);

    let mut rr_sets: Vec<Vec<u32>> = Vec::new();
    let mut trace = RrTrace::default();
    let mut sampling_time = Duration::ZERO;
    let mut lb = 1.0f64;

    let max_rounds = (nf.log2().ceil() as u32).max(1);
    for i in 1..=max_rounds {
        let x = nf / 2f64.powi(i as i32);
        let theta_i = (lambda_prime / x).ceil() as usize;
        sampling_time += extend_samples(sampler, cfg, &mut rr_sets, theta_i, &mut trace);
        let cov = celf_max_coverage(&rr_sets, n, k);
        let frac = cov.covered as f64 / rr_sets.len() as f64;
        if nf * frac >= (1.0 + eps_prime) * x {
            lb = nf * frac / (1.0 + eps_prime);
            break;
        }
    }

    let alpha = (ell * ln_n + 2f64.ln()).sqrt();
    let e = std::f64::consts::E;
    let beta = ((1.0 - 1.0 / e) * (log_cnk + ell * ln_n + 2f64.ln())).sqrt();
    let lambda_star = 2.0 * nf * ((1.0 - 1.0 / e) * alpha + beta).powi(2) / (eps * eps);
    let theta = (lambda_star / lb).ceil() as usize;
    sampling_time += extend_samples(sampler, cfg, &mut rr_sets, theta, &mut trace);

    let sel_start = Instant::now();
    // CELF lazy greedy: provably identical output to plain greedy (see
    // greedy.rs tests), with far fewer gain recomputations.
    let cov = celf_max_coverage(&rr_sets, n, k);
    let selection_time = sel_start.elapsed();
    let influence = nf * cov.covered as f64 / rr_sets.len() as f64;

    let rr_count = rr_sets.len();
    let stats = SamplingStats {
        sampling_time,
        selection_time,
        total_time: start.elapsed(),
        rr_sets: rr_count,
        throughput: if sampling_time.is_zero() {
            0.0
        } else {
            rr_count as f64 / sampling_time.as_secs_f64()
        },
        edges_examined: trace.edges_examined,
        vertices_visited: trace.vertices_visited,
        mean_rr_size: if rr_count == 0 {
            0.0
        } else {
            trace.vertices_visited as f64 / rr_count as f64
        },
    };
    ImmResult { seeds: cov.seeds, influence_estimate: influence, stats }
}

/// [`imm`] with run recording: emits the sampling/selection wall-time split
/// (spans `imm/sampling`, `imm/selection`), RR-set counters
/// (`imm/rr_sets`, `imm/edges_examined`, `imm/vertices_visited`), and the
/// selected seed count into `rec`.
///
/// Recording folds in the stats the engine collects anyway, after the
/// computation finishes, so the result is bit-identical to [`imm`] with any
/// recorder at any thread count.
pub fn imm_recorded(
    graph: &Csr,
    cfg: &ImmConfig,
    rec: &mut dyn reorderlab_trace::Recorder,
) -> ImmResult {
    rec.span_enter("imm");
    let r = imm(graph, cfg);
    rec.span_exit("imm");
    record_sampling_stats(&r, rec);
    r
}

/// Folds an already-computed [`ImmResult`]'s instrumentation into a
/// recorder (shared by [`imm_recorded`] and harness code).
pub fn record_sampling_stats(r: &ImmResult, rec: &mut dyn reorderlab_trace::Recorder) {
    let s = &r.stats;
    rec.span_add("imm/sampling", s.sampling_time);
    rec.span_add("imm/selection", s.selection_time);
    rec.counter("imm/rr_sets", s.rr_sets as u64);
    rec.counter("imm/edges_examined", s.edges_examined);
    rec.counter("imm/vertices_visited", s.vertices_visited);
    rec.counter("imm/seeds", r.seeds.len() as u64);
    rec.series("imm/throughput", s.throughput);
    rec.series("imm/mean_rr_size", s.mean_rr_size);
}

/// Grows `rr_sets` to at least `target` sets using parallel batched
/// sampling; RR set `i` always comes from stream `(seed, i)`, so results
/// are thread-count independent. Returns the wall time spent.
fn extend_samples(
    sampler: &RrSampler,
    cfg: &ImmConfig,
    rr_sets: &mut Vec<Vec<u32>>,
    target: usize,
    trace: &mut RrTrace,
) -> Duration {
    let have = rr_sets.len();
    if target <= have {
        return Duration::ZERO;
    }
    let t0 = Instant::now();
    let missing = target - have;
    let batch = cfg.batch;
    let batches = missing.div_ceil(batch);
    // Each worker keeps one `SampleScratch` across its whole share of the
    // batches: the per-sample `n`-byte visited array and queue allocations
    // of the naive loop disappear, leaving only the (unavoidable) exact-size
    // copy of each finished set. Set `i` still comes from stream `(seed, i)`
    // regardless of which worker draws it.
    let new: Vec<(Vec<Vec<u32>>, RrTrace)> = (0..batches)
        .into_par_iter()
        .map_init(
            || SampleScratch::new(sampler.num_vertices()),
            |scratch, b| {
                let lo = have + b * batch;
                let hi = (lo + batch).min(target);
                let mut sets = Vec::with_capacity(hi - lo);
                let mut tr = RrTrace::default();
                for i in lo..hi {
                    let (set, t) = sampler.sample_with(cfg.seed, i as u64, scratch);
                    tr.edges_examined += t.edges_examined;
                    tr.vertices_visited += t.vertices_visited;
                    sets.push(set.to_vec());
                }
                (sets, tr)
            },
        )
        .collect();
    for (sets, tr) in new {
        rr_sets.extend(sets);
        trace.edges_examined += tr.edges_examined;
        trace.vertices_visited += tr.vertices_visited;
    }
    t0.elapsed()
}

fn empty_stats() -> SamplingStats {
    SamplingStats {
        sampling_time: Duration::ZERO,
        selection_time: Duration::ZERO,
        total_time: Duration::ZERO,
        rr_sets: 0,
        throughput: 0.0,
        edges_examined: 0,
        vertices_visited: 0,
        mean_rr_size: 0.0,
    }
}

/// `ln C(n, k)` via the telescoping product — exact enough for IMM's
/// thresholds and safe from overflow.
fn log_binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k.min(n));
    (1..=k).map(|i| ((n - k + i) as f64 / i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiffusionModel;
    use reorderlab_datasets::{clique_chain, erdos_renyi_gnm, star};
    use reorderlab_graph::GraphBuilder;

    fn quick_cfg(k: usize) -> ImmConfig {
        ImmConfig::new(k)
            .model(DiffusionModel::IndependentCascade { probability: 0.1 })
            .threads(1)
            .seed(11)
    }

    #[test]
    fn star_hub_is_top_seed() {
        let g = star(200);
        let r = imm(&g, &quick_cfg(1));
        assert_eq!(r.seeds, vec![0]);
        assert!(r.influence_estimate >= 1.0);
    }

    #[test]
    fn seeds_spread_across_communities() {
        // 4 cliques, k = 4: greedy should take one seed per clique.
        let g = clique_chain(4, 10);
        let r = imm(&g, &ImmConfig::new(4).seed(5).threads(1));
        let mut cliques: Vec<u32> = r.seeds.iter().map(|&s| s / 10).collect();
        cliques.sort_unstable();
        cliques.dedup();
        assert_eq!(cliques.len(), 4, "seeds {:?} must cover all 4 cliques", r.seeds);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = erdos_renyi_gnm(150, 400, 9);
        let a = imm(&g, &quick_cfg(3));
        let b = imm(&g, &quick_cfg(3).threads(4));
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.stats.rr_sets, b.stats.rr_sets);
        assert_eq!(a.influence_estimate, b.influence_estimate);
    }

    #[test]
    fn stats_are_consistent() {
        let g = erdos_renyi_gnm(100, 300, 2);
        let r = imm(&g, &quick_cfg(2));
        let s = &r.stats;
        assert!(s.rr_sets > 0);
        assert!(s.throughput > 0.0);
        assert!(s.vertices_visited >= s.rr_sets as u64, "each set holds at least its root");
        assert!(s.mean_rr_size >= 1.0);
        assert!(s.total_time >= s.sampling_time);
    }

    #[test]
    fn influence_bounded_by_n() {
        let g = erdos_renyi_gnm(80, 200, 4);
        let r = imm(&g, &quick_cfg(5));
        assert!(r.influence_estimate <= 80.0);
        assert!(r.influence_estimate >= r.seeds.len() as f64 * 0.5);
    }

    #[test]
    fn k_capped_at_n() {
        let g = GraphBuilder::undirected(3).edge(0, 1).edge(1, 2).build().unwrap();
        let r = imm(&g, &ImmConfig::new(10).seed(0).threads(1));
        assert!(r.seeds.len() <= 3);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(0).build().unwrap();
        let r = imm(&g, &ImmConfig::new(1).threads(1));
        assert!(r.seeds.is_empty());
        assert_eq!(r.influence_estimate, 0.0);
    }

    #[test]
    fn linear_threshold_end_to_end() {
        let g = star(150);
        let r =
            imm(&g, &ImmConfig::new(1).model(DiffusionModel::LinearThreshold).seed(4).threads(1));
        // Under LT with uniform weights, every leaf's reverse walk hits the
        // hub: the hub dominates coverage.
        assert_eq!(r.seeds, vec![0]);
        assert!(r.stats.rr_sets > 0);
    }

    #[test]
    fn weighted_cascade_end_to_end() {
        let g = clique_chain(3, 8);
        let r =
            imm(&g, &ImmConfig::new(3).model(DiffusionModel::WeightedCascade).seed(8).threads(1));
        assert_eq!(r.seeds.len(), 3);
        assert!(r.influence_estimate <= 24.0);
    }

    #[test]
    fn log_binomial_sane() {
        assert!((log_binomial(10, 0) - 0.0).abs() < 1e-12);
        assert!((log_binomial(10, 10) - 0.0).abs() < 1e-12);
        assert!((log_binomial(10, 1) - 10f64.ln()).abs() < 1e-12);
        // C(10, 5) = 252
        assert!((log_binomial(10, 5) - 252f64.ln()).abs() < 1e-9);
        // Symmetric.
        assert!((log_binomial(20, 3) - log_binomial(20, 17)).abs() < 1e-9);
    }

    #[test]
    fn recorded_run_is_bit_identical_and_counts_samples() {
        let g = erdos_renyi_gnm(120, 350, 5);
        let plain = imm(&g, &quick_cfg(2));
        let mut rec = reorderlab_trace::RunRecorder::new();
        let recorded = imm_recorded(&g, &quick_cfg(2), &mut rec);
        assert_eq!(plain.seeds, recorded.seeds);
        assert_eq!(plain.influence_estimate, recorded.influence_estimate);
        assert_eq!(plain.stats.rr_sets, recorded.stats.rr_sets);
        assert_eq!(rec.counters()["imm/rr_sets"], plain.stats.rr_sets as u64);
        assert_eq!(rec.counters()["imm/edges_examined"], plain.stats.edges_examined);
        assert_eq!(rec.counters()["imm/seeds"], plain.seeds.len() as u64);
        assert_eq!(rec.spans()["imm"].count, 1);
        assert!(rec.spans()["imm/sampling"].wall <= rec.spans()["imm"].wall);
        let noop = imm_recorded(&g, &quick_cfg(2), &mut reorderlab_trace::NoopRecorder);
        assert_eq!(noop.seeds, plain.seeds);
    }

    #[test]
    fn hub_split_kernel_end_to_end_identical() {
        // The sampler-kernel differential at the IMM level, at the 1/2/7
        // acceptance thread counts: seeds, counters, and the influence
        // estimate are bit-identical between kernels.
        let g = erdos_renyi_gnm(150, 500, 3);
        for threads in [1usize, 2, 7] {
            let base = quick_cfg(3).threads(threads);
            let classic = imm(&g, &base.clone().kernel(crate::config::SampleKernel::Classic));
            let split = imm(&g, &base.kernel(crate::config::SampleKernel::HubSplit));
            assert_eq!(classic.seeds, split.seeds, "{threads} threads");
            assert_eq!(classic.influence_estimate, split.influence_estimate);
            assert_eq!(classic.stats.rr_sets, split.stats.rr_sets);
            assert_eq!(classic.stats.edges_examined, split.stats.edges_examined);
            assert_eq!(classic.stats.vertices_visited, split.stats.vertices_visited);
        }
    }

    #[test]
    fn compressed_imm_bit_identical_at_acceptance_thread_counts() {
        // The acceptance criterion: IMM over the compressed form matches
        // the flat oracle bit for bit at 1, 2, and 7 threads.
        use reorderlab_graph::CompressedCsr;
        let g = erdos_renyi_gnm(150, 400, 9);
        let cz = CompressedCsr::from_csr(&g).unwrap();
        for threads in [1usize, 2, 7] {
            let cfg = quick_cfg(3).threads(threads);
            let flat = imm(&g, &cfg);
            let packed = imm_compressed(&cz, &cfg).unwrap();
            assert_eq!(flat.seeds, packed.seeds, "{threads} threads");
            assert_eq!(flat.influence_estimate, packed.influence_estimate);
            assert_eq!(flat.stats.rr_sets, packed.stats.rr_sets);
            assert_eq!(flat.stats.edges_examined, packed.stats.edges_examined);
            assert_eq!(flat.stats.vertices_visited, packed.stats.vertices_visited);
        }
    }

    #[test]
    fn compressed_imm_empty_graph() {
        use reorderlab_graph::CompressedCsr;
        let g = GraphBuilder::undirected(0).build().unwrap();
        let cz = CompressedCsr::from_csr(&g).unwrap();
        let r = imm_compressed(&cz, &ImmConfig::new(1).threads(1)).unwrap();
        assert!(r.seeds.is_empty());
    }

    #[test]
    fn higher_probability_grows_rr_sets() {
        let g = erdos_renyi_gnm(200, 600, 6);
        let low = imm(&g, &quick_cfg(2));
        let high = imm(
            &g,
            &ImmConfig::new(2)
                .model(DiffusionModel::IndependentCascade { probability: 0.4 })
                .threads(1)
                .seed(11),
        );
        assert!(high.stats.mean_rr_size > low.stats.mean_rr_size);
    }
}
