//! Greedy maximum coverage over RR sets — IMM's seed-selection step
//! ("NodeSelection" in Tang et al. \[36\]).
//!
//! Selecting the `k` vertices covering the most RR sets yields the
//! `(1 − 1/e)`-approximate most influential seed set for the sampled
//! realizations.

/// The outcome of greedy coverage: chosen seeds and how many RR sets they
/// jointly cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Selected seed vertices, in pick order.
    pub seeds: Vec<u32>,
    /// Number of RR sets covered by the seed set.
    pub covered: usize,
}

/// Greedily selects up to `k` vertices maximizing RR-set coverage.
///
/// Ties are broken toward the smaller vertex id for determinism. Vertices
/// covering zero additional sets are never selected (the seed list may be
/// shorter than `k` when coverage saturates).
///
/// # Panics
///
/// Panics if any RR set mentions a vertex `>= n`.
pub fn greedy_max_coverage(rr_sets: &[Vec<u32>], n: usize, k: usize) -> Coverage {
    // Inverted index: which sets contain each vertex.
    let mut containing: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, set) in rr_sets.iter().enumerate() {
        for &v in set {
            containing[v as usize].push(i as u32);
        }
    }
    let mut gain: Vec<usize> = containing.iter().map(Vec::len).collect();
    let mut set_covered = vec![false; rr_sets.len()];
    let mut seeds = Vec::with_capacity(k);
    let mut covered = 0usize;

    for _ in 0..k {
        let best = (0..n).max_by_key(|&v| (gain[v], std::cmp::Reverse(v)));
        let v = match best {
            Some(v) if gain[v] > 0 => v,
            _ => break, // saturated
        };
        seeds.push(v as u32);
        // Cover v's sets and decrement the gains of their other members.
        let sets = std::mem::take(&mut containing[v]);
        for &s in &sets {
            if set_covered[s as usize] {
                continue;
            }
            set_covered[s as usize] = true;
            covered += 1;
            for &u in &rr_sets[s as usize] {
                gain[u as usize] = gain[u as usize].saturating_sub(1);
            }
        }
        gain[v] = 0;
    }
    Coverage { seeds, covered }
}

/// CELF (lazy greedy) maximum coverage: identical output to
/// [`greedy_max_coverage`] — same seeds, same order, same tie-breaks — but
/// exploits submodularity to skip most gain recomputations. This is the
/// optimization production IMM implementations (Ripples included) apply to
/// the NodeSelection step.
///
/// # Panics
///
/// Panics if any RR set mentions a vertex `>= n`.
pub fn celf_max_coverage(rr_sets: &[Vec<u32>], n: usize, k: usize) -> Coverage {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut containing: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, set) in rr_sets.iter().enumerate() {
        for &v in set {
            containing[v as usize].push(i as u32);
        }
    }
    let mut set_covered = vec![false; rr_sets.len()];
    // Heap of (gain, lower-id-first, vertex, freshness round).
    let mut heap: BinaryHeap<(usize, Reverse<u32>, usize)> = (0..n)
        .filter(|&v| !containing[v].is_empty())
        .map(|v| (containing[v].len(), Reverse(v as u32), 0usize))
        .collect();
    let mut seeds = Vec::with_capacity(k);
    let mut covered = 0usize;
    let mut round = 0usize;

    while seeds.len() < k {
        let Some((gain, Reverse(v), fresh)) = heap.pop() else { break };
        if gain == 0 {
            break; // saturated: every remaining gain is ≤ this one
        }
        if fresh < round {
            // Stale: recompute the marginal gain lazily and reinsert.
            let current =
                containing[v as usize].iter().filter(|&&s| !set_covered[s as usize]).count();
            heap.push((current, Reverse(v), round));
            continue;
        }
        // Fresh maximum: select it.
        seeds.push(v);
        for &s in &containing[v as usize] {
            if !set_covered[s as usize] {
                set_covered[s as usize] = true;
                covered += 1;
            }
        }
        round += 1;
    }
    Coverage { seeds, covered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_highest_coverage_first() {
        let sets = vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![4]];
        let c = greedy_max_coverage(&sets, 5, 2);
        assert_eq!(c.seeds, vec![0, 4]);
        assert_eq!(c.covered, 4);
    }

    #[test]
    fn marginal_gain_updates_after_pick() {
        // Vertex 1 looks good (2 sets) but both overlap vertex 0's sets.
        let sets = vec![vec![0, 1], vec![0, 1], vec![0], vec![2]];
        let c = greedy_max_coverage(&sets, 3, 2);
        assert_eq!(c.seeds, vec![0, 2], "after 0, vertex 1 has zero marginal gain");
        assert_eq!(c.covered, 4);
    }

    #[test]
    fn stops_when_saturated() {
        let sets = vec![vec![0], vec![0]];
        let c = greedy_max_coverage(&sets, 4, 3);
        assert_eq!(c.seeds, vec![0]);
        assert_eq!(c.covered, 2);
    }

    #[test]
    fn ties_break_to_lower_id() {
        let sets = vec![vec![2, 5], vec![2, 5]];
        let c = greedy_max_coverage(&sets, 6, 1);
        assert_eq!(c.seeds, vec![2]);
    }

    #[test]
    fn empty_inputs() {
        let c = greedy_max_coverage(&[], 5, 3);
        assert!(c.seeds.is_empty());
        assert_eq!(c.covered, 0);
        let c2 = greedy_max_coverage(&[vec![1]], 2, 0);
        assert!(c2.seeds.is_empty());
    }

    #[test]
    fn covers_everything_with_enough_seeds() {
        let sets = vec![vec![0], vec![1], vec![2], vec![3]];
        let c = greedy_max_coverage(&sets, 4, 4);
        assert_eq!(c.covered, 4);
        assert_eq!(c.seeds.len(), 4);
    }

    #[test]
    fn celf_matches_greedy_on_fixtures() {
        let fixtures: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![4]],
            vec![vec![0, 1], vec![0, 1], vec![0], vec![2]],
            vec![vec![2, 5], vec![2, 5]],
            vec![vec![0], vec![1], vec![2], vec![3]],
            vec![vec![1, 2, 3], vec![2, 3], vec![3], vec![4, 5], vec![5]],
        ];
        for sets in fixtures {
            for k in 1..=4 {
                let a = greedy_max_coverage(&sets, 8, k);
                let b = celf_max_coverage(&sets, 8, k);
                assert_eq!(a, b, "sets {sets:?}, k={k}");
            }
        }
    }

    #[test]
    fn celf_empty_inputs() {
        let c = celf_max_coverage(&[], 5, 3);
        assert!(c.seeds.is_empty());
        assert_eq!(c.covered, 0);
    }

    #[test]
    fn celf_stops_at_zero_gain() {
        let sets = vec![vec![0], vec![0]];
        let c = celf_max_coverage(&sets, 4, 3);
        assert_eq!(c.seeds, vec![0]);
        assert_eq!(c.covered, 2);
    }
}
