//! # reorderlab-influence
//!
//! Influence maximization via IMM (Tang, Shi & Xiao \[36\]) with a parallel
//! reverse-reachability sampling engine modeled on Ripples \[30\] — the
//! second application of the paper's §VI study.
//!
//! The core computational task is the *Sampling* procedure: tens of
//! thousands of probabilistic BFS traversals over the transpose graph,
//! batched across CPUs. The engine reports sampling throughput and total
//! time, the two quantities of the paper's Figure 11.
//!
//! ## Example
//!
//! ```
//! use reorderlab_datasets::clique_chain;
//! use reorderlab_influence::{imm, ImmConfig};
//!
//! let g = clique_chain(3, 10);
//! let r = imm(&g, &ImmConfig::new(3).seed(1).threads(2));
//! assert_eq!(r.seeds.len(), 3);
//! assert!(r.stats.rr_sets > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod greedy;
mod imm;
mod rrset;
mod simulate;

pub use config::{DiffusionModel, ImmConfig, SampleKernel};
pub use greedy::{celf_max_coverage, greedy_max_coverage, Coverage};
pub use imm::{imm, imm_compressed, imm_recorded, record_sampling_stats, ImmResult, SamplingStats};
pub use rrset::{RrSampler, RrTrace, SampleScratch};
pub use simulate::{estimate_spread, SpreadEstimate};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use reorderlab_graph::GraphBuilder;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn rr_sets_stay_within_component(
            n in 3usize..25,
            edges in proptest::collection::vec((0u32..25, 0u32..25), 1..60),
            seed in any::<u64>(),
        ) {
            let edges: Vec<(u32, u32)> = edges.into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32)).collect();
            let g = GraphBuilder::undirected(n).edges(edges).build().unwrap();
            let comps = reorderlab_graph::Components::find(&g);
            let s = RrSampler::new(&g, DiffusionModel::IndependentCascade { probability: 0.5 });
            for i in 0..10u64 {
                let (set, trace) = s.sample(seed, i);
                prop_assert!(!set.is_empty());
                prop_assert_eq!(trace.vertices_visited as usize, set.len());
                let root_comp = comps.component_of(set[0]);
                for &v in &set {
                    prop_assert_eq!(comps.component_of(v), root_comp);
                }
                // No duplicates.
                let distinct: std::collections::HashSet<_> = set.iter().collect();
                prop_assert_eq!(distinct.len(), set.len());
            }
        }

        #[test]
        fn celf_equals_greedy(
            sets in proptest::collection::vec(
                proptest::collection::vec(0u32..20, 1..6), 1..40),
            k in 1usize..6,
        ) {
            let a = greedy_max_coverage(&sets, 20, k);
            let b = celf_max_coverage(&sets, 20, k);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn greedy_coverage_never_exceeds_sets(
            sets in proptest::collection::vec(
                proptest::collection::vec(0u32..20, 1..6), 1..30),
            k in 1usize..5,
        ) {
            let c = greedy_max_coverage(&sets, 20, k);
            prop_assert!(c.covered <= sets.len());
            prop_assert!(c.seeds.len() <= k);
            // Verify the reported coverage by recount.
            let chosen: std::collections::HashSet<u32> = c.seeds.iter().copied().collect();
            let actual = sets.iter()
                .filter(|s| s.iter().any(|v| chosen.contains(v)))
                .count();
            prop_assert_eq!(actual, c.covered);
        }
    }
}
