//! Forward Monte-Carlo estimation of influence spread.
//!
//! IMM's influence estimate comes from *reverse* sampling; the ground-truth
//! check is the definition itself: run the diffusion process forward from
//! the seed set many times and average the cascade sizes. This module
//! provides that estimator (parallel over simulations), used in tests and
//! examples to validate IMM's `(1 − 1/e − ε)` quality end to end.

use crate::config::DiffusionModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use reorderlab_graph::Csr;

/// The outcome of forward spread simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadEstimate {
    /// Mean cascade size (vertices activated, seeds included).
    pub mean: f64,
    /// Sample standard deviation of the cascade size.
    pub std_dev: f64,
    /// Number of simulations run.
    pub simulations: usize,
}

impl SpreadEstimate {
    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.simulations == 0 {
            return 0.0;
        }
        self.std_dev / (self.simulations as f64).sqrt()
    }
}

/// Estimates the expected spread of `seeds` under `model` by running
/// `simulations` independent forward cascades (parallel, each derived from
/// `(seed, index)` so results are thread-count independent).
///
/// # Panics
///
/// Panics if any seed vertex is out of bounds.
///
/// # Examples
///
/// ```
/// use reorderlab_datasets::star;
/// use reorderlab_influence::{estimate_spread, DiffusionModel};
///
/// let g = star(100);
/// let e = estimate_spread(
///     &g,
///     &[0],
///     DiffusionModel::IndependentCascade { probability: 0.5 },
///     500,
///     7,
/// );
/// // The hub activates ~half its 99 leaves: spread ≈ 1 + 49.5.
/// assert!((e.mean - 50.5).abs() < 5.0, "mean {}", e.mean);
/// ```
pub fn estimate_spread(
    graph: &Csr,
    seeds: &[u32],
    model: DiffusionModel,
    simulations: usize,
    rng_seed: u64,
) -> SpreadEstimate {
    let n = graph.num_vertices();
    for &s in seeds {
        assert!((s as usize) < n, "seed {s} out of bounds");
    }
    if n == 0 || seeds.is_empty() || simulations == 0 {
        return SpreadEstimate { mean: 0.0, std_dev: 0.0, simulations };
    }
    let sizes: Vec<f64> = (0..simulations)
        .into_par_iter()
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(rng_seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
            simulate_once(graph, seeds, model, &mut rng) as f64
        })
        .collect();
    let mean = sizes.iter().sum::<f64>() / simulations as f64;
    let var = if simulations < 2 {
        0.0
    } else {
        sizes.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (simulations as f64 - 1.0)
    };
    SpreadEstimate { mean, std_dev: var.sqrt(), simulations }
}

/// One forward cascade; returns the number of activated vertices.
fn simulate_once(graph: &Csr, seeds: &[u32], model: DiffusionModel, rng: &mut StdRng) -> usize {
    let n = graph.num_vertices();
    let mut active = vec![false; n];
    let mut frontier: Vec<u32> = Vec::new();
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            frontier.push(s);
        }
    }
    let mut count = frontier.len();
    match model {
        DiffusionModel::IndependentCascade { probability } => {
            while let Some(v) = frontier.pop() {
                for &u in graph.neighbors(v) {
                    if !active[u as usize] && rng.gen::<f64>() < probability {
                        active[u as usize] = true;
                        count += 1;
                        frontier.push(u);
                    }
                }
            }
        }
        DiffusionModel::WeightedCascade => {
            while let Some(v) = frontier.pop() {
                for &u in graph.neighbors(v) {
                    let p = 1.0 / graph.degree(u).max(1) as f64;
                    if !active[u as usize] && rng.gen::<f64>() < p {
                        active[u as usize] = true;
                        count += 1;
                        frontier.push(u);
                    }
                }
            }
        }
        DiffusionModel::LinearThreshold => {
            // Each vertex draws a threshold; activates once the active
            // fraction of its in-neighborhood (uniform weights) exceeds it.
            let thresholds: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let mut changed = true;
            while changed {
                changed = false;
                for v in 0..n as u32 {
                    if active[v as usize] {
                        continue;
                    }
                    let deg = graph.degree(v);
                    if deg == 0 {
                        continue;
                    }
                    let live = graph.neighbors(v).iter().filter(|&&u| active[u as usize]).count();
                    if live as f64 / deg as f64 >= thresholds[v as usize] {
                        active[v as usize] = true;
                        count += 1;
                        changed = true;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{clique_chain, path, star};

    fn ic(p: f64) -> DiffusionModel {
        DiffusionModel::IndependentCascade { probability: p }
    }

    #[test]
    fn zero_probability_spread_is_seed_count() {
        let g = star(50);
        let e = estimate_spread(&g, &[0, 3], ic(0.0), 100, 1);
        assert_eq!(e.mean, 2.0);
        assert_eq!(e.std_dev, 0.0);
    }

    #[test]
    fn probability_one_reaches_component() {
        let g = path(20);
        let e = estimate_spread(&g, &[0], ic(1.0), 50, 2);
        assert_eq!(e.mean, 20.0);
    }

    #[test]
    fn star_hub_spread_matches_closed_form() {
        // Hub seed with IC(p): spread = 1 + 99p exactly in expectation.
        let g = star(100);
        let e = estimate_spread(&g, &[0], ic(0.3), 3_000, 3);
        let expected = 1.0 + 99.0 * 0.3;
        assert!(
            (e.mean - expected).abs() < 4.0 * e.std_error().max(0.2),
            "mean {} vs expected {expected} (se {})",
            e.mean,
            e.std_error()
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Per-simulation RNG streams are index-derived; results must not
        // depend on rayon's schedule.
        let g = clique_chain(3, 8);
        let a = estimate_spread(&g, &[0], ic(0.2), 200, 5);
        let b = estimate_spread(&g, &[0], ic(0.2), 200, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = path(10);
        let e = estimate_spread(&g, &[4, 4, 4], ic(0.0), 10, 0);
        assert_eq!(e.mean, 1.0);
    }

    #[test]
    fn linear_threshold_spreads_in_cliques() {
        // In a clique, one active member gives each other vertex activation
        // probability 1/(size-1) per threshold draw; spread exceeds 1.
        let g = clique_chain(1, 10);
        let e = estimate_spread(&g, &[0], DiffusionModel::LinearThreshold, 1_000, 9);
        assert!(e.mean > 1.5, "LT should propagate in a clique, mean {}", e.mean);
        assert!(e.mean <= 10.0);
    }

    #[test]
    fn empty_inputs() {
        let g = path(5);
        assert_eq!(estimate_spread(&g, &[], ic(0.5), 100, 0).mean, 0.0);
        assert_eq!(estimate_spread(&g, &[0], ic(0.5), 0, 0).simulations, 0);
    }

    #[test]
    fn imm_estimate_agrees_with_forward_simulation() {
        // End-to-end validation: IMM's reverse-sampling estimate and the
        // forward Monte-Carlo estimate must agree within sampling error.
        use crate::{imm, ImmConfig};
        let g = reorderlab_datasets::barabasi_albert(500, 3, 7);
        let cfg = ImmConfig::new(5).model(ic(0.05)).seed(11).threads(1);
        let r = imm(&g, &cfg);
        let forward = estimate_spread(&g, &r.seeds, ic(0.05), 2_000, 13);
        let rel = (r.influence_estimate - forward.mean).abs() / forward.mean;
        assert!(
            rel < 0.2,
            "IMM {} vs forward MC {} (rel {rel:.3})",
            r.influence_estimate,
            forward.mean
        );
    }
}
