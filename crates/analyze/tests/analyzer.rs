//! Integration tests: the fixture corpus (one offending file per rule, with
//! exact rule ids and 1-based lines), end-to-end allowlist semantics over a
//! synthetic workspace — including the schema-2 fingerprint pins — the CLI
//! binary's exit codes, and — the acceptance gate — the real workspace
//! analyzing clean against the committed `analyze.toml`.

use std::path::{Path, PathBuf};

use reorderlab_analyze::{allowlist, analyze_workspace, lexer, rules, to_json};
use rules::{Diagnostic, Scope};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn check_fixture(name: &str, scope: &Scope) -> Vec<Diagnostic> {
    rules::check(&lexer::lex(&fixture(name)), scope)
}

fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn d1_fixture_flags_each_hashmap_site() {
    let d = check_fixture("d1.rs", &Scope::all());
    assert_eq!(lines_of(&d, "D1"), vec![3, 5, 6], "{d:?}");
    assert_eq!(d.len(), 3, "no other rule fires on the D1 fixture: {d:?}");
}

#[test]
fn d2_fixture_flags_the_par_sum_only() {
    let d = check_fixture("d2.rs", &Scope::all());
    assert_eq!(lines_of(&d, "D2"), vec![5], "{d:?}");
    assert_eq!(d.len(), 1, "the serial fold inside the closure must not fire: {d:?}");
}

#[test]
fn p1_fixture_flags_unwrap_expect_panic_index() {
    let d = check_fixture("p1.rs", &Scope::all());
    assert_eq!(lines_of(&d, "P1"), vec![5, 9, 13, 17], "{d:?}");
    assert_eq!(d.len(), 4, "parser-method expect and unwrap_or must not fire: {d:?}");
}

#[test]
fn c1_fixture_distinguishes_narrow_from_ingestion_mode() {
    let all = check_fixture("c1.rs", &Scope::all());
    assert_eq!(lines_of(&all, "C1"), vec![3, 7], "ingestion mode bans all int casts: {all:?}");

    let mut narrow = Scope::all();
    narrow.c1_all_int = false;
    let d = check_fixture("c1.rs", &narrow);
    assert_eq!(lines_of(&d, "C1"), vec![3], "narrow mode allows `as usize`: {d:?}");
}

#[test]
fn u1_fixture_flags_missing_forbid_and_unsafe() {
    let d = check_fixture("u1.rs", &Scope::all());
    assert_eq!(lines_of(&d, "U1"), vec![1, 2], "{d:?}");
    assert_eq!(d.len(), 2, "{d:?}");
}

#[test]
fn l1_fixture_flags_blocking_under_a_live_guard_only() {
    let d = check_fixture("l1.rs", &Scope::all());
    assert_eq!(
        lines_of(&d, "L1"),
        vec![13],
        "only the write under the live guard fires; dropped, detached, and \
         scope-closed bindings are negatives: {d:?}"
    );
    assert_eq!(d.len(), 1, "no other rule fires on the L1 fixture: {d:?}");
}

#[test]
fn e1_fixture_separates_lock_channel_results_from_plain_options() {
    let d = check_fixture("e1.rs", &Scope::all());
    assert_eq!(
        lines_of(&d, "E1"),
        vec![8, 12],
        "unwrap-on-lock and expect-on-send fire; the Option unwrap, the \
         non-panicking unwrap_or, and the blessed lock() helper do not: {d:?}"
    );
    // The negatives are E1 negatives, not dead code: plain P1 still sees the
    // Option unwrap (line 16) and the blessed helper's unwrap (line 25).
    let p1 = lines_of(&d, "P1");
    assert!(p1.contains(&16) && p1.contains(&25), "{d:?}");
}

#[test]
fn w1_fixture_flags_the_wildcard_swallowed_variant() {
    let d = check_fixture("w1.rs", &Scope::all());
    assert_eq!(lines_of(&d, "W1"), vec![19], "{d:?}");
    assert_eq!(d.len(), 1, "the complete exit_code mapping is the negative: {d:?}");
    assert!(d[0].message.contains("Shutdown"), "names the swallowed variant: {d:?}");
    assert!(d[0].message.contains("status"), "names the incomplete mapping: {d:?}");
}

#[test]
fn w1_mutation_of_the_real_operror_is_caught() {
    // The seeded-mutation contract: deleting any single match arm from the
    // committed crates/ops/src/error.rs wire-status mapping must produce a
    // W1 finding. CI runs the same mutation through the binary.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../ops/src/error.rs");
    let source = std::fs::read_to_string(&path).expect("committed ops error.rs");

    let mut scope = Scope::all();
    scope.p1 = false; // judge the mutation on W1 alone
    let clean = rules::check(&lexer::lex(&source), &scope);
    assert_eq!(lines_of(&clean, "W1"), Vec::<u32>::new(), "committed file is W1-clean");

    let arm = "OpError::Io(_) => \"io\",";
    assert!(source.contains(arm), "the mutation target exists in error.rs");
    let mutated = source.replacen(arm, "", 1);
    let d = rules::check(&lexer::lex(&mutated), &scope);
    let w1 = lines_of(&d, "W1");
    assert_eq!(w1.len(), 1, "exactly the deleted arm is reported: {d:?}");
    assert!(
        d.iter().any(|x| x.rule == "W1" && x.message.contains("Io")),
        "names the unmapped variant: {d:?}"
    );
}

#[test]
fn clean_fixture_is_clean() {
    let d = check_fixture("clean.rs", &Scope::all());
    assert_eq!(d, Vec::new());
}

/// Builds a throwaway workspace under the target temp dir: one or more
/// files under `crates/<crate>/src/`.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn with_files(tag: &str, files: &[(&str, &str)]) -> Self {
        let root = std::env::temp_dir()
            .join(format!("reorderlab-analyze-it-{}-{tag}", std::process::id()));
        for (rel, source) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("files live under crates/*/src"))
                .expect("temp workspace");
            std::fs::write(&path, source).expect("temp source file");
        }
        TempWorkspace { root }
    }

    fn new(tag: &str, lib_source: &str) -> Self {
        Self::with_files(tag, &[("crates/graph/src/lib.rs", lib_source)])
    }

    fn run(&self, allow_text: &str) -> reorderlab_analyze::AnalysisReport {
        let allow = allowlist::parse(allow_text).expect("valid allowlist text");
        analyze_workspace(&self.root, &allow).expect("workspace walk")
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const OFFENDING_LIB: &str = "#![forbid(unsafe_code)]\n\
    // SAFETY: fixture justification for the blessed unwrap below.\n\
    pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";

/// The same library with lines inserted above the offending site (which the
/// schema-2 fingerprint must survive) — the unwrap moves from line 4 to 6.
const SHIFTED_LIB: &str = "#![forbid(unsafe_code)]\n\
    // A refactor inserted these two lines above the blessed site.\n\
    // Line pins would now be stale; fingerprints must not be.\n\
    // SAFETY: fixture justification for the blessed unwrap below.\n\
    pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";

/// Fingerprint of the offending line, as the allowlist spells it.
fn offending_fingerprint() -> String {
    format!("{:016x}", allowlist::line_fingerprint("x.unwrap()"))
}

fn fingerprint_allow() -> String {
    format!(
        "schema = 2\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\n\
         fingerprint = \"{}\"\nreason = \"fixture\"\n",
        offending_fingerprint()
    )
}

#[test]
fn allowlisted_site_with_justification_is_clean() {
    let ws = TempWorkspace::new("ok", OFFENDING_LIB);
    let report = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 4\nreason = \"fixture\"\n",
    );
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.suppressed, 1);
}

#[test]
fn schema_1_still_reads_but_warns_deprecation() {
    let ws = TempWorkspace::new("s1warn", OFFENDING_LIB);
    let report = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 4\nreason = \"fixture\"\n",
    );
    assert!(report.is_clean(), "warnings are not problems: {report:?}");
    assert!(
        report.warnings.iter().any(|w| w.contains("deprecated")),
        "schema 1 reads with a deprecation warning: {:?}",
        report.warnings
    );
}

#[test]
fn fingerprint_pins_survive_lines_inserted_above() {
    let allow = fingerprint_allow();
    let ws = TempWorkspace::new("fp", OFFENDING_LIB);
    let before = ws.run(&allow);
    assert!(before.is_clean(), "fingerprint blesses the original layout: {before:?}");
    assert_eq!(before.suppressed, 1);
    drop(ws);

    let ws = TempWorkspace::new("fpshift", SHIFTED_LIB);
    let after = ws.run(&allow);
    assert!(after.is_clean(), "the same entry survives the two-line shift: {after:?}");
    assert_eq!(after.suppressed, 1);
    assert!(after.warnings.is_empty(), "schema 2 carries no deprecation warning: {after:?}");

    // Contrast: a schema-1 line pin goes stale under the same shift.
    let stale = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 4\nreason = \"fixture\"\n",
    );
    assert!(!stale.is_clean());
    assert!(stale.problems.iter().any(|p| p.contains("unused")), "{:?}", stale.problems);
}

#[test]
fn fingerprint_pins_fail_when_the_line_content_changes() {
    let changed = OFFENDING_LIB.replace("x.unwrap()", "y.unwrap()");
    let ws = TempWorkspace::new("fpchange", &changed);
    let report = ws.run(&fingerprint_allow());
    assert!(!report.is_clean(), "a content change must invalidate the pin: {report:?}");
    assert_eq!(report.diagnostics.len(), 1, "the finding resurfaces");
    assert!(
        report.problems.iter().any(|p| p.contains("unused fingerprint")),
        "{:?}",
        report.problems
    );
    let new_print = format!("{:016x}", allowlist::line_fingerprint("y.unwrap()"));
    assert!(
        report.problems.iter().any(|p| p.contains(&new_print)),
        "the problem suggests the candidate re-key {new_print}: {:?}",
        report.problems
    );
}

#[test]
fn line_pins_inside_a_schema_2_file_are_problems_with_the_replacement() {
    let ws = TempWorkspace::new("s2line", OFFENDING_LIB);
    let report = ws.run(
        "schema = 2\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 4\nreason = \"fixture\"\n",
    );
    assert!(!report.is_clean());
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("forbids") && p.contains(&offending_fingerprint())),
        "the problem quotes the fingerprint to migrate to: {:?}",
        report.problems
    );
}

#[test]
fn missing_justification_comment_is_a_problem() {
    let no_comment =
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let ws = TempWorkspace::new("nojust", no_comment);
    let report = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 3\nreason = \"fixture\"\n",
    );
    assert!(!report.is_clean());
    assert!(
        report.problems.iter().any(|p| p.contains("SAFETY")),
        "expects a missing-justification problem: {:?}",
        report.problems
    );
}

#[test]
fn deleting_the_safety_comment_fails_a_fingerprinted_site() {
    let no_comment = OFFENDING_LIB
        .replace("// SAFETY: fixture justification for the blessed unwrap below.\n", "");
    let ws = TempWorkspace::new("fpnojust", &no_comment);
    let report = ws.run(&fingerprint_allow());
    assert!(!report.is_clean(), "fingerprint pins still demand justification: {report:?}");
    assert!(report.problems.iter().any(|p| p.contains("SAFETY")), "{:?}", report.problems);
}

#[test]
fn unused_entry_is_a_problem() {
    let ws = TempWorkspace::new("unused", OFFENDING_LIB);
    let report = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 999\nreason = \"stale\"\n",
    );
    assert!(report.problems.iter().any(|p| p.contains("unused")), "{:?}", report.problems);
    assert_eq!(report.diagnostics.len(), 1, "the real finding still surfaces");
}

#[test]
fn count_entries_ratchet_exactly() {
    let ws = TempWorkspace::new("count", OFFENDING_LIB);
    let ok = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\ncount = 1\nreason = \"fixture\"\n",
    );
    assert!(ok.is_clean(), "{ok:?}");
    let drift = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\ncount = 2\nreason = \"fixture\"\n",
    );
    assert!(drift.problems.iter().any(|p| p.contains("count drift")), "{:?}", drift.problems);
}

#[test]
fn d3_taint_crosses_files_and_spares_the_serial_caller() {
    let kernel = fixture("d3_kernel.rs");
    let driver = fixture("d3_par.rs");
    let ws = TempWorkspace::with_files(
        "d3",
        &[("crates/graph/src/kernel.rs", &kernel), ("crates/graph/src/par.rs", &driver)],
    );
    let report = ws.run("schema = 2\n");
    let d3: Vec<_> = report.diagnostics.iter().filter(|d| d.diagnostic.rule == "D3").collect();
    assert_eq!(d3.len(), 1, "only the parallel fan-out fires, not the serial twin: {report:?}");
    let hit = d3[0];
    assert_eq!(hit.path, "crates/graph/src/par.rs", "fires at the call site, not the kernel");
    assert_eq!(hit.diagnostic.line, 5);
    assert_eq!(hit.diagnostic.chain, vec!["tally".to_string()], "evidence chain to the base");
    assert!(hit.diagnostic.message.contains("tally"), "{}", hit.diagnostic.message);

    // The same pair under a fingerprint allowlist (pinned to the fan-out
    // line, justified by a DETERMINISM comment) analyzes clean.
    let justified = driver.replace(
        "    rows.par_iter()",
        "    // DETERMINISM: the kernel's map order never escapes its sum.\n    rows.par_iter()",
    );
    drop(ws);
    let ws = TempWorkspace::with_files(
        "d3allow",
        &[("crates/graph/src/kernel.rs", &kernel), ("crates/graph/src/par.rs", &justified)],
    );
    let line = "rows.par_iter().map(|r| crate::kernel::tally(r)).collect()";
    let allow = format!(
        "schema = 2\n[[allow]]\nrule = \"D3\"\npath = \"crates/graph/src/par.rs\"\n\
         fingerprint = \"{:016x}\"\nreason = \"fixture: order never escapes\"\n",
        allowlist::line_fingerprint(line)
    );
    let clean = ws.run(&allow);
    assert!(clean.is_clean(), "{clean:?}");
    assert_eq!(clean.suppressed, 1);
}

#[test]
fn unallowed_violation_reaches_the_report_and_json() {
    let ws = TempWorkspace::new("report", OFFENDING_LIB);
    let report = ws.run("schema = 2\n");
    assert_eq!(report.diagnostics.len(), 1);
    let d = &report.diagnostics[0];
    assert_eq!(d.diagnostic.rule, "P1");
    assert_eq!(d.diagnostic.line, 4);
    assert_eq!(d.path, "crates/graph/src/lib.rs");
    let json = to_json(
        &report,
        &allowlist::Allowlist { schema: allowlist::ALLOWLIST_SCHEMA, entries: Vec::new() },
    );
    assert!(json.contains("\"analyze_report_version\": 2"), "{json}");
    assert!(json.contains("\"allowlist_schema\": 2"), "{json}");
    assert!(json.contains("\"rule\": \"P1\""));
    assert!(json.contains("\"line\": 4"));
    assert!(json.contains("\"rules\": {"), "per-rule summary block present: {json}");
    assert!(json.contains("\"P1\": {"), "{json}");
}

#[test]
fn cli_exits_nonzero_on_violations_and_zero_on_clean() {
    let ws = TempWorkspace::new("cli", OFFENDING_LIB);
    let bin = env!("CARGO_BIN_EXE_reorderlab-analyze");

    let dirty = std::process::Command::new(bin)
        .args(["--root", ws.root.to_str().expect("utf8 temp path")])
        .output()
        .expect("spawn analyzer");
    assert_eq!(dirty.status.code(), Some(1), "violations exit 1");

    let allow_path = ws.root.join("analyze.toml");
    std::fs::write(&allow_path, fingerprint_allow()).expect("write allowlist");
    let clean = std::process::Command::new(bin)
        .args(["--root", ws.root.to_str().expect("utf8 temp path")])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "clean exit 0; stdout: {}",
        String::from_utf8_lossy(&clean.stdout)
    );

    let usage =
        std::process::Command::new(bin).args(["--no-such-flag"]).output().expect("spawn analyzer");
    assert_eq!(usage.status.code(), Some(2), "usage errors exit 2");
    assert!(
        String::from_utf8_lossy(&usage.stderr).contains("--format"),
        "the error lists the accepted flags"
    );
}

#[test]
fn cli_rejects_unknown_formats_with_the_accepted_list() {
    let bin = env!("CARGO_BIN_EXE_reorderlab-analyze");
    let out = std::process::Command::new(bin)
        .args(["--format", "yaml"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(2), "unknown format exits 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("yaml") && err.contains("text, json"), "{err}");
}

#[test]
fn cli_format_json_prints_the_schema_2_report() {
    let ws = TempWorkspace::new("clijson", OFFENDING_LIB);
    std::fs::write(ws.root.join("analyze.toml"), fingerprint_allow()).expect("write allowlist");
    let bin = env!("CARGO_BIN_EXE_reorderlab-analyze");
    let out = std::process::Command::new(bin)
        .args(["--root", ws.root.to_str().expect("utf8 temp path"), "--format", "json"])
        .output()
        .expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"analyze_report_version\": 2"), "{stdout}");
    assert!(stdout.contains("\"suppressed\": 1"), "{stdout}");
}

#[test]
fn cli_explains_each_rule_and_rejects_unknown_ids() {
    let bin = env!("CARGO_BIN_EXE_reorderlab-analyze");
    for rule in rules::RULE_IDS {
        let out = std::process::Command::new(bin)
            .args(["--explain", rule])
            .output()
            .expect("spawn analyzer");
        assert_eq!(out.status.code(), Some(0), "--explain {rule} exits 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(rule), "--explain {rule} names the rule: {stdout}");
    }
    let out =
        std::process::Command::new(bin).args(["--explain", "Z9"]).output().expect("spawn analyzer");
    assert_eq!(out.status.code(), Some(2), "unknown rule id exits 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("Z9") && err.contains("D1"), "lists the known ids: {err}");
}

/// The acceptance gate: the real workspace must satisfy the contract with
/// the committed allowlist. Runs as part of tier-1 `cargo test`.
#[test]
fn the_workspace_is_clean_under_the_committed_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow_text =
        std::fs::read_to_string(root.join("analyze.toml")).expect("committed analyze.toml");
    let allow = allowlist::parse(&allow_text).expect("committed allowlist parses");
    assert_eq!(allow.schema, allowlist::ALLOWLIST_SCHEMA, "the committed allowlist is schema 2");
    assert!(
        !allow.entries.iter().any(|e| matches!(e.kind, allowlist::AllowKind::Line(_))),
        "no line-numbered pins survive in the committed allowlist"
    );
    let report = analyze_workspace(&root, &allow).expect("workspace walk");
    assert!(
        report.is_clean(),
        "workspace violates the static-analysis contract:\n{}\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!(
                "{}:{}: {} {}",
                d.path, d.diagnostic.line, d.diagnostic.rule, d.diagnostic.message
            ))
            .collect::<Vec<_>>()
            .join("\n"),
        report.problems.join("\n")
    );
    assert!(report.files_scanned > 90, "the walker saw the whole workspace");
    assert!(report.warnings.is_empty(), "no deprecation warnings: {:?}", report.warnings);
}
