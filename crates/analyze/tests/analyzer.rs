//! Integration tests: the fixture corpus (one offending file per rule, with
//! exact rule ids and 1-based lines), end-to-end allowlist semantics over a
//! synthetic workspace, the CLI binary's exit codes, and — the acceptance
//! gate — the real workspace analyzing clean against the committed
//! `analyze.toml`.

use std::path::{Path, PathBuf};

use reorderlab_analyze::{allowlist, analyze_workspace, lexer, rules, to_json};
use rules::{Diagnostic, Scope};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn check_fixture(name: &str, scope: &Scope) -> Vec<Diagnostic> {
    rules::check(&lexer::lex(&fixture(name)), scope)
}

fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn d1_fixture_flags_each_hashmap_site() {
    let d = check_fixture("d1.rs", &Scope::all());
    assert_eq!(lines_of(&d, "D1"), vec![3, 5, 6], "{d:?}");
    assert_eq!(d.len(), 3, "no other rule fires on the D1 fixture: {d:?}");
}

#[test]
fn d2_fixture_flags_the_par_sum_only() {
    let d = check_fixture("d2.rs", &Scope::all());
    assert_eq!(lines_of(&d, "D2"), vec![5], "{d:?}");
    assert_eq!(d.len(), 1, "the serial fold inside the closure must not fire: {d:?}");
}

#[test]
fn p1_fixture_flags_unwrap_expect_panic_index() {
    let d = check_fixture("p1.rs", &Scope::all());
    assert_eq!(lines_of(&d, "P1"), vec![5, 9, 13, 17], "{d:?}");
    assert_eq!(d.len(), 4, "parser-method expect and unwrap_or must not fire: {d:?}");
}

#[test]
fn c1_fixture_distinguishes_narrow_from_ingestion_mode() {
    let all = check_fixture("c1.rs", &Scope::all());
    assert_eq!(lines_of(&all, "C1"), vec![3, 7], "ingestion mode bans all int casts: {all:?}");

    let mut narrow = Scope::all();
    narrow.c1_all_int = false;
    let d = check_fixture("c1.rs", &narrow);
    assert_eq!(lines_of(&d, "C1"), vec![3], "narrow mode allows `as usize`: {d:?}");
}

#[test]
fn u1_fixture_flags_missing_forbid_and_unsafe() {
    let d = check_fixture("u1.rs", &Scope::all());
    assert_eq!(lines_of(&d, "U1"), vec![1, 2], "{d:?}");
    assert_eq!(d.len(), 2, "{d:?}");
}

#[test]
fn clean_fixture_is_clean() {
    let d = check_fixture("clean.rs", &Scope::all());
    assert_eq!(d, Vec::new());
}

/// Builds a throwaway one-crate workspace under the target temp dir.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str, lib_source: &str) -> Self {
        let root = std::env::temp_dir()
            .join(format!("reorderlab-analyze-it-{}-{tag}", std::process::id()));
        let src = root.join("crates/graph/src");
        std::fs::create_dir_all(&src).expect("temp workspace");
        std::fs::write(src.join("lib.rs"), lib_source).expect("temp lib.rs");
        TempWorkspace { root }
    }

    fn run(&self, allow_text: &str) -> reorderlab_analyze::AnalysisReport {
        let allow = allowlist::parse(allow_text).expect("valid allowlist text");
        analyze_workspace(&self.root, &allow).expect("workspace walk")
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const OFFENDING_LIB: &str = "#![forbid(unsafe_code)]\n\
    // SAFETY: fixture justification for the blessed unwrap below.\n\
    pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";

#[test]
fn allowlisted_site_with_justification_is_clean() {
    let ws = TempWorkspace::new("ok", OFFENDING_LIB);
    let report = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 4\nreason = \"fixture\"\n",
    );
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.suppressed, 1);
}

#[test]
fn missing_justification_comment_is_a_problem() {
    let no_comment =
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let ws = TempWorkspace::new("nojust", no_comment);
    let report = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 3\nreason = \"fixture\"\n",
    );
    assert!(!report.is_clean());
    assert!(
        report.problems.iter().any(|p| p.contains("SAFETY")),
        "expects a missing-justification problem: {:?}",
        report.problems
    );
}

#[test]
fn unused_entry_is_a_problem() {
    let ws = TempWorkspace::new("unused", OFFENDING_LIB);
    let report = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 999\nreason = \"stale\"\n",
    );
    assert!(report.problems.iter().any(|p| p.contains("unused")), "{:?}", report.problems);
    assert_eq!(report.diagnostics.len(), 1, "the real finding still surfaces");
}

#[test]
fn count_entries_ratchet_exactly() {
    let ws = TempWorkspace::new("count", OFFENDING_LIB);
    let ok = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\ncount = 1\nreason = \"fixture\"\n",
    );
    assert!(ok.is_clean(), "{ok:?}");
    let drift = ws.run(
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\ncount = 2\nreason = \"fixture\"\n",
    );
    assert!(drift.problems.iter().any(|p| p.contains("count drift")), "{:?}", drift.problems);
}

#[test]
fn unallowed_violation_reaches_the_report_and_json() {
    let ws = TempWorkspace::new("report", OFFENDING_LIB);
    let report = ws.run("schema = 1\n");
    assert_eq!(report.diagnostics.len(), 1);
    let d = &report.diagnostics[0];
    assert_eq!(d.diagnostic.rule, "P1");
    assert_eq!(d.diagnostic.line, 4);
    assert_eq!(d.path, "crates/graph/src/lib.rs");
    let json = to_json(&report, &allowlist::Allowlist { schema: 1, entries: Vec::new() });
    assert!(json.contains("\"analyze_report_version\": 1"));
    assert!(json.contains("\"rule\": \"P1\""));
    assert!(json.contains("\"line\": 4"));
}

#[test]
fn cli_exits_nonzero_on_violations_and_zero_on_clean() {
    let ws = TempWorkspace::new("cli", OFFENDING_LIB);
    let bin = env!("CARGO_BIN_EXE_reorderlab-analyze");

    let dirty = std::process::Command::new(bin)
        .args(["--root", ws.root.to_str().expect("utf8 temp path")])
        .output()
        .expect("spawn analyzer");
    assert_eq!(dirty.status.code(), Some(1), "violations exit 1");

    let allow_path = ws.root.join("analyze.toml");
    std::fs::write(
        &allow_path,
        "schema = 1\n[[allow]]\nrule = \"P1\"\npath = \"crates/graph/src/lib.rs\"\nline = 4\nreason = \"fixture\"\n",
    )
    .expect("write allowlist");
    let clean = std::process::Command::new(bin)
        .args(["--root", ws.root.to_str().expect("utf8 temp path")])
        .output()
        .expect("spawn analyzer");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "clean exit 0; stdout: {}",
        String::from_utf8_lossy(&clean.stdout)
    );

    let usage =
        std::process::Command::new(bin).args(["--no-such-flag"]).output().expect("spawn analyzer");
    assert_eq!(usage.status.code(), Some(2), "usage errors exit 2");
}

/// The acceptance gate: the real workspace must satisfy the contract with
/// the committed allowlist. Runs as part of tier-1 `cargo test`.
#[test]
fn the_workspace_is_clean_under_the_committed_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow_text =
        std::fs::read_to_string(root.join("analyze.toml")).expect("committed analyze.toml");
    let allow = allowlist::parse(&allow_text).expect("committed allowlist parses");
    let report = analyze_workspace(&root, &allow).expect("workspace walk");
    assert!(
        report.is_clean(),
        "workspace violates the static-analysis contract:\n{}\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!(
                "{}:{}: {} {}",
                d.path, d.diagnostic.line, d.diagnostic.rule, d.diagnostic.message
            ))
            .collect::<Vec<_>>()
            .join("\n"),
        report.problems.join("\n")
    );
    assert!(report.files_scanned > 90, "the walker saw the whole workspace");
}
