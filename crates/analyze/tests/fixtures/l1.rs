//! L1 fixture: lock guards held across blocking work.
#![forbid(unsafe_code)]

use std::io::Write;
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

pub fn positive(mu: &Mutex<Vec<u8>>, out: &mut impl Write) {
    let guard = lock(mu);
    let _ = out.write_all(&guard);
}

pub fn negative_dropped(mu: &Mutex<Vec<u8>>, out: &mut impl Write) {
    let guard = lock(mu);
    let copy = guard.to_vec();
    drop(guard);
    let _ = out.write_all(&copy);
}

pub fn negative_detached(mu: &Mutex<Vec<u8>>, out: &mut impl Write) {
    let empty = lock(mu).is_empty();
    if !empty {
        let _ = out.write_all(b"x");
    }
}

pub fn negative_scoped(mu: &Mutex<Vec<u8>>, out: &mut impl Write) {
    {
        let guard = lock(mu);
        let _ = guard.first();
    }
    let _ = out.write_all(b"done");
}
