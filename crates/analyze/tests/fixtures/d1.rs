#![forbid(unsafe_code)]
use rayon::prelude::*;
use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn double(xs: &[u32]) -> Vec<u32> {
    xs.par_iter().map(|x| x * 2).collect()
}
