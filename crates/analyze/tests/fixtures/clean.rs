#![forbid(unsafe_code)]
//! A file that satisfies every contract.
//!
//! Doc examples may mention `unwrap()` and `panic!` freely — prose is not
//! tokens — and `#[cfg(test)]` code may use both for real.

use rayon::prelude::*;

/// Doubles every value; the reduction stays elementwise, so no D2.
pub fn doubled(xs: &[u64]) -> Vec<u64> {
    xs.par_iter().map(|x| x.saturating_mul(2)).collect()
}

/// Widening casts are always lossless.
pub fn widen(x: u32) -> u64 {
    u64::from(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap_and_cast() {
        let v = doubled(&[1, 2]);
        assert_eq!(*v.first().unwrap(), 1usize as u64 * 2);
    }
}
