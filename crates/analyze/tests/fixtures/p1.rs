#![forbid(unsafe_code)]
pub struct Parser;

pub fn bare(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn described(x: Option<u32>) -> u32 {
    x.expect("present by construction")
}

pub fn aborts() {
    panic!("library code must not abort the caller")
}

pub fn indexed(v: &[u32]) -> u32 {
    v[0]
}

impl Parser {
    pub fn expect(&mut self, _byte: u8) {}
}

pub fn parser_method_named_expect_is_fine(p: &mut Parser) {
    p.expect(b'[');
}

pub fn fallback_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
