//! E1 fixture: unwrap/expect on lock/channel results in serving code.
#![forbid(unsafe_code)]

use std::sync::mpsc::Sender;
use std::sync::{Mutex, MutexGuard};

pub fn positive_lock(mu: &Mutex<u32>) -> u32 {
    *mu.lock().unwrap()
}

pub fn positive_send(tx: &Sender<u32>) {
    tx.send(1).expect("channel closed");
}

pub fn negative_option(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

pub fn negative_no_panic(s: &str) -> u32 {
    s.trim().parse().unwrap_or(0)
}

/// The blessed poison-recovering helper may consume the lock result.
pub fn lock(mu: &Mutex<u32>) -> MutexGuard<'_, u32> {
    mu.lock().unwrap()
}
