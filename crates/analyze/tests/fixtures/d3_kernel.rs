//! D3 fixture kernel: consumes a HashMap (so it carries base taint).
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> u32 {
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.values().sum()
}
