#![forbid(unsafe_code)]
pub fn narrowing(n: usize) -> u32 {
    n as u32
}

pub fn wide_cast(n: i64) -> usize {
    n as usize
}

pub fn float_casts_are_not_c1(n: u32) -> f64 {
    n as f64
}

pub use std::collections::BTreeMap as RenamesAreFine;
