//! W1 fixture: a wildcard arm swallows one variant's wire status.
#![forbid(unsafe_code)]

pub enum OpError {
    BadRequest,
    Backend,
    Shutdown,
}

impl OpError {
    pub fn exit_code(&self) -> u8 {
        match self {
            OpError::BadRequest => 2,
            OpError::Backend => 3,
            OpError::Shutdown => 4,
        }
    }

    pub fn status(&self) -> &'static str {
        match self {
            OpError::BadRequest => "bad-request",
            OpError::Backend => "backend",
            _ => "shutting-down",
        }
    }
}
