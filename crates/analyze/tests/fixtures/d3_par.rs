//! D3 fixture driver: fans the tainted kernel out across a rayon region.
use rayon::prelude::*;

pub fn fanout(rows: &[Vec<u32>]) -> Vec<u32> {
    rows.par_iter().map(|r| crate::kernel::tally(r)).collect()
}

pub fn serial(rows: &[Vec<u32>]) -> Vec<u32> {
    rows.iter().map(|r| crate::kernel::tally(r)).collect()
}
