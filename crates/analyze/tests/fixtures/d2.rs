#![forbid(unsafe_code)]
use rayon::prelude::*;

pub fn schedule_dependent_total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn fine_serial_fold_in_closure(rows: &[Vec<f64>]) -> Vec<f64> {
    rows.par_iter().map(|row| row.iter().fold(0.0, |a, b| a + b)).collect()
}
