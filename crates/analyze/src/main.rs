#![forbid(unsafe_code)]
//! `reorderlab-analyze` CLI.
//!
//! ```text
//! reorderlab-analyze [--root DIR] [--allowlist FILE] [--json FILE]
//! ```
//!
//! Exit codes: `0` clean, `1` contract violations or allowlist problems,
//! `2` usage or I/O errors. CI runs this as the `static-analysis` leg.

use std::path::PathBuf;
use std::process::ExitCode;

use reorderlab_analyze::{allowlist, analyze_workspace, to_json};

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: reorderlab-analyze [--root DIR] [--allowlist FILE] [--json FILE]\n\
     \n\
     Runs the reorderlab static-analysis contract (DESIGN.md §8) over every\n\
     workspace .rs file under <root>/crates/*/src.\n\
     \n\
       --root DIR        workspace root (default: .)\n\
       --allowlist FILE  allowlist (default: <root>/analyze.toml)\n\
       --json FILE       also write a schema-versioned JSON report\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: PathBuf::from("."), allowlist: None, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory argument")?);
            }
            "--allowlist" => {
                args.allowlist =
                    Some(PathBuf::from(it.next().ok_or("--allowlist needs a file argument")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a file argument")?));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let allowlist_path = args.allowlist.clone().unwrap_or_else(|| args.root.join("analyze.toml"));
    let allow = if allowlist_path.is_file() {
        match std::fs::read_to_string(&allowlist_path) {
            Ok(text) => match allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {}: {e}", allowlist_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("error: reading {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        }
    } else if args.allowlist.is_some() {
        eprintln!("error: allowlist {} does not exist", allowlist_path.display());
        return ExitCode::from(2);
    } else {
        allowlist::Allowlist { schema: 1, entries: Vec::new() }
    };

    let report = match analyze_workspace(&args.root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: analyzing {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!(
            "{}:{}: {} {}",
            d.path, d.diagnostic.line, d.diagnostic.rule, d.diagnostic.message
        );
    }
    for p in &report.problems {
        println!("problem: {p}");
    }

    if let Some(json_path) = &args.json {
        let json = to_json(&report, &allow);
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("error: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    println!(
        "reorderlab-analyze: {} file(s), {} allowlisted site(s), {} violation(s), {} problem(s) — {}",
        report.files_scanned,
        report.suppressed,
        report.diagnostics.len(),
        report.problems.len(),
        if report.is_clean() { "clean" } else { "FAILED" }
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
