#![forbid(unsafe_code)]
//! `reorderlab-analyze` CLI.
//!
//! ```text
//! reorderlab-analyze [--root DIR] [--allowlist FILE] [--json FILE]
//!                    [--format text|json] [--explain RULE]
//! ```
//!
//! Exit codes (pinned by the doc test on `reorderlab_analyze::EXIT_CLEAN`):
//! `0` clean, `1` contract violations or allowlist problems, `2` usage or
//! I/O errors — including unknown flags, unknown `--format` values, and
//! unknown `--explain` rule ids. CI runs this as the `static-analysis` leg.

use std::path::PathBuf;
use std::process::ExitCode;

use reorderlab_analyze::rules::{RULE_DOCS, RULE_IDS};
use reorderlab_analyze::{
    allowlist, analyze_workspace, to_json, EXIT_CLEAN, EXIT_USAGE, EXIT_VIOLATIONS,
};

/// Output formats `--format` accepts.
const FORMATS: [&str; 2] = ["text", "json"];

/// Every flag the CLI accepts, for strict unknown-flag errors.
const FLAGS: [&str; 7] =
    ["--root", "--allowlist", "--json", "--format", "--explain", "--help", "-h"];

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: Option<PathBuf>,
    /// Stdout format: "text" (default) or "json" (the full report).
    format: &'static str,
    explain: Option<String>,
}

fn usage() -> &'static str {
    "usage: reorderlab-analyze [--root DIR] [--allowlist FILE] [--json FILE]\n\
     \x20                         [--format text|json] [--explain RULE]\n\
     \n\
     Runs the reorderlab static-analysis contract (DESIGN.md §8) over every\n\
     workspace .rs file under <root>/crates/*/src.\n\
     \n\
       --root DIR        workspace root (default: .)\n\
       --allowlist FILE  allowlist (default: <root>/analyze.toml)\n\
       --json FILE       also write a schema-versioned JSON report\n\
       --format FMT      stdout format: text (default) or json\n\
       --explain RULE    print a rule's contract, rationale, and example\n\
     \n\
     Exit codes: 0 clean, 1 violations or allowlist problems, 2 usage/IO.\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        json: None,
        format: "text",
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory argument")?);
            }
            "--allowlist" => {
                args.allowlist =
                    Some(PathBuf::from(it.next().ok_or("--allowlist needs a file argument")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a file argument")?));
            }
            "--format" => {
                let value = it.next().ok_or("--format needs a value (text or json)")?;
                match FORMATS.iter().find(|f| **f == value) {
                    Some(f) => args.format = f,
                    None => {
                        return Err(format!(
                            "unknown --format {value:?} (accepted: {})",
                            FORMATS.join(", ")
                        ));
                    }
                }
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule id argument")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => {
                return Err(format!(
                    "unknown argument {other:?} (accepted flags: {})",
                    FLAGS.join(", ")
                ));
            }
        }
    }
    Ok(args)
}

/// Prints the `--explain` card for one rule id, or errors on an unknown id.
fn explain(rule: &str) -> Result<(), String> {
    let Some((id, contract, rationale, example)) =
        RULE_DOCS.iter().find(|(id, _, _, _)| *id == rule)
    else {
        return Err(format!("unknown rule {rule:?} (accepted: {})", RULE_IDS.join(", ")));
    };
    println!("{id} — {contract}\n");
    println!("Why: {rationale}\n");
    println!("Example:");
    for line in example.lines() {
        println!("    {line}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::from(EXIT_CLEAN);
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };

    if let Some(rule) = &args.explain {
        return match explain(rule) {
            Ok(()) => ExitCode::from(EXIT_CLEAN),
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(EXIT_USAGE)
            }
        };
    }

    let allowlist_path = args.allowlist.clone().unwrap_or_else(|| args.root.join("analyze.toml"));
    let allow = if allowlist_path.is_file() {
        match std::fs::read_to_string(&allowlist_path) {
            Ok(text) => match allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: {}: {e}", allowlist_path.display());
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            Err(e) => {
                eprintln!("error: reading {}: {e}", allowlist_path.display());
                return ExitCode::from(EXIT_USAGE);
            }
        }
    } else if args.allowlist.is_some() {
        eprintln!("error: allowlist {} does not exist", allowlist_path.display());
        return ExitCode::from(EXIT_USAGE);
    } else {
        allowlist::Allowlist { schema: allowlist::ALLOWLIST_SCHEMA, entries: Vec::new() }
    };

    let report = match analyze_workspace(&args.root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: analyzing {}: {e}", args.root.display());
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let json = to_json(&report, &allow);
    if args.format == "json" {
        print!("{json}");
    } else {
        for w in &report.warnings {
            println!("warning: {w}");
        }
        for d in &report.diagnostics {
            println!(
                "{}:{}: {} {}",
                d.path, d.diagnostic.line, d.diagnostic.rule, d.diagnostic.message
            );
        }
        for p in &report.problems {
            println!("problem: {p}");
        }
    }

    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, &json) {
            eprintln!("error: writing {}: {e}", json_path.display());
            return ExitCode::from(EXIT_USAGE);
        }
    }

    if args.format != "json" {
        println!(
            "reorderlab-analyze: {} file(s), {} allowlisted site(s), {} violation(s), {} problem(s) — {}",
            report.files_scanned,
            report.suppressed,
            report.diagnostics.len(),
            report.problems.len(),
            if report.is_clean() { "clean" } else { "FAILED" }
        );
    }
    if report.is_clean() {
        ExitCode::from(EXIT_CLEAN)
    } else {
        ExitCode::from(EXIT_VIOLATIONS)
    }
}
