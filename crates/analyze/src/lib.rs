#![forbid(unsafe_code)]
//! `reorderlab-analyze` — repo-native static analysis for reorderlab.
//!
//! Clippy and rustc enforce language-level hygiene; this crate enforces the
//! *repo's* contracts — the determinism and panic-safety rules that DESIGN.md
//! §8 spells out and that no off-the-shelf lint knows about. It tokenizes
//! every workspace `.rs` file (no rustc, no syn, no network) and emits typed,
//! line-numbered diagnostics, filtered through a committed allowlist
//! (`analyze.toml`) whose every entry must be justified by a `// SAFETY:` or
//! `// DETERMINISM:` comment in the code it blesses.
//!
//! The pieces:
//! - [`lexer`]: a line-aware Rust lexer (comments, raw strings, lifetimes).
//! - [`rules`]: the five contracts (D1, D2, P1, C1, U1) over token streams.
//! - [`allowlist`]: the `analyze.toml` subset-of-TOML parser and ratchet.
//! - [`analyze_workspace`]: the driver that walks `crates/*/src`, applies
//!   per-file scopes, and reconciles findings against the allowlist.

pub mod allowlist;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allowlist::{AllowKind, Allowlist};
use rules::{Diagnostic, Scope};

/// Crates whose `src` trees are library code for P1 (no panicking calls).
/// `cli` and `bench` are binaries: aborting the process there is an
/// acceptable failure mode, and `analyze` itself is excluded from P1 only
/// through this list — it still gets D1/D2/C1-narrow/U1 like everyone else.
pub const LIB_CRATES: [&str; 11] = [
    "graph",
    "core",
    "kernels",
    "community",
    "influence",
    "partition",
    "trace",
    "memsim",
    "datasets",
    "ops",
    "serve",
];

/// Crates where C1 (narrowing `as` casts) applies.
pub const C1_CRATES: [&str; 3] = ["graph", "core", "kernels"];

/// Ingestion files: stricter C1 (all integer casts) plus P1's index leg,
/// because these parse untrusted bytes.
pub const INGESTION_FILES: [&str; 2] = ["crates/graph/src/io.rs", "crates/graph/src/mtx.rs"];

/// The blessed D2 wrapper module: the one place order-fixed reductions live.
pub const D2_BLESSED: &str = "crates/graph/src/determinism.rs";

/// The blessed C1 module: checked conversions with compile-time width proofs.
pub const C1_BLESSED: &str = "crates/graph/src/cast.rs";

/// Computes the rule scope for one workspace-relative path (forward slashes).
pub fn scope_for(rel: &str) -> Scope {
    let crate_name =
        rel.strip_prefix("crates/").and_then(|rest| rest.split('/').next()).unwrap_or("");
    let is_bin = rel.contains("/src/bin/");
    let ingestion = INGESTION_FILES.contains(&rel);
    Scope {
        d1: true,
        d2: rel != D2_BLESSED,
        p1: LIB_CRATES.contains(&crate_name) && !is_bin,
        p1_index: ingestion,
        c1: C1_CRATES.contains(&crate_name) && rel != C1_BLESSED,
        c1_all_int: ingestion,
        u1: true,
        u1_root: rel == "src/lib.rs"
            || rel.ends_with("/src/lib.rs")
            || rel.ends_with("/src/main.rs")
            || is_bin,
    }
}

/// Walks `root/crates/*/src` plus the root facade's `src/`, collecting
/// every `.rs` file sorted by path. `shims/`, `target/`, and per-crate
/// `tests/` trees are outside `src` and therefore never visited.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk_rs(&facade_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One unsuppressed finding, tied to its file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDiagnostic {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The finding itself.
    pub diagnostic: Diagnostic,
}

/// The reconciled result of a workspace run.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// How many `.rs` files were lexed and checked.
    pub files_scanned: usize,
    /// Findings not covered by the allowlist, sorted by path then line.
    pub diagnostics: Vec<FileDiagnostic>,
    /// Allowlist problems: unused entries, count drift, missing
    /// justification comments. Any problem fails the run.
    pub problems: Vec<String>,
    /// Findings covered by a valid allowlist entry.
    pub suppressed: usize,
}

impl AnalysisReport {
    /// True when the workspace satisfies the contract: no stray findings
    /// and no allowlist problems.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.problems.is_empty()
    }
}

/// Runs the full pass: walk, lex, check, reconcile against `allow`.
///
/// # Errors
///
/// Returns the first I/O failure while walking or reading files.
pub fn analyze_workspace(root: &Path, allow: &Allowlist) -> io::Result<AnalysisReport> {
    let files = collect_files(root)?;
    let mut per_file: BTreeMap<String, (Vec<Diagnostic>, lexer::Lexed)> = BTreeMap::new();
    for path in &files {
        let rel = relative_slash(root, path);
        let source = fs::read_to_string(path)?;
        let lexed = lexer::lex(&source);
        let diags = rules::check(&lexed, &scope_for(&rel));
        per_file.insert(rel, (diags, lexed));
    }
    let mut report = reconcile(&mut per_file, allow);
    report.files_scanned = files.len();
    Ok(report)
}

/// Converts an absolute path under `root` to a `/`-separated relative path.
pub fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

const JUSTIFICATIONS: [&str; 2] = ["SAFETY:", "DETERMINISM:"];

/// How close (in lines, at or above) a justification comment must sit to a
/// line-pinned allowlist site. Five lines accommodates a comment above a
/// multi-line method chain whose `.expect` sits on the final line.
const JUSTIFICATION_WINDOW: u32 = 5;

fn reconcile(
    per_file: &mut BTreeMap<String, (Vec<Diagnostic>, lexer::Lexed)>,
    allow: &Allowlist,
) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    if allow.schema != 1 && !allow.entries.is_empty() {
        report.problems.push(format!(
            "allowlist: unsupported schema {} (this analyzer understands schema = 1)",
            allow.schema
        ));
    }

    // Suppression marks, parallel to each file's diagnostics vector.
    let mut taken: BTreeMap<String, Vec<bool>> =
        per_file.iter().map(|(p, (d, _))| (p.clone(), vec![false; d.len()])).collect();

    for entry in &allow.entries {
        let Some((diags, lexed)) = per_file.get(&entry.path) else {
            report.problems.push(format!(
                "allowlist: entry for {} {} matches no analyzed file",
                entry.rule, entry.path
            ));
            continue;
        };
        let marks = taken.get_mut(&entry.path).expect("taken is keyed identically to per_file");
        match entry.kind {
            AllowKind::Line(line) => {
                let hits: Vec<usize> = diags
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.rule == entry.rule && d.line == line)
                    .map(|(i, _)| i)
                    .collect();
                if hits.is_empty() {
                    report.problems.push(format!(
                        "allowlist: unused entry {} {}:{} — the diagnostic it blesses no \
                         longer fires; remove it",
                        entry.rule, entry.path, line
                    ));
                    continue;
                }
                let justified = JUSTIFICATIONS
                    .iter()
                    .any(|n| lexed.comment_near(line, JUSTIFICATION_WINDOW, n));
                if !justified {
                    report.problems.push(format!(
                        "allowlist: {} {}:{} has no // SAFETY: or // DETERMINISM: comment \
                         within {} lines of the site",
                        entry.rule, entry.path, line, JUSTIFICATION_WINDOW
                    ));
                }
                for i in hits {
                    marks[i] = true;
                    report.suppressed += 1;
                }
            }
            AllowKind::Count(expected) => {
                let hits: Vec<usize> = diags
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.rule == entry.rule)
                    .map(|(i, _)| i)
                    .collect();
                if hits.len() as u32 != expected {
                    report.problems.push(format!(
                        "allowlist: count drift for {} {} — entry budgets {expected} \
                         site(s) but the analyzer found {}; re-audit the file and update \
                         the count",
                        entry.rule,
                        entry.path,
                        hits.len()
                    ));
                }
                if let Some(&first) = hits.first() {
                    let first_line = diags[first].line;
                    let justified =
                        JUSTIFICATIONS.iter().any(|n| lexed.comment_at_or_before(first_line, n));
                    if !justified {
                        report.problems.push(format!(
                            "allowlist: {} {} (count = {expected}) has no module-level \
                             // SAFETY: or // DETERMINISM: comment at or before the first \
                             site (line {first_line})",
                            entry.rule, entry.path
                        ));
                    }
                }
                for i in hits {
                    marks[i] = true;
                    report.suppressed += 1;
                }
            }
        }
    }

    for (path, (diags, _)) in per_file.iter() {
        let marks = &taken[path];
        for (i, d) in diags.iter().enumerate() {
            if !marks[i] {
                report
                    .diagnostics
                    .push(FileDiagnostic { path: path.clone(), diagnostic: d.clone() });
            }
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.diagnostic.line.cmp(&b.diagnostic.line)));
    report
}

/// Schema version of the `--json` report. Bump on breaking layout changes.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Serializes the report as stable, sorted JSON (local writer; the crate is
/// dependency-free by design).
pub fn to_json(report: &AnalysisReport, allow: &Allowlist) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"analyze_report_version\": {REPORT_SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"allowlist_entries\": {},\n", allow.entries.len()));
    s.push_str(&format!("  \"suppressed\": {},\n", report.suppressed));
    s.push_str(&format!("  \"clean\": {},\n", report.is_clean()));
    s.push_str("  \"problems\": [");
    for (i, p) in report.problems.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\"", json_escape(p)));
    }
    if !report.problems.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            d.diagnostic.rule,
            json_escape(&d.path),
            d.diagnostic.line,
            json_escape(&d.diagnostic.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_match_the_contract_table() {
        let graph = scope_for("crates/graph/src/csr.rs");
        assert!(graph.p1 && graph.c1 && !graph.c1_all_int && !graph.p1_index);

        let ingest = scope_for("crates/graph/src/io.rs");
        assert!(ingest.p1 && ingest.p1_index && ingest.c1 && ingest.c1_all_int);

        let cast = scope_for("crates/graph/src/cast.rs");
        assert!(!cast.c1, "cast.rs is the blessed C1 module");

        let det = scope_for("crates/graph/src/determinism.rs");
        assert!(!det.d2, "determinism.rs is the blessed D2 module");

        let cli = scope_for("crates/cli/src/main.rs");
        assert!(!cli.p1 && cli.u1_root, "binaries may panic but must forbid unsafe");

        let bench_bin = scope_for("crates/bench/src/bin/runner.rs");
        assert!(!bench_bin.p1 && bench_bin.u1_root);

        let lib_root = scope_for("crates/trace/src/lib.rs");
        assert!(lib_root.u1_root && lib_root.p1 && !lib_root.c1);
    }

    #[test]
    fn json_report_is_schema_versioned_and_escaped() {
        let mut report = AnalysisReport { files_scanned: 2, ..AnalysisReport::default() };
        report.diagnostics.push(FileDiagnostic {
            path: "crates/x/src/a.rs".to_string(),
            diagnostic: rules::Diagnostic {
                rule: "P1",
                line: 7,
                message: "has \"quotes\"".to_string(),
            },
        });
        let json = to_json(&report, &Allowlist::default());
        assert!(json.contains("\"analyze_report_version\": 1"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"clean\": false"));
    }
}
