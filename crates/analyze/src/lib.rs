#![forbid(unsafe_code)]
//! `reorderlab-analyze` — repo-native static analysis for reorderlab.
//!
//! Clippy and rustc enforce language-level hygiene; this crate enforces the
//! *repo's* contracts — the determinism, panic-safety, and serving-surface
//! rules that DESIGN.md §8 spells out and that no off-the-shelf lint knows
//! about. It tokenizes every workspace `.rs` file (no rustc, no syn, no
//! network) and emits typed, line-numbered diagnostics, filtered through a
//! committed allowlist (`analyze.toml`) whose every entry must be justified
//! by a `// SAFETY:` or `// DETERMINISM:` comment in the code it blesses.
//!
//! The pieces:
//! - [`lexer`]: a line-aware Rust lexer (comments, raw strings, lifetimes).
//! - [`scopes`]: a block tree over the token stream — `fn` items, `impl`
//!   membership, local `let` bindings, `#[cfg(test)]` spans.
//! - [`callgraph`]: a conservative intra-workspace call graph powering the
//!   transitive determinism-taint rule (D3).
//! - [`rules`]: the nine contracts (D1, D2, D3, P1, C1, U1, L1, E1, W1).
//! - [`allowlist`]: the `analyze.toml` subset-of-TOML parser and ratchet,
//!   schema 2 with content-fingerprint pins.
//! - [`analyze_workspace`]: the driver that walks `crates/*/src`, applies
//!   per-file scopes, runs the call-graph pass, and reconciles findings
//!   against the allowlist.

pub mod allowlist;
pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod scopes;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allowlist::{line_fingerprint, AllowKind, Allowlist};
use rules::{Diagnostic, Scope, RULE_IDS};

/// Exit code for a clean run: no findings, no allowlist problems.
///
/// The full exit-code table, pinned:
///
/// ```
/// use reorderlab_analyze::{EXIT_CLEAN, EXIT_USAGE, EXIT_VIOLATIONS};
/// assert_eq!(EXIT_CLEAN, 0); // workspace satisfies all nine rules
/// assert_eq!(EXIT_VIOLATIONS, 1); // contract violations or allowlist problems
/// assert_eq!(EXIT_USAGE, 2); // bad flags, unknown --format/--explain value, I/O errors
/// ```
pub const EXIT_CLEAN: u8 = 0;
/// Exit code when the workspace has unsuppressed diagnostics or the
/// allowlist has problems (unused entries, count drift, missing comments).
pub const EXIT_VIOLATIONS: u8 = 1;
/// Exit code for usage errors: unknown flags or flag values, unknown rule
/// ids, unreadable inputs.
pub const EXIT_USAGE: u8 = 2;

/// Crates whose `src` trees are library code for P1 (no panicking calls).
/// `cli` and `bench` are binaries: aborting the process there is an
/// acceptable failure mode, and `analyze` itself is excluded from P1 only
/// through this list — it still gets D1/D2/C1-narrow/U1 like everyone else.
pub const LIB_CRATES: [&str; 11] = [
    "graph",
    "core",
    "kernels",
    "community",
    "influence",
    "partition",
    "trace",
    "memsim",
    "datasets",
    "ops",
    "serve",
];

/// Crates where C1 (narrowing `as` casts) applies.
pub const C1_CRATES: [&str; 3] = ["graph", "core", "kernels"];

/// The concurrent serving surface: L1/E1/W1 apply here. These crates hold
/// the daemon's mutexes, channels, sockets, and the `OpError` wire
/// taxonomy; the rest of the workspace has no locks to misuse.
pub const SERVE_CRATES: [&str; 2] = ["ops", "serve"];

/// Ingestion files: stricter C1 (all integer casts) plus P1's index leg,
/// because these parse untrusted bytes.
pub const INGESTION_FILES: [&str; 2] = ["crates/graph/src/io.rs", "crates/graph/src/mtx.rs"];

/// The blessed D2 wrapper module: the one place order-fixed reductions live.
pub const D2_BLESSED: &str = "crates/graph/src/determinism.rs";

/// The blessed C1 module: checked conversions with compile-time width proofs.
pub const C1_BLESSED: &str = "crates/graph/src/cast.rs";

/// Computes the rule scope for one workspace-relative path (forward slashes).
pub fn scope_for(rel: &str) -> Scope {
    let crate_name =
        rel.strip_prefix("crates/").and_then(|rest| rest.split('/').next()).unwrap_or("");
    let is_bin = rel.contains("/src/bin/");
    let ingestion = INGESTION_FILES.contains(&rel);
    let serving = SERVE_CRATES.contains(&crate_name);
    Scope {
        d1: true,
        d2: rel != D2_BLESSED,
        d3: true,
        p1: LIB_CRATES.contains(&crate_name) && !is_bin,
        p1_index: ingestion,
        c1: C1_CRATES.contains(&crate_name) && rel != C1_BLESSED,
        c1_all_int: ingestion,
        u1: true,
        u1_root: rel == "src/lib.rs"
            || rel.ends_with("/src/lib.rs")
            || rel.ends_with("/src/main.rs")
            || is_bin,
        l1: serving,
        e1: serving && !is_bin,
        w1: serving,
    }
}

/// Walks `root/crates/*/src` plus the root facade's `src/`, collecting
/// every `.rs` file sorted by path. `shims/`, `target/`, and per-crate
/// `tests/` trees are outside `src` and therefore never visited.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk_rs(&facade_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One unsuppressed finding, tied to its file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDiagnostic {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The finding itself.
    pub diagnostic: Diagnostic,
}

/// Per-rule tallies for the schema-2 report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RuleSummary {
    /// Unsuppressed findings for this rule.
    pub diagnostics: usize,
    /// Findings covered by a valid allowlist entry.
    pub suppressed: usize,
}

/// The reconciled result of a workspace run.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// How many `.rs` files were lexed and checked.
    pub files_scanned: usize,
    /// Findings not covered by the allowlist, sorted by path then line.
    pub diagnostics: Vec<FileDiagnostic>,
    /// Allowlist problems: unused entries, count drift, missing
    /// justification comments, line pins in a schema-2 file. Any problem
    /// fails the run.
    pub problems: Vec<String>,
    /// Non-fatal notices (e.g. the schema-1 deprecation warning).
    pub warnings: Vec<String>,
    /// Findings covered by a valid allowlist entry.
    pub suppressed: usize,
    /// Per-rule tallies, keyed by rule id; every id in
    /// [`rules::RULE_IDS`] is present.
    pub rules: BTreeMap<String, RuleSummary>,
}

impl AnalysisReport {
    /// True when the workspace satisfies the contract: no stray findings
    /// and no allowlist problems. Warnings do not fail the run.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.problems.is_empty()
    }
}

/// Everything reconcile needs about one analyzed file.
struct FileData {
    diags: Vec<Diagnostic>,
    lexed: lexer::Lexed,
    /// Source lines, for fingerprint matching.
    lines: Vec<String>,
}

/// Runs the full pass: walk, lex, per-file rules, the workspace call-graph
/// pass (D3), then reconcile against `allow`.
///
/// # Errors
///
/// Returns the first I/O failure while walking or reading files.
pub fn analyze_workspace(root: &Path, allow: &Allowlist) -> io::Result<AnalysisReport> {
    let files = collect_files(root)?;
    let mut rels = Vec::with_capacity(files.len());
    let mut diags = Vec::with_capacity(files.len());
    let mut lines = Vec::with_capacity(files.len());
    let mut lexed_trees = Vec::with_capacity(files.len());
    for path in &files {
        let rel = relative_slash(root, path);
        let source = fs::read_to_string(path)?;
        let lexed = lexer::lex(&source);
        diags.push(rules::check(&lexed, &scope_for(&rel)));
        lines.push(source.lines().map(str::to_string).collect::<Vec<String>>());
        let tree = scopes::ScopeTree::build(&lexed.toks);
        lexed_trees.push((lexed, tree));
        rels.push(rel);
    }

    // The workspace-level pass: D3 taint through the call graph.
    let graph = callgraph::CallGraph::build(&lexed_trees);
    for (file, d) in graph.d3_diagnostics() {
        if scope_for(&rels[file]).d3 {
            diags[file].push(d);
        }
    }

    let mut per_file: BTreeMap<String, FileData> = BTreeMap::new();
    for (((rel, mut d), (lexed, _tree)), file_lines) in
        rels.into_iter().zip(diags).zip(lexed_trees).zip(lines)
    {
        d.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
        per_file.insert(rel, FileData { diags: d, lexed, lines: file_lines });
    }

    let mut report = reconcile(&per_file, allow);
    report.files_scanned = files.len();
    Ok(report)
}

/// Converts an absolute path under `root` to a `/`-separated relative path.
pub fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

const JUSTIFICATIONS: [&str; 2] = ["SAFETY:", "DETERMINISM:"];

/// How close (in lines, at or above) a justification comment must sit to a
/// pinned allowlist site. Five lines accommodates a comment above a
/// multi-line method chain whose `.expect` sits on the final line.
const JUSTIFICATION_WINDOW: u32 = 5;

/// Marks `hits` as allowlist-covered and bumps the per-rule tallies.
fn suppress(report: &mut AnalysisReport, rule: &str, marks: &mut [bool], hits: &[usize]) {
    for &i in hits {
        marks[i] = true;
        report.suppressed += 1;
        report.rules.entry(rule.to_string()).or_default().suppressed += 1;
    }
}

fn reconcile(per_file: &BTreeMap<String, FileData>, allow: &Allowlist) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    for rule in RULE_IDS {
        report.rules.insert(rule.to_string(), RuleSummary::default());
    }
    match allow.schema {
        allowlist::ALLOWLIST_SCHEMA => {}
        1 => {
            if !allow.entries.is_empty() {
                report.warnings.push(
                    "allowlist: schema 1 is deprecated — set `schema = 2` and re-key \
                     line-pinned entries as content fingerprints (fingerprint = FNV-1a 64 \
                     of the trimmed source line)"
                        .to_string(),
                );
            }
        }
        other => {
            if !allow.entries.is_empty() {
                report.problems.push(format!(
                    "allowlist: unsupported schema {other} (this analyzer understands \
                     schema 1 or {})",
                    allowlist::ALLOWLIST_SCHEMA
                ));
            }
        }
    }

    // Suppression marks, parallel to each file's diagnostics vector.
    let mut taken: BTreeMap<&str, Vec<bool>> =
        per_file.iter().map(|(p, d)| (p.as_str(), vec![false; d.diags.len()])).collect();

    for entry in &allow.entries {
        let Some(data) = per_file.get(&entry.path) else {
            report.problems.push(format!(
                "allowlist: entry for {} {} matches no analyzed file",
                entry.rule, entry.path
            ));
            continue;
        };
        let diags = &data.diags;
        let marks =
            taken.get_mut(entry.path.as_str()).expect("taken is keyed identically to per_file");
        match entry.kind {
            AllowKind::Line(line) => {
                if allow.schema >= allowlist::ALLOWLIST_SCHEMA {
                    report.problems.push(format!(
                        "allowlist: {} {}:{line} is line-pinned, but schema {} forbids \
                         `line` entries — re-key it as `fingerprint = \"{}\"` (FNV-1a 64 \
                         of the trimmed source line)",
                        entry.rule,
                        entry.path,
                        allow.schema,
                        data.lines.get(line as usize - 1).map_or_else(
                            || "????????????????".to_string(),
                            |l| format!("{:016x}", line_fingerprint(l))
                        ),
                    ));
                }
                let hits: Vec<usize> = diags
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.rule == entry.rule && d.line == line)
                    .map(|(i, _)| i)
                    .collect();
                if hits.is_empty() {
                    report.problems.push(format!(
                        "allowlist: unused entry {} {}:{} — the diagnostic it blesses no \
                         longer fires; remove it",
                        entry.rule, entry.path, line
                    ));
                    continue;
                }
                let justified = JUSTIFICATIONS
                    .iter()
                    .any(|n| data.lexed.comment_near(line, JUSTIFICATION_WINDOW, n));
                if !justified {
                    report.problems.push(format!(
                        "allowlist: {} {}:{} has no // SAFETY: or // DETERMINISM: comment \
                         within {} lines of the site",
                        entry.rule, entry.path, line, JUSTIFICATION_WINDOW
                    ));
                }
                suppress(&mut report, &entry.rule, marks, &hits);
            }
            AllowKind::Fingerprint { hash, count } => {
                let hits: Vec<usize> = diags
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| {
                        d.rule == entry.rule
                            && data
                                .lines
                                .get(d.line as usize - 1)
                                .is_some_and(|l| line_fingerprint(l) == hash)
                    })
                    .map(|(i, _)| i)
                    .collect();
                if hits.is_empty() {
                    let candidates: Vec<String> = diags
                        .iter()
                        .filter(|d| d.rule == entry.rule)
                        .filter_map(|d| {
                            data.lines.get(d.line as usize - 1).map(|l| {
                                format!("line {} = \"{:016x}\"", d.line, line_fingerprint(l))
                            })
                        })
                        .collect();
                    report.problems.push(format!(
                        "allowlist: unused fingerprint entry {} {} \"{hash:016x}\" — no \
                         {} diagnostic sits on a line with that content{}; remove or \
                         re-key it",
                        entry.rule,
                        entry.path,
                        entry.rule,
                        if candidates.is_empty() {
                            String::new()
                        } else {
                            format!(" (candidates: {})", candidates.join(", "))
                        }
                    ));
                    continue;
                }
                if hits.len() != count as usize {
                    report.problems.push(format!(
                        "allowlist: count drift for {} {} fingerprint \"{hash:016x}\" — \
                         entry blesses {count} site(s) but {} line(s) with that content \
                         fire; re-audit and update the count",
                        entry.rule,
                        entry.path,
                        hits.len()
                    ));
                }
                for &i in &hits {
                    let line = diags[i].line;
                    let justified = JUSTIFICATIONS
                        .iter()
                        .any(|n| data.lexed.comment_near(line, JUSTIFICATION_WINDOW, n));
                    if !justified {
                        report.problems.push(format!(
                            "allowlist: {} {}:{} has no // SAFETY: or // DETERMINISM: \
                             comment within {} lines of the fingerprinted site",
                            entry.rule, entry.path, line, JUSTIFICATION_WINDOW
                        ));
                    }
                }
                suppress(&mut report, &entry.rule, marks, &hits);
            }
            AllowKind::Count(expected) => {
                let hits: Vec<usize> = diags
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.rule == entry.rule)
                    .map(|(i, _)| i)
                    .collect();
                if hits.len() as u32 != expected {
                    report.problems.push(format!(
                        "allowlist: count drift for {} {} — entry budgets {expected} \
                         site(s) but the analyzer found {}; re-audit the file and update \
                         the count",
                        entry.rule,
                        entry.path,
                        hits.len()
                    ));
                }
                if let Some(&first) = hits.first() {
                    let first_line = diags[first].line;
                    let justified = JUSTIFICATIONS
                        .iter()
                        .any(|n| data.lexed.comment_at_or_before(first_line, n));
                    if !justified {
                        report.problems.push(format!(
                            "allowlist: {} {} (count = {expected}) has no module-level \
                             // SAFETY: or // DETERMINISM: comment at or before the first \
                             site (line {first_line})",
                            entry.rule, entry.path
                        ));
                    }
                }
                suppress(&mut report, &entry.rule, marks, &hits);
            }
        }
    }

    for (path, data) in per_file.iter() {
        let marks = &taken[path.as_str()];
        for (i, d) in data.diags.iter().enumerate() {
            if !marks[i] {
                report.rules.entry(d.rule.to_string()).or_default().diagnostics += 1;
                report
                    .diagnostics
                    .push(FileDiagnostic { path: path.clone(), diagnostic: d.clone() });
            }
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.diagnostic.line.cmp(&b.diagnostic.line)));
    report
}

/// Schema version of the `--json` report. Bump on breaking layout changes.
/// Version 2 added `allowlist_schema`, per-rule summaries (`rules`),
/// `warnings`, and the D3 `chain` field on diagnostics.
pub const REPORT_SCHEMA_VERSION: u32 = 2;

/// Serializes the report as stable, sorted JSON (local writer; the crate is
/// dependency-free by design).
pub fn to_json(report: &AnalysisReport, allow: &Allowlist) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"analyze_report_version\": {REPORT_SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"allowlist_schema\": {},\n", allow.schema));
    s.push_str(&format!("  \"allowlist_entries\": {},\n", allow.entries.len()));
    s.push_str(&format!("  \"suppressed\": {},\n", report.suppressed));
    s.push_str(&format!("  \"clean\": {},\n", report.is_clean()));
    s.push_str("  \"rules\": {");
    for (i, (rule, summary)) in report.rules.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    \"{}\": {{\"diagnostics\": {}, \"suppressed\": {}}}",
            json_escape(rule),
            summary.diagnostics,
            summary.suppressed
        ));
    }
    if !report.rules.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("},\n");
    push_str_array(&mut s, "warnings", &report.warnings);
    push_str_array(&mut s, "problems", &report.problems);
    s.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let chain = d
            .diagnostic
            .chain
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"chain\": [{chain}]}}",
            d.diagnostic.rule,
            json_escape(&d.path),
            d.diagnostic.line,
            json_escape(&d.diagnostic.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn push_str_array(s: &mut String, key: &str, items: &[String]) {
    s.push_str(&format!("  \"{key}\": ["));
    for (i, p) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\"", json_escape(p)));
    }
    if !items.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_match_the_contract_table() {
        let graph = scope_for("crates/graph/src/csr.rs");
        assert!(graph.p1 && graph.c1 && !graph.c1_all_int && !graph.p1_index);
        assert!(!graph.l1 && !graph.e1 && !graph.w1, "serving rules stay off the graph crate");

        let ingest = scope_for("crates/graph/src/io.rs");
        assert!(ingest.p1 && ingest.p1_index && ingest.c1 && ingest.c1_all_int);

        let cast = scope_for("crates/graph/src/cast.rs");
        assert!(!cast.c1, "cast.rs is the blessed C1 module");

        let det = scope_for("crates/graph/src/determinism.rs");
        assert!(!det.d2, "determinism.rs is the blessed D2 module");

        let cli = scope_for("crates/cli/src/main.rs");
        assert!(!cli.p1 && cli.u1_root, "binaries may panic but must forbid unsafe");

        let bench_bin = scope_for("crates/bench/src/bin/runner.rs");
        assert!(!bench_bin.p1 && bench_bin.u1_root);

        let lib_root = scope_for("crates/trace/src/lib.rs");
        assert!(lib_root.u1_root && lib_root.p1 && !lib_root.c1);

        let server = scope_for("crates/serve/src/server.rs");
        assert!(server.l1 && server.e1 && server.w1 && server.d3);

        let ops_err = scope_for("crates/ops/src/error.rs");
        assert!(ops_err.l1 && ops_err.e1 && ops_err.w1);

        let serve_bin = scope_for("crates/serve/src/bin/loadtool.rs");
        assert!(
            serve_bin.l1 && !serve_bin.e1,
            "binaries may unwrap but still must not hold locks across I/O"
        );
    }

    #[test]
    fn json_report_is_schema_versioned_and_escaped() {
        let mut report = AnalysisReport { files_scanned: 2, ..AnalysisReport::default() };
        report.rules.insert("P1".to_string(), RuleSummary { diagnostics: 1, suppressed: 0 });
        report.diagnostics.push(FileDiagnostic {
            path: "crates/x/src/a.rs".to_string(),
            diagnostic: rules::Diagnostic::new("P1", 7, "has \"quotes\"".to_string()),
        });
        let json = to_json(&report, &Allowlist::default());
        assert!(json.contains("\"analyze_report_version\": 2"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"P1\": {\"diagnostics\": 1, \"suppressed\": 0}"));
        assert!(json.contains("\"chain\": []"));
    }

    #[test]
    fn json_report_carries_d3_chains() {
        let mut report = AnalysisReport::default();
        report.diagnostics.push(FileDiagnostic {
            path: "crates/x/src/a.rs".to_string(),
            diagnostic: rules::Diagnostic {
                rule: "D3",
                line: 3,
                message: "tainted via a -> b".to_string(),
                chain: vec!["a".to_string(), "b".to_string()],
            },
        });
        let json = to_json(&report, &Allowlist::default());
        assert!(json.contains("\"chain\": [\"a\", \"b\"]"), "{json}");
    }
}
