//! A conservative intra-workspace call graph, built from `fn` definitions
//! and call sites, powering the transitive determinism-taint rule (D3).
//!
//! D1 bans hash containers *lexically* near parallel code; the hole it
//! leaves is indirection — a parallel region calling a function (possibly
//! in another file) that iterates a `HashMap`. D3 closes it:
//!
//! 1. **Base taint** — a function whose body mentions `HashMap`/`HashSet`
//!    (outside `#[cfg(test)]`, excluding enum-variant paths like
//!    `MoveKernel::HashMap`) is tainted.
//! 2. **Propagation** — taint flows *up* the call graph: a caller of a
//!    tainted function is tainted, with the evidence chain recorded.
//! 3. **Firing** — a call to a tainted function from inside a parallel
//!    iterator chain (including closure bodies, which D2 deliberately
//!    skips) is a diagnostic, carrying the chain
//!    (`tainted via a -> b -> c`).
//!
//! Resolution is by name and intentionally conservative in *both*
//! directions. A call site resolves to same-file definitions when any
//! exist (an `impl` calling its own helpers), otherwise to the unique
//! workspace-wide definition of that name; a name defined in several
//! files with no same-file candidate is *ambiguous* and the call is
//! skipped — a by-name edge from `Csr::build` to a serve-engine `build`
//! would stitch unrelated subsystems together and drown the signal in
//! false chains. Names on [`STOPLIST`] — ubiquitous std-trait and
//! container methods (`new`, `len`, `get`, `insert`, …) — never resolve
//! for the same reason. Kernel entry points in this workspace have
//! distinctive names, which is what the graph keys on.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::{Diagnostic, PAR_ITER_STARTS};
use crate::scopes::ScopeTree;
use std::collections::BTreeMap;

/// Method/function names that never resolve to a workspace `fn`: they
/// collide with std-trait and container methods so often that by-name
/// edges through them would be pure noise.
pub const STOPLIST: [&str; 40] = [
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "drain",
    "extend",
    "sort",
    "sort_by",
    "min",
    "max",
    "map",
    "filter",
    "fold",
    "sum",
    "collect",
    "write",
    "read",
    "flush",
    "wait",
    "lock",
    "send",
    "recv",
    "fmt",
    "eq",
    "cmp",
    "drop",
];

/// One `fn` in the workspace-wide graph.
#[derive(Debug)]
struct FnNode {
    /// Index into the driver's file list (resolution prefers same-file
    /// definitions).
    file: usize,
    /// The function's name.
    name: String,
    /// 1-based line of the definition.
    line: u32,
    /// Base taint: the body line mentioning a hash container, if any.
    hash_line: Option<u32>,
    /// Resolved callee node indices, with the call-site line.
    calls: Vec<(usize, u32)>,
    /// Taint state: `Some(next)` points one hop down the evidence chain
    /// (`None` while untainted; `Some(self)`-less base nodes use
    /// `usize::MAX` as the terminator).
    taint_next: Option<usize>,
}

/// Terminator marker for a base-tainted node's evidence chain.
const BASE: usize = usize::MAX;

/// The built graph plus everything D3 needs to fire.
#[derive(Debug, Default)]
pub struct CallGraph {
    nodes: Vec<FnNode>,
    /// Unresolved-call sites inside parallel regions, per file:
    /// `(file, line, callee_node)`.
    par_calls: Vec<(usize, u32, usize)>,
}

/// Is this ident the `HashMap`/`HashSet` std type (and not an enum
/// variant path like `MoveKernel::HashMap`)? Mirrors D1's test.
fn is_hash_container(toks: &[Tok], idx: usize) -> bool {
    let t = &toks[idx];
    if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
        return false;
    }
    let variant_path = idx >= 3
        && toks[idx - 1].text == ":"
        && toks[idx - 2].text == ":"
        && toks[idx - 3].kind == TokKind::Ident
        && toks[idx - 3].text != "collections";
    !variant_path
}

/// Keywords that look like calls (`if (…)`, `match (…)`) but are not.
const CALL_KEYWORDS: [&str; 11] =
    ["if", "while", "for", "match", "return", "loop", "let", "else", "in", "move", "fn"];

/// Token spans (inclusive) of parallel iterator chains, *including*
/// closure bodies: from a `par_iter(`-style start until the chain leaves
/// scope (statement end or enclosing close bracket).
pub fn parallel_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut idx = 0usize;
    while idx < toks.len() {
        let t = &toks[idx];
        let starts = t.kind == TokKind::Ident
            && PAR_ITER_STARTS.contains(&t.text.as_str())
            && toks.get(idx + 1).is_some_and(|n| n.text == "(");
        if !starts {
            idx += 1;
            continue;
        }
        let start = idx;
        let mut rel = 0i32;
        let mut j = idx + 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "{" | "[" => rel += 1,
                ")" | "}" | "]" => {
                    rel -= 1;
                    if rel < 0 {
                        break;
                    }
                }
                ";" if rel <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        spans.push((start, j.min(toks.len().saturating_sub(1))));
        idx = j;
    }
    spans
}

impl CallGraph {
    /// Builds the graph over every analyzed file. `files` pairs each
    /// file's lexed tokens with its scope tree, in driver order.
    pub fn build(files: &[(Lexed, ScopeTree)]) -> CallGraph {
        let mut graph = CallGraph::default();
        // Pass 1: nodes.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (file, (lexed, tree)) in files.iter().enumerate() {
            for scope in &tree.functions {
                if scope.in_test || scope.body.is_none() {
                    continue;
                }
                let (open, close) = scope.body.unwrap_or((0, 0));
                let hash_line = (open..=close)
                    .find(|&i| is_hash_container(&lexed.toks, i))
                    .map(|i| lexed.toks[i].line);
                graph.nodes.push(FnNode {
                    file,
                    name: scope.name.clone(),
                    line: scope.line,
                    hash_line,
                    calls: Vec::new(),
                    taint_next: None,
                });
            }
        }
        for (i, node) in graph.nodes.iter().enumerate() {
            by_name.entry(&node.name).or_default().push(i);
        }
        let by_name: BTreeMap<String, Vec<usize>> =
            by_name.into_iter().map(|(k, v)| (k.to_string(), v)).collect();

        // Pass 2: call edges and parallel-region call sites.
        let mut node_idx = 0usize;
        for (file, (lexed, tree)) in files.iter().enumerate() {
            let spans = parallel_spans(&lexed.toks);
            let in_par = |i: usize| spans.iter().any(|&(a, b)| a <= i && i <= b);
            for scope in &tree.functions {
                if scope.in_test || scope.body.is_none() {
                    continue;
                }
                let (open, close) = scope.body.unwrap_or((0, 0));
                for i in open..=close.min(lexed.toks.len().saturating_sub(1)) {
                    let Some(callee) = call_target(&lexed.toks, i) else { continue };
                    let Some(candidates) = by_name.get(callee) else { continue };
                    // Same-file definitions win; otherwise only a unique
                    // workspace-wide definition resolves (ambiguous names
                    // would stitch unrelated subsystems together).
                    let same_file: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| graph.nodes[c].file == file)
                        .collect();
                    let resolved: &[usize] = if !same_file.is_empty() {
                        &same_file
                    } else if candidates.len() == 1 {
                        candidates
                    } else {
                        continue;
                    };
                    for &c in resolved {
                        graph.nodes[node_idx].calls.push((c, lexed.toks[i].line));
                        if in_par(i) {
                            graph.par_calls.push((file, lexed.toks[i].line, c));
                        }
                    }
                }
                node_idx += 1;
            }
        }

        // Pass 3: propagate taint up the graph to a fixed point.
        for i in 0..graph.nodes.len() {
            if graph.nodes[i].hash_line.is_some() {
                graph.nodes[i].taint_next = Some(BASE);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..graph.nodes.len() {
                if graph.nodes[i].taint_next.is_some() {
                    continue;
                }
                let tainted_callee = graph.nodes[i]
                    .calls
                    .iter()
                    .find(|(c, _)| graph.nodes[*c].taint_next.is_some())
                    .map(|(c, _)| *c);
                if let Some(c) = tainted_callee {
                    graph.nodes[i].taint_next = Some(c);
                    changed = true;
                }
            }
        }
        graph
    }

    /// The evidence chain from node `i` down to the hash-container base:
    /// `["a", "b", "c"]` meaning `a` calls `b` calls `c`, and `c` iterates
    /// the container.
    fn chain(&self, mut i: usize) -> Vec<String> {
        let mut out = Vec::new();
        loop {
            out.push(self.nodes[i].name.clone());
            match self.nodes[i].taint_next {
                Some(BASE) | None => break,
                Some(next) => i = next,
            }
            // A cycle cannot occur (taint_next always points strictly
            // closer to a base node), but cap the chain defensively.
            if out.len() > 32 {
                break;
            }
        }
        out
    }

    /// D3 diagnostics: for every call to a (transitively) tainted
    /// function from inside a parallel region, one finding at the call
    /// site, with the evidence chain attached.
    pub fn d3_diagnostics(&self) -> Vec<(usize, Diagnostic)> {
        let mut out = Vec::new();
        let mut seen: Vec<(usize, u32, usize)> = Vec::new();
        for &(file, line, callee) in &self.par_calls {
            if self.nodes[callee].taint_next.is_none() {
                continue;
            }
            if seen.contains(&(file, line, callee)) {
                continue;
            }
            seen.push((file, line, callee));
            let chain = self.chain(callee);
            let base = chain.last().cloned().unwrap_or_default();
            let base_line = self
                .nodes
                .iter()
                .find(|n| n.name == base && n.hash_line.is_some())
                .and_then(|n| n.hash_line)
                .unwrap_or(self.nodes[callee].line);
            out.push((
                file,
                Diagnostic {
                    rule: "D3",
                    line,
                    message: format!(
                        "call to `{}` inside a parallel region reaches a hash-container \
                         iteration (`{base}`, line {base_line} of its file): tainted via {}; \
                         route the parallel path through an order-fixed kernel or allowlist \
                         with a DETERMINISM comment",
                        self.nodes[callee].name,
                        chain.join(" -> "),
                    ),
                    chain,
                },
            ));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.line.cmp(&b.1.line)));
        out
    }
}

/// If the token at `idx` is a plausible call target (`name(`), returns
/// the name — filtering keywords, macro bangs, fn definitions, and the
/// stoplist.
fn call_target(toks: &[Tok], idx: usize) -> Option<&str> {
    let t = toks.get(idx)?;
    if t.kind != TokKind::Ident || toks.get(idx + 1).is_none_or(|n| n.text != "(") {
        return None;
    }
    let name = t.text.as_str();
    if CALL_KEYWORDS.contains(&name) || STOPLIST.contains(&name) {
        return None;
    }
    if idx > 0 {
        let prev = &toks[idx - 1];
        // `fn name(` is a definition, `name!(…)` would have the bang after
        // (checked above via `(`), `!name(` is negation of a call we still
        // count. Skip definitions and struct-literal-ish `Name {`.
        if prev.text == "fn" {
            return None;
        }
    }
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build_one(src: &str) -> CallGraph {
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed.toks);
        CallGraph::build(&[(lexed, tree)])
    }

    #[test]
    fn direct_taint_fires_in_parallel_region() {
        let src = "use std::collections::HashMap;\n\
                   fn tally(xs: &[u32]) -> f64 { let m: HashMap<u32, f64> = HashMap::new(); m.values().count() as f64 }\n\
                   fn driver(v: &[Vec<u32>]) { v.par_iter().for_each(|row| { let _ = tally(row); }); }\n";
        let d = build_one(src).d3_diagnostics();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].1.rule, "D3");
        assert_eq!(d[0].1.line, 3);
        assert_eq!(d[0].1.chain, vec!["tally".to_string()]);
    }

    #[test]
    fn taint_propagates_through_intermediate_fns() {
        let src = "use std::collections::HashSet;\n\
                   fn base_scan() -> usize { let s: HashSet<u32> = HashSet::new(); s.iter().count() }\n\
                   fn middle_hop() -> usize { base_scan() }\n\
                   fn driver(v: &[u32]) { v.par_iter().for_each(|_| { middle_hop(); }); }\n";
        let d = build_one(src).d3_diagnostics();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].1.chain, vec!["middle_hop".to_string(), "base_scan".to_string()]);
        assert!(d[0].1.message.contains("middle_hop -> base_scan"), "{}", d[0].1.message);
    }

    #[test]
    fn untainted_calls_and_serial_calls_do_not_fire() {
        let src = "fn clean_kernel(x: u32) -> u32 { x + 1 }\n\
                   fn tainted_scan() -> usize { let m = std::collections::HashMap::<u32, u32>::new(); m.len() }\n\
                   fn par_driver(v: &[u32]) { v.par_iter().for_each(|x| { clean_kernel(*x); }); }\n\
                   fn serial_driver() { tainted_scan(); }\n";
        let d = build_one(src).d3_diagnostics();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn enum_variant_paths_do_not_base_taint() {
        let src = "fn pick() -> u32 { let k = MoveKernel::HashMap; 0 }\n\
                   fn driver(v: &[u32]) { v.par_iter().for_each(|_| { pick(); }); }\n";
        let d = build_one(src).d3_diagnostics();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn stoplisted_names_never_resolve() {
        // A workspace fn named `get` that touches a HashMap must not turn
        // every `.get(` call in a parallel region into a finding.
        let src = "fn get(m: &std::collections::HashMap<u32, u32>) -> usize { m.len() }\n\
                   fn driver(v: &[Vec<u32>]) { v.par_iter().for_each(|row| { row.get(0); }); }\n";
        let d = build_one(src).d3_diagnostics();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cross_file_taint_is_seen() {
        let a = lex("use std::collections::HashMap;\npub fn far_scan() -> usize { let m: HashMap<u32,u32> = HashMap::new(); m.len() }\n");
        let b = lex("fn driver(v: &[u32]) { v.par_iter().for_each(|_| { far_scan(); }); }\n");
        let ta = ScopeTree::build(&a.toks);
        let tb = ScopeTree::build(&b.toks);
        let d = CallGraph::build(&[(a, ta), (b, tb)]).d3_diagnostics();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].0, 1, "the diagnostic lands in the calling file");
    }

    #[test]
    fn ambiguous_cross_file_names_do_not_resolve() {
        // `helper` is defined in two files; a call from a third must not
        // resolve to either (one of them being tainted notwithstanding).
        let a = lex("use std::collections::HashMap;\npub fn helper() -> usize { let m: HashMap<u32,u32> = HashMap::new(); m.len() }\n");
        let b = lex("pub fn helper() -> u32 { 7 }\n");
        let c = lex("fn driver(v: &[u32]) { v.par_iter().for_each(|_| { helper(); }); }\n");
        let (ta, tb, tc) =
            (ScopeTree::build(&a.toks), ScopeTree::build(&b.toks), ScopeTree::build(&c.toks));
        let d = CallGraph::build(&[(a, ta), (b, tb), (c, tc)]).d3_diagnostics();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn same_file_definition_shadows_a_tainted_twin() {
        let a = lex("use std::collections::HashMap;\npub fn helper() -> usize { let m: HashMap<u32,u32> = HashMap::new(); m.len() }\n");
        let b = lex("fn helper() -> u32 { 7 }\nfn driver(v: &[u32]) { v.par_iter().for_each(|_| { helper(); }); }\n");
        let (ta, tb) = (ScopeTree::build(&a.toks), ScopeTree::build(&b.toks));
        let d = CallGraph::build(&[(a, ta), (b, tb)]).d3_diagnostics();
        assert!(d.is_empty(), "the local untainted helper wins: {d:?}");
    }

    #[test]
    fn cfg_test_callers_are_ignored() {
        let src = "fn scan() -> usize { let m = std::collections::HashMap::<u32,u32>::new(); m.len() }\n\
                   #[cfg(test)]\nmod tests {\n fn t(v: &[u32]) { v.par_iter().for_each(|_| { scan(); }); }\n}\n";
        let d = build_one(src).d3_diagnostics();
        assert!(d.is_empty(), "{d:?}");
    }
}
