//! The committed allowlist (`analyze.toml`): a registry of audited
//! exceptions to the static-analysis contract.
//!
//! Format — a deliberate subset of TOML, parsed locally so the crate stays
//! dependency-free:
//!
//! ```toml
//! schema = 2
//!
//! [[allow]]
//! rule = "P1"
//! path = "crates/trace/src/recorder.rs"
//! fingerprint = "8c55ad8585a1c9d3"  # FNV-1a 64 of the trimmed source line
//! reason = "why this is sound"
//!
//! [[allow]]
//! rule = "C1"
//! path = "crates/core/src/schemes/rcm.rs"
//! count = 6                      # budget: exactly this many in the file
//! reason = "vertex counts are bounded by the Csr u32 invariant"
//! ```
//!
//! Every entry must carry `rule`, `path`, `reason`, and exactly one of
//! `fingerprint` (pin diagnostics by line *content* — shift-proof against
//! edits elsewhere in the file), `count` (a per-file budget — an exact-match
//! ratchet, so adding *or* removing a site forces a re-audit), or the
//! schema-1 `line` (a 1-based line pin, deprecated: it breaks whenever an
//! unrelated line is inserted above the site). A `fingerprint` entry may add
//! `count = N` when N identical lines in the file are blessed together
//! (default 1). The analyzer additionally requires a `// SAFETY:` or
//! `// DETERMINISM:` comment at the blessed site (`fingerprint`/`line`
//! entries) or at module level before the first blessed site (`count`
//! entries); an allowlist entry alone is never sufficient.
//!
//! Compute a fingerprint with [`line_fingerprint`] on the trimmed source
//! line, or run the analyzer: unmatched-fingerprint problems print the
//! expected hash for every candidate line.

use crate::rules::RULE_IDS;

/// Latest allowlist schema. Schema 1 (line pins) is still read, with a
/// deprecation warning; schema-2 files may not contain `line` entries.
pub const ALLOWLIST_SCHEMA: u32 = 2;

/// FNV-1a 64-bit hash of the *trimmed* source line — the schema-2
/// fingerprint. Trimming makes the pin robust to re-indentation; any other
/// content change (even whitespace inside the line) re-opens the audit.
pub fn line_fingerprint(line: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in line.trim().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How an [`AllowEntry`] selects diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowKind {
    /// Exactly one diagnostic, at this 1-based line (schema 1, deprecated).
    Line(u32),
    /// Diagnostics whose source line's trimmed content hashes to
    /// `hash` ([`line_fingerprint`]); exactly `count` must match.
    Fingerprint {
        /// FNV-1a 64 of the trimmed source line.
        hash: u64,
        /// How many identical lines this entry blesses (usually 1).
        count: u32,
    },
    /// Every diagnostic of the rule in the file; the total must equal this.
    Count(u32),
}

/// One audited exception.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id (`"D1"`, `"P1"`, …).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Fingerprint pin, line pin, or per-file budget.
    pub kind: AllowKind,
    /// Human justification; must be non-empty.
    pub reason: String,
}

/// Parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Schema version (`schema = 1` or `2`).
    pub schema: u32,
    /// All entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A parse or validation failure, with the offending 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line in the allowlist file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowlistError {}

/// Partial entry being accumulated while parsing.
#[derive(Debug, Default)]
struct Draft {
    start_line: usize,
    rule: Option<String>,
    path: Option<String>,
    line: Option<u32>,
    fingerprint: Option<u64>,
    count: Option<u32>,
    reason: Option<String>,
}

fn finish(draft: Draft) -> Result<AllowEntry, AllowlistError> {
    let at = draft.start_line;
    let err = |m: &str| AllowlistError { line: at, message: m.to_string() };
    let rule = draft.rule.ok_or_else(|| err("entry is missing `rule`"))?;
    if !RULE_IDS.contains(&rule.as_str()) {
        return Err(err(&format!("unknown rule {rule:?} (expected one of {RULE_IDS:?})")));
    }
    let path = draft.path.ok_or_else(|| err("entry is missing `path`"))?;
    let reason = draft.reason.ok_or_else(|| err("entry is missing `reason`"))?;
    if reason.trim().is_empty() {
        return Err(err("`reason` must not be empty"));
    }
    let kind = match (draft.line, draft.fingerprint, draft.count) {
        (Some(l), None, None) => AllowKind::Line(l),
        (None, Some(hash), count) => AllowKind::Fingerprint { hash, count: count.unwrap_or(1) },
        (None, None, Some(c)) => AllowKind::Count(c),
        (Some(_), Some(_), _) => return Err(err("entry has both `line` and `fingerprint`")),
        (Some(_), None, Some(_)) => return Err(err("entry has both `line` and `count`")),
        (None, None, None) => {
            return Err(err("entry needs one of `fingerprint`, `count`, or `line`"));
        }
    };
    if matches!(kind, AllowKind::Fingerprint { count: 0, .. } | AllowKind::Count(0)) {
        return Err(err("`count` must be at least 1"));
    }
    Ok(AllowEntry { rule, path, kind, reason })
}

/// Parses the allowlist text.
///
/// # Errors
///
/// Returns the first syntactic or semantic problem with its line number.
pub fn parse(text: &str) -> Result<Allowlist, AllowlistError> {
    let mut list = Allowlist::default();
    let mut draft: Option<Draft> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(d) = draft.take() {
                list.entries.push(finish(d)?);
            }
            draft = Some(Draft { start_line: lineno, ..Draft::default() });
            continue;
        }
        if line.starts_with('[') {
            return Err(AllowlistError {
                line: lineno,
                message: format!("unsupported table {line:?} (only [[allow]] is recognized)"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(AllowlistError {
                line: lineno,
                message: format!("expected `key = value`, got {line:?}"),
            });
        };
        let key = key.trim();
        // Strip a trailing `# comment` only outside quoted strings.
        let value = strip_comment(value.trim());
        match (key, &mut draft) {
            ("schema", None) => {
                list.schema = parse_int(value, lineno)?;
            }
            (_, None) => {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("key {key:?} outside any [[allow]] entry"),
                });
            }
            ("rule", Some(d)) => d.rule = Some(parse_str(value, lineno)?),
            ("path", Some(d)) => d.path = Some(parse_str(value, lineno)?),
            ("reason", Some(d)) => d.reason = Some(parse_str(value, lineno)?),
            ("line", Some(d)) => d.line = Some(parse_int(value, lineno)?),
            ("fingerprint", Some(d)) => {
                d.fingerprint = Some(parse_fingerprint(value, lineno)?);
            }
            ("count", Some(d)) => d.count = Some(parse_int(value, lineno)?),
            (other, Some(_)) => {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("unknown key {other:?} in [[allow]] entry"),
                });
            }
        }
    }
    if let Some(d) = draft.take() {
        list.entries.push(finish(d)?);
    }
    Ok(list)
}

fn strip_comment(value: &str) -> &str {
    let mut in_str = false;
    for (i, c) in value.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return value[..i].trim_end(),
            _ => {}
        }
    }
    value
}

fn parse_str(value: &str, line: usize) -> Result<String, AllowlistError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(AllowlistError { line, message: format!("expected a quoted string, got {v:?}") })
    }
}

fn parse_int(value: &str, line: usize) -> Result<u32, AllowlistError> {
    value.trim().parse().map_err(|_| AllowlistError {
        line,
        message: format!("expected an integer, got {value:?}"),
    })
}

fn parse_fingerprint(value: &str, line: usize) -> Result<u64, AllowlistError> {
    let v = parse_str(value, line)?;
    if v.len() != 16 || !v.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(AllowlistError {
            line,
            message: format!("expected 16 hex digits (FNV-1a 64 of the trimmed line), got {v:?}"),
        });
    }
    u64::from_str_radix(&v, 16)
        .map_err(|_| AllowlistError { line, message: format!("expected 16 hex digits, got {v:?}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_entry_kinds() {
        let text = r#"
schema = 2

# an audited panic site
[[allow]]
rule = "P1"
path = "crates/x/src/a.rs"
fingerprint = "8c55ad8585a1c9d3"   # pinned by content
reason = "cannot fail: invariant"

[[allow]]
rule = "C1"
path = "crates/x/src/b.rs"
count = 3
reason = "bounded casts"

[[allow]]
rule = "P1"
path = "crates/x/src/c.rs"
line = 12
reason = "legacy schema-1 pin"
"#;
        let list = parse(text).unwrap();
        assert_eq!(list.schema, 2);
        assert_eq!(list.entries.len(), 3);
        assert_eq!(
            list.entries[0].kind,
            AllowKind::Fingerprint { hash: 0x8c55_ad85_85a1_c9d3, count: 1 }
        );
        assert_eq!(list.entries[1].kind, AllowKind::Count(3));
        assert_eq!(list.entries[2].kind, AllowKind::Line(12));
    }

    #[test]
    fn fingerprint_entry_accepts_a_count() {
        let text = "[[allow]]\nrule = \"P1\"\npath = \"x.rs\"\n\
                    fingerprint = \"00000000000000ff\"\ncount = 2\nreason = \"r\"\n";
        let list = parse(text).unwrap();
        assert_eq!(list.entries[0].kind, AllowKind::Fingerprint { hash: 0xff, count: 2 });
    }

    #[test]
    fn rejects_malformed_fingerprints() {
        for bad in ["\"12ab\"", "\"zzzzzzzzzzzzzzzz\"", "12ab34cd12ab34cd"] {
            let text = format!(
                "[[allow]]\nrule = \"P1\"\npath = \"x.rs\"\nfingerprint = {bad}\nreason = \"r\"\n"
            );
            assert!(parse(&text).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn rejects_missing_reason() {
        let text = "[[allow]]\nrule = \"P1\"\npath = \"x.rs\"\nline = 1\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_line_and_count_together() {
        let text =
            "[[allow]]\nrule = \"P1\"\npath = \"x.rs\"\nline = 1\ncount = 2\nreason = \"r\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("both"), "{err}");
    }

    #[test]
    fn rejects_line_and_fingerprint_together() {
        let text = "[[allow]]\nrule = \"P1\"\npath = \"x.rs\"\nline = 1\n\
                    fingerprint = \"00000000000000ff\"\nreason = \"r\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("both"), "{err}");
    }

    #[test]
    fn rejects_unknown_rule() {
        let text = "[[allow]]\nrule = \"Z9\"\npath = \"x.rs\"\nline = 1\nreason = \"r\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("unknown rule"), "{err}");
    }

    #[test]
    fn accepts_every_v2_rule_id() {
        for rule in RULE_IDS {
            let text = format!(
                "[[allow]]\nrule = \"{rule}\"\npath = \"x.rs\"\ncount = 1\nreason = \"r\"\n"
            );
            assert!(parse(&text).is_ok(), "rejected {rule}");
        }
    }

    #[test]
    fn rejects_keys_outside_entries() {
        let err = parse("rule = \"P1\"\n").unwrap_err();
        assert!(err.message.contains("outside"), "{err}");
    }

    #[test]
    fn empty_text_is_an_empty_allowlist() {
        let list = parse("").unwrap();
        assert_eq!(list.entries.len(), 0);
    }

    #[test]
    fn fingerprints_trim_but_are_content_sensitive() {
        let a = line_fingerprint("    let x = v.unwrap();");
        let b = line_fingerprint("let x = v.unwrap();");
        let c = line_fingerprint("let x = v.unwrap() ;");
        assert_eq!(a, b, "leading/trailing whitespace must not matter");
        assert_ne!(b, c, "interior content changes must re-open the audit");
    }
}
