//! The committed allowlist (`analyze.toml`): a registry of audited
//! exceptions to the static-analysis contract.
//!
//! Format — a deliberate subset of TOML, parsed locally so the crate stays
//! dependency-free:
//!
//! ```toml
//! schema = 1
//!
//! [[allow]]
//! rule = "P1"
//! path = "crates/trace/src/recorder.rs"
//! line = 169                     # pin one diagnostic at this exact line
//! reason = "why this is sound"
//!
//! [[allow]]
//! rule = "C1"
//! path = "crates/core/src/schemes/rcm.rs"
//! count = 6                      # budget: exactly this many in the file
//! reason = "vertex counts are bounded by the Csr u32 invariant"
//! ```
//!
//! Every entry must carry `rule`, `path`, `reason`, and exactly one of
//! `line` (pin a single diagnostic) or `count` (a per-file budget — an
//! exact-match ratchet, so adding *or* removing a site forces a re-audit).
//! The analyzer additionally requires a `// SAFETY:` or `// DETERMINISM:`
//! comment at the blessed site (`line` entries) or at module level before
//! the first blessed site (`count` entries); an allowlist entry alone is
//! never sufficient.

use crate::rules::RULE_IDS;

/// How an [`AllowEntry`] selects diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowKind {
    /// Exactly one diagnostic, at this 1-based line.
    Line(u32),
    /// Every diagnostic of the rule in the file; the total must equal this.
    Count(u32),
}

/// One audited exception.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id (`"D1"`, `"P1"`, …).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Line pin or per-file budget.
    pub kind: AllowKind,
    /// Human justification; must be non-empty.
    pub reason: String,
}

/// Parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Schema version (`schema = 1`).
    pub schema: u32,
    /// All entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A parse or validation failure, with the offending 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line in the allowlist file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowlistError {}

/// Partial entry being accumulated while parsing.
#[derive(Debug, Default)]
struct Draft {
    start_line: usize,
    rule: Option<String>,
    path: Option<String>,
    line: Option<u32>,
    count: Option<u32>,
    reason: Option<String>,
}

fn finish(draft: Draft) -> Result<AllowEntry, AllowlistError> {
    let at = draft.start_line;
    let err = |m: &str| AllowlistError { line: at, message: m.to_string() };
    let rule = draft.rule.ok_or_else(|| err("entry is missing `rule`"))?;
    if !RULE_IDS.contains(&rule.as_str()) {
        return Err(err(&format!("unknown rule {rule:?} (expected one of {RULE_IDS:?})")));
    }
    let path = draft.path.ok_or_else(|| err("entry is missing `path`"))?;
    let reason = draft.reason.ok_or_else(|| err("entry is missing `reason`"))?;
    if reason.trim().is_empty() {
        return Err(err("`reason` must not be empty"));
    }
    let kind = match (draft.line, draft.count) {
        (Some(l), None) => AllowKind::Line(l),
        (None, Some(c)) => AllowKind::Count(c),
        (Some(_), Some(_)) => return Err(err("entry has both `line` and `count`")),
        (None, None) => return Err(err("entry needs exactly one of `line` or `count`")),
    };
    Ok(AllowEntry { rule, path, kind, reason })
}

/// Parses the allowlist text.
///
/// # Errors
///
/// Returns the first syntactic or semantic problem with its line number.
pub fn parse(text: &str) -> Result<Allowlist, AllowlistError> {
    let mut list = Allowlist::default();
    let mut draft: Option<Draft> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(d) = draft.take() {
                list.entries.push(finish(d)?);
            }
            draft = Some(Draft { start_line: lineno, ..Draft::default() });
            continue;
        }
        if line.starts_with('[') {
            return Err(AllowlistError {
                line: lineno,
                message: format!("unsupported table {line:?} (only [[allow]] is recognized)"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(AllowlistError {
                line: lineno,
                message: format!("expected `key = value`, got {line:?}"),
            });
        };
        let key = key.trim();
        // Strip a trailing `# comment` only outside quoted strings.
        let value = strip_comment(value.trim());
        match (key, &mut draft) {
            ("schema", None) => {
                list.schema = parse_int(value, lineno)?;
            }
            (_, None) => {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("key {key:?} outside any [[allow]] entry"),
                });
            }
            ("rule", Some(d)) => d.rule = Some(parse_str(value, lineno)?),
            ("path", Some(d)) => d.path = Some(parse_str(value, lineno)?),
            ("reason", Some(d)) => d.reason = Some(parse_str(value, lineno)?),
            ("line", Some(d)) => d.line = Some(parse_int(value, lineno)?),
            ("count", Some(d)) => d.count = Some(parse_int(value, lineno)?),
            (other, Some(_)) => {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("unknown key {other:?} in [[allow]] entry"),
                });
            }
        }
    }
    if let Some(d) = draft.take() {
        list.entries.push(finish(d)?);
    }
    Ok(list)
}

fn strip_comment(value: &str) -> &str {
    let mut in_str = false;
    for (i, c) in value.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return value[..i].trim_end(),
            _ => {}
        }
    }
    value
}

fn parse_str(value: &str, line: usize) -> Result<String, AllowlistError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(AllowlistError { line, message: format!("expected a quoted string, got {v:?}") })
    }
}

fn parse_int(value: &str, line: usize) -> Result<u32, AllowlistError> {
    value.trim().parse().map_err(|_| AllowlistError {
        line,
        message: format!("expected an integer, got {value:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_entry_kinds() {
        let text = r#"
schema = 1

# an audited panic site
[[allow]]
rule = "P1"
path = "crates/x/src/a.rs"
line = 12   # pinned
reason = "cannot fail: invariant"

[[allow]]
rule = "C1"
path = "crates/x/src/b.rs"
count = 3
reason = "bounded casts"
"#;
        let list = parse(text).unwrap();
        assert_eq!(list.schema, 1);
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].kind, AllowKind::Line(12));
        assert_eq!(list.entries[1].kind, AllowKind::Count(3));
        assert_eq!(list.entries[1].rule, "C1");
    }

    #[test]
    fn rejects_missing_reason() {
        let text = "[[allow]]\nrule = \"P1\"\npath = \"x.rs\"\nline = 1\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_line_and_count_together() {
        let text =
            "[[allow]]\nrule = \"P1\"\npath = \"x.rs\"\nline = 1\ncount = 2\nreason = \"r\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("both"), "{err}");
    }

    #[test]
    fn rejects_unknown_rule() {
        let text = "[[allow]]\nrule = \"Z9\"\npath = \"x.rs\"\nline = 1\nreason = \"r\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("unknown rule"), "{err}");
    }

    #[test]
    fn rejects_keys_outside_entries() {
        let err = parse("rule = \"P1\"\n").unwrap_err();
        assert!(err.message.contains("outside"), "{err}");
    }

    #[test]
    fn empty_text_is_an_empty_allowlist() {
        let list = parse("").unwrap();
        assert_eq!(list.entries.len(), 0);
    }
}
