//! A lightweight block tree over the token stream.
//!
//! The v1 analyzer was a flat token scanner; the scope-aware rules (L1,
//! E1, W1, D3) need to know *where* a token lives: which function body it
//! is in, which `impl` block that function belongs to, and whether the
//! whole item sits under `#[cfg(test)]`. This module recovers exactly that
//! structure from the lexer's token stream — no syn, no rustc — by
//! tracking brace/paren nesting:
//!
//! - [`ScopeTree::build`] finds every `fn` item (free or in an `impl`),
//!   records its name, the `impl` target type, its 1-based line, and the
//!   token range of its body.
//! - [`let_bindings_in`] recovers simple `let name = …;` local bindings
//!   inside a body, with the token range of each initializer — the
//!   lock-scope pass (L1) tracks guard bindings from these.
//! - `#[cfg(test)]` item spans (moved here from `rules`) gate every rule
//!   except U1.
//!
//! The tree is conservative by design: tuple/struct patterns in `let` are
//! skipped (a destructured guard is exotic enough to audit by hand), and
//! a `fn` signature's body is the first `{` at paren depth zero, which is
//! correct for every signature the workspace writes.

use crate::lexer::{Tok, TokKind};

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// The function's name.
    pub name: String,
    /// The `impl` target type name, when the fn sits inside an `impl`
    /// block (`impl OpError { fn status … }` → `Some("OpError")`).
    pub impl_of: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range `[open_brace, close_brace]` of the body, when
    /// the item has one (trait method declarations do not).
    pub body: Option<(usize, usize)>,
    /// True when the item sits under a `#[cfg(test)]` span.
    pub in_test: bool,
}

/// The per-file scope structure.
#[derive(Debug, Default)]
pub struct ScopeTree {
    /// Every `fn` item, in source order.
    pub functions: Vec<FnScope>,
    /// `(start_line, end_line)` spans of `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl ScopeTree {
    /// Builds the tree for one lexed file.
    pub fn build(toks: &[Tok]) -> ScopeTree {
        let test_ranges = cfg_test_ranges(toks);
        let impls = impl_blocks(toks);
        let mut functions = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident && t.text == "fn" {
                if let Some((name, name_idx)) = fn_name(toks, i) {
                    let body = fn_body(toks, name_idx);
                    let line = t.line;
                    let impl_of = impls
                        .iter()
                        .find(|(_, open, close)| *open < i && i < *close)
                        .map(|(n, _, _)| n.clone());
                    let in_test = test_ranges.iter().any(|&(a, b)| (a..=b).contains(&line));
                    functions.push(FnScope { name, impl_of, line, body, in_test });
                    // Continue from the name, not past the body: nested fns
                    // inside this body must be found too.
                    i = name_idx + 1;
                    continue;
                }
            }
            i += 1;
        }
        ScopeTree { functions, test_ranges }
    }

    /// Index of the innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (f, scope) in self.functions.iter().enumerate() {
            let Some((open, close)) = scope.body else { continue };
            if open <= idx && idx <= close {
                let tighter = best
                    .and_then(|b| self.functions[b].body)
                    .is_none_or(|(bo, bc)| open >= bo && close <= bc);
                if tighter {
                    best = Some(f);
                }
            }
        }
        best
    }

    /// True when `line` sits inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
    }
}

/// The fn's name: the first ident after `fn` (`fn name`, `fn name<…>`).
fn fn_name(toks: &[Tok], fn_idx: usize) -> Option<(String, usize)> {
    let next = toks.get(fn_idx + 1)?;
    if next.kind == TokKind::Ident {
        Some((next.text.clone(), fn_idx + 1))
    } else {
        None
    }
}

/// The body token range of the fn whose name sits at `name_idx`: scan to
/// the first `{` at paren depth zero (or `;`, for a bodyless trait
/// method), then to its matching `}`.
fn fn_body(toks: &[Tok], name_idx: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    let mut j = name_idx + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            ";" if paren == 0 => return None,
            "{" if paren == 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let open = j;
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, j));
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some((open, toks.len().saturating_sub(1)))
}

/// `(target_type, open_brace_idx, close_brace_idx)` for every `impl`
/// block. For `impl Trait for Type`, the target is `Type` (the last path
/// segment); for an inherent `impl Type`, it is `Type`. Leading impl
/// generics (`impl<T> …`) are skipped.
fn impl_blocks(toks: &[Tok]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "impl") {
            i += 1;
            continue;
        }
        // Find the header extent: up to the `{` at paren depth 0.
        let mut j = i + 1;
        // Skip the impl's own generic parameter list.
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut angle = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let header_start = j;
        let mut paren = 0i32;
        let mut open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" if paren == 0 => {
                    open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        // Target type: the last path-segment ident of the run after `for`
        // (trait impl) or after the header start (inherent impl), ignoring
        // anything inside `<…>` type arguments.
        let run_start = toks[header_start..open]
            .iter()
            .rposition(|t| t.kind == TokKind::Ident && t.text == "for")
            .map_or(header_start, |p| header_start + p + 1);
        let mut angle = 0i32;
        let mut name: Option<String> = None;
        for t in &toks[run_start..open] {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {
                    // A path `a::b::C`: keep updating to the last segment.
                    if angle == 0 && t.kind == TokKind::Ident {
                        name = Some(t.text.clone());
                    }
                }
            }
        }
        // Matching close brace.
        let mut depth = 0i32;
        let mut close = toks.len().saturating_sub(1);
        let mut k = open;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(name) = name {
            out.push((name, open, close));
        }
        i = open + 1;
    }
    out
}

/// One simple `let name = …;` binding.
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// The bound identifier.
    pub name: String,
    /// Token index of the `let` keyword.
    pub let_idx: usize,
    /// 1-based line of the binding.
    pub line: u32,
    /// Token index range `(start, end)` of the initializer expression —
    /// everything between `=` and the terminating `;` (exclusive).
    pub init: (usize, usize),
    /// Token index of the terminating `;` (where the binding goes live).
    pub end_idx: usize,
}

/// Recovers simple `let [mut] name [: Ty] = init;` bindings inside the
/// token range `[start, end]`. Tuple and struct patterns are skipped —
/// the scope-aware rules only track bindings they can name.
pub fn let_bindings_in(toks: &[Tok], start: usize, end: usize) -> Vec<LetBinding> {
    let mut out = Vec::new();
    let mut i = start;
    while i <= end.min(toks.len().saturating_sub(1)) {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "let") {
            i += 1;
            continue;
        }
        let let_idx = i;
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident && t.text == "mut") {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            // Tuple/struct pattern or `let _ = …` with punctuation: skip.
            i = j + 1;
            continue;
        }
        let name = name_tok.text.clone();
        // Scan to `=` at relative depth 0 (skipping a `: Type` ascription,
        // whose generics may contain `=` only inside brackets we balance).
        let mut depth = 0i32;
        let mut k = j + 1;
        let mut eq = None;
        while k <= end && k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "=" if depth == 0 => {
                    // `==`/`=>` never follow a let pattern here; a plain
                    // `=` starts the initializer.
                    eq = Some(k);
                    break;
                }
                ";" if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(eq) = eq else {
            i = j + 1;
            continue;
        };
        // Initializer: to the `;` at relative depth 0.
        let mut depth = 0i32;
        let mut m = eq + 1;
        let mut semi = None;
        while m <= end && m < toks.len() {
            match toks[m].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => {
                    semi = Some(m);
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        let Some(semi) = semi else {
            i = eq + 1;
            continue;
        };
        out.push(LetBinding {
            name,
            let_idx,
            line: toks[let_idx].line,
            init: (eq + 1, semi.saturating_sub(1)),
            end_idx: semi,
        });
        i = semi + 1;
    }
    out
}

/// Collects `(start_line, end_line)` spans of every item annotated
/// `#[cfg(test)]` — any item kind (`mod tests`, `mod proptests`, a lone
/// `fn`, a `use`), tracked by brace depth so nested items stay inside.
pub fn cfg_test_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            let mut depth = 0i32;
            j += 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Consume the item: up to the matching `}` of its first top-level
        // brace, or to a `;` if none comes first (e.g. `use`, `mod m;`).
        let mut depth = 0i32;
        let mut end_line = start_line;
        let mut closed = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = toks[j].line;
                        j += 1;
                        closed = true;
                    }
                }
                ";" if depth == 0 => {
                    end_line = toks[j].line;
                    j += 1;
                    closed = true;
                }
                _ => {}
            }
            if closed {
                break;
            }
            j += 1;
        }
        if !closed {
            end_line = toks.last().map_or(start_line, |t| t.line);
        }
        ranges.push((start_line, end_line));
        i = j;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_free_and_impl_fns_with_bodies() {
        let src = "struct S;\n\
                   impl S {\n    fn a(&self) -> u32 { 1 }\n}\n\
                   fn free(x: u32) -> u32 { x }\n\
                   trait T { fn decl(&self); }\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed.toks);
        let names: Vec<(&str, Option<&str>)> =
            tree.functions.iter().map(|f| (f.name.as_str(), f.impl_of.as_deref())).collect();
        assert_eq!(names, vec![("a", Some("S")), ("free", None), ("decl", None)]);
        assert!(tree.functions[0].body.is_some());
        assert!(tree.functions[2].body.is_none(), "trait decl has no body");
    }

    #[test]
    fn trait_impls_resolve_the_for_target() {
        let src = "impl fmt::Display for OpError {\n    fn fmt(&self) -> u32 { 0 }\n}\n\
                   impl<T> Wrapper<T> {\n    fn get_inner(&self) -> u32 { 1 }\n}\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed.toks);
        assert_eq!(tree.functions[0].impl_of.as_deref(), Some("OpError"));
        assert_eq!(tree.functions[1].impl_of.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() {\n    fn inner() { marker(); }\n}\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed.toks);
        let marker = lexed.toks.iter().position(|t| t.text == "marker").unwrap();
        let f = tree.enclosing_fn(marker).unwrap();
        assert_eq!(tree.functions[f].name, "inner");
    }

    #[test]
    fn cfg_test_marks_functions() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed.toks);
        let t = tree.functions.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
        assert!(!tree.functions[0].in_test);
    }

    #[test]
    fn let_bindings_capture_name_and_initializer() {
        let src = "fn f() {\n    let a = g(1, 2);\n    let mut b: Vec<u32> = Vec::new();\n    let (x, y) = pair();\n}\n";
        let lexed = lex(src);
        let tree = ScopeTree::build(&lexed.toks);
        let (open, close) = tree.functions[0].body.unwrap();
        let binds = let_bindings_in(&lexed.toks, open, close);
        let names: Vec<&str> = binds.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"], "tuple patterns are skipped");
        let (s, e) = binds[0].init;
        let init: Vec<&str> = lexed.toks[s..=e].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(init, vec!["g", "(", "1", ",", "2", ")"]);
    }
}
