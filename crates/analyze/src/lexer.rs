//! A small, line-aware Rust lexer.
//!
//! The analyzer's rules are token-level: they must never fire on the word
//! `unwrap` inside a string literal or a doc comment. This lexer produces
//! exactly what the rules need — identifiers, literals, and punctuation
//! with 1-based line numbers — plus a side channel of comments so rules
//! can look for `// SAFETY:` / `// DETERMINISM:` justifications. It is not
//! a full Rust lexer (no token trees, no float grammar), but it handles
//! the constructs that would otherwise cause false positives: nested block
//! comments, raw strings, byte strings, char literals vs. lifetimes, and
//! raw identifiers.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `unsafe`, …).
    Ident,
    /// Numeric literal (loosely lexed; never interpreted).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) — distinct from [`TokKind::Char`].
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Verbatim text for idents/puncts; literal classes keep their text too
    /// but rules never match on it.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Lexer output: the token stream plus every comment with its start line.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// `(line, text)` for every comment, doc comments included.
    pub comments: Vec<(u32, String)>,
}

impl Lexed {
    /// True if any comment on lines `[line - within, line]` contains the
    /// given needle (e.g. `"SAFETY:"`).
    pub fn comment_near(&self, line: u32, within: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(within);
        self.comments.iter().any(|(l, t)| *l >= lo && *l <= line && t.contains(needle))
    }

    /// True if any comment at or before `line` contains the needle.
    pub fn comment_at_or_before(&self, line: u32, needle: &str) -> bool {
        self.comments.iter().any(|(l, t)| *l <= line && t.contains(needle))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Never fails: unterminated
/// constructs simply run to end of input (the compiler, not this tool, is
/// the arbiter of well-formedness).
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `idx` past one char, bumping the line counter on newlines.
    // Kept as a macro-free closure-free pattern: inline at each use.
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push((line, chars[start..i].iter().collect()));
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push((start_line, chars[start..i.min(n)].iter().collect()));
            continue;
        }
        // Raw identifiers and raw / byte string prefixes.
        if c == 'r' || c == 'b' {
            // r"…", r#"…"#, b"…", br"…", br#"…"#, r#ident
            let mut j = i + 1;
            if c == 'b' && j < n && chars[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n
                && chars[j] == '"'
                && (c == 'r' || chars[i + 1] == '"' || chars[i + 1] == 'r' || hashes > 0)
            {
                // A raw or byte string: scan to closing quote + hashes.
                let start_line = line;
                let raw = c == 'r' || (c == 'b' && chars[i + 1] == 'r');
                let mut k = j + 1;
                while k < n {
                    if chars[k] == '\n' {
                        line += 1;
                        k += 1;
                        continue;
                    }
                    if !raw && chars[k] == '\\' {
                        k += 2;
                        continue;
                    }
                    if chars[k] == '"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && chars[k + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break;
                        }
                    }
                    k += 1;
                }
                out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line: start_line });
                i = k;
                continue;
            }
            if hashes == 1 && j < n && is_ident_start(chars[j]) {
                // Raw identifier r#match — lex the ident part.
                let start = j;
                let mut k = j;
                while k < n && is_ident_continue(chars[k]) {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..k].iter().collect(),
                    line,
                });
                i = k;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if c == '"' {
            let start_line = line;
            let mut k = i + 1;
            while k < n {
                match chars[k] {
                    '\\' => k += 2,
                    '"' => {
                        k += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        k += 1;
                    }
                    _ => k += 1,
                }
            }
            out.toks.push(Tok { kind: TokKind::Str, text: String::new(), line: start_line });
            i = k;
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
            if i + 1 < n && chars[i + 1] == '\\' {
                // Skip the escape payload up to the closing quote. Start
                // past the escaped character itself so `'\''` does not
                // terminate on the quote it escapes.
                let mut k = i + 3;
                while k < n && chars[k] != '\'' {
                    k += 1;
                }
                out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                i = k + 1;
                continue;
            }
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                let mut k = i + 1;
                while k < n && is_ident_continue(chars[k]) {
                    k += 1;
                }
                if k < n && chars[k] == '\'' {
                    out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                    i = k + 1;
                } else {
                    out.toks.push(Tok { kind: TokKind::Lifetime, text: String::new(), line });
                    i = k;
                }
                continue;
            }
            // Something like '(' as a char literal, or stray quote.
            let mut k = i + 1;
            while k < n && chars[k] != '\'' && chars[k] != '\n' {
                k += 1;
            }
            out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
            i = (k + 1).min(n);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut k = i;
            while k < n && (is_ident_continue(chars[k])) {
                k += 1;
            }
            // One fractional part: `1.5`, but not the range `1..5`.
            if k < n && chars[k] == '.' && k + 1 < n && chars[k + 1].is_ascii_digit() {
                k += 1;
                while k < n && is_ident_continue(chars[k]) {
                    k += 1;
                }
            }
            out.toks.push(Tok { kind: TokKind::Num, text: chars[start..k].iter().collect(), line });
            i = k;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            let mut k = i;
            while k < n && is_ident_continue(chars[k]) {
                k += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..k].iter().collect(),
                line,
            });
            i = k;
            continue;
        }
        out.toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn words_in_strings_and_comments_are_not_tokens() {
        let src = r##"
            // this unwrap is a comment
            let x = "calls .unwrap() inside a string";
            let y = r#"raw unwrap"# ; /* block unwrap */
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn comments_carry_their_line() {
        let lexed = lex("fn f() {}\n// SAFETY: fine\nfn g() {}\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].0, 2);
        assert!(lexed.comment_near(3, 3, "SAFETY:"));
        assert!(!lexed.comment_near(1, 0, "SAFETY:"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = lexed.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lexed = lex("/* outer /* inner */ still */ token");
        assert_eq!(lexed.toks.len(), 1);
        assert_eq!(lexed.toks[0].text, "token");
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lexed = lex("0..n");
        let texts: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["0", ".", ".", "n"]);
    }

    #[test]
    fn byte_and_raw_strings_lex_as_strings() {
        let lexed = lex(r##"f(b"x", br"y", r#"z"#, 'q')"##);
        let strs = lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn raw_strings_hide_quotes_and_track_lines() {
        // The embedded `"` and `unwrap` must not leak out of the raw
        // string, and the multi-line body must advance the line counter.
        let src = "let a = r#\"has \" quote\nand .unwrap() inside\"#;\nlet b = 1;\n";
        let lexed = lex(src);
        assert!(!lexed.toks.iter().any(|t| t.text == "unwrap"), "{:?}", lexed.toks);
        let b = lexed.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3, "raw-string newlines must advance the counter");
    }

    #[test]
    fn escaped_quote_char_literal_terminates_correctly() {
        // `'\''` escapes the quote: before the fix the scan stopped on the
        // escaped quote, leaving a stray `'` that swallowed following code.
        let lexed = lex("if c == '\\'' { found(); }\nafter();\n");
        let ids: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["if", "c", "found", "after"]);
        assert_eq!(lexed.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn escaped_backslash_char_literal_terminates_correctly() {
        let lexed = lex("let sep = '\\\\'; next();");
        let ids: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["let", "sep", "next"]);
    }

    #[test]
    fn nested_block_comments_track_lines_and_depth() {
        let lexed = lex("/* l1 /* l2\n inner */\n outer */ tok_a\n/* plain */ tok_b");
        let texts: Vec<(&str, u32)> =
            lexed.toks.iter().map(|t| (t.text.as_str(), t.line)).collect();
        assert_eq!(texts, vec![("tok_a", 3), ("tok_b", 4)]);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetime_ticks_in_generics_and_bounds_are_lifetimes() {
        let lexed = lex("struct S<'a, 'b: 'a> { x: &'a str }\nfn f() -> char { 'a' }");
        let lifetimes = lexed.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = lexed.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 4, "{:?}", lexed.toks);
        assert_eq!(chars, 1, "'a' with a closing tick is a char literal");
    }
}
