//! The five repo contracts, enforced at token level.
//!
//! | Rule | Contract |
//! |------|----------|
//! | D1   | No `HashMap`/`HashSet` in modules that touch the parallel runtime: iteration order is seeded per process, so any traversal is schedule-visible. |
//! | D2   | No order-sensitive reductions (`.sum`/`.fold`/`.reduce`/`.product`) chained directly on a parallel iterator outside the blessed wrapper (`reorderlab_graph::det_sum_f64`). |
//! | P1   | No `.unwrap()` / `.expect("…")` / `panic!` / `todo!` / `unimplemented!` in library crates outside `#[cfg(test)]`; ingestion files additionally ban slice indexing `[…]`. |
//! | C1   | No lossy `as` integer casts in the graph/core/kernels crates; ingestion files ban *all* integer `as` casts. Use `reorderlab_graph::cast` or `TryFrom`. |
//! | U1   | Every crate root carries `#![forbid(unsafe_code)]`, and any `unsafe` token anywhere is a diagnostic (audited exceptions live in `analyze.toml`). |
//!
//! All checks run on the token stream from [`crate::lexer`], so words inside
//! strings, comments, and doc examples never fire. Code under `#[cfg(test)]`
//! is exempt from D1/D2/P1/C1 (tests are allowed to panic and to cast), but
//! not from U1 (unsafe in tests still needs an audit).

use crate::lexer::{Lexed, Tok, TokKind};

/// Every rule id the analyzer knows, in report order.
pub const RULE_IDS: [&str; 5] = ["D1", "D2", "P1", "C1", "U1"];

/// One finding: rule id, 1-based line, human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id from [`RULE_IDS`].
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// What was found and what to do instead.
    pub message: String,
}

/// Which rules apply to a given file. Computed from the workspace path by
/// the driver; fixtures and unit tests construct it directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// D1 applies (file is in an analyzed crate and not D1-blessed).
    pub d1: bool,
    /// D2 applies (not the blessed `determinism.rs` wrapper module).
    pub d2: bool,
    /// P1 applies (library crate, not a binary).
    pub p1: bool,
    /// P1's slice-index leg applies (ingestion files only).
    pub p1_index: bool,
    /// C1 applies (graph/core/kernels, not the blessed `cast.rs`).
    pub c1: bool,
    /// C1 bans *all* integer casts, not just narrowing ones (ingestion).
    pub c1_all_int: bool,
    /// U1's `unsafe`-token check applies.
    pub u1: bool,
    /// U1's `#![forbid(unsafe_code)]` requirement applies (crate/bin roots).
    pub u1_root: bool,
}

impl Scope {
    /// Everything on — used by the fixture corpus.
    pub fn all() -> Self {
        Scope {
            d1: true,
            d2: true,
            p1: true,
            p1_index: true,
            c1: true,
            c1_all_int: true,
            u1: true,
            u1_root: true,
        }
    }
}

/// Identifiers that mark a file as touching the parallel runtime (gates D1).
const PAR_HINTS: [&str; 6] =
    ["rayon", "par_iter", "par_iter_mut", "into_par_iter", "par_chunks", "par_chunks_mut"];

/// Identifiers that start a parallel iterator chain (activates D2).
const PAR_ITER_STARTS: [&str; 5] =
    ["par_iter", "par_iter_mut", "into_par_iter", "par_chunks", "par_chunks_mut"];

/// `.sum` / `.fold` / `.reduce` / `.product` directly on a par chain.
const D2_REDUCERS: [&str; 4] = ["sum", "fold", "reduce", "product"];

/// Adapters that hand the chain back to a serial iterator (deactivate D2).
const SERIAL_REENTRY: [&str; 7] =
    ["iter", "into_iter", "chars", "bytes", "drain", "windows", "chunks"];

/// Integer targets where `as` can truncate from any wider source.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// The remaining integer targets, banned only in ingestion files.
const WIDE_INTS: [&str; 6] = ["u64", "i64", "usize", "isize", "u128", "i128"];

/// Keywords that can legitimately precede `[` without it being an index.
const NON_INDEX_BEFORE_BRACKET: [&str; 12] =
    ["in", "return", "break", "else", "match", "if", "while", "loop", "move", "as", "let", "use"];

/// Runs every in-scope rule over one lexed file.
pub fn check(lexed: &Lexed, scope: &Scope) -> Vec<Diagnostic> {
    let toks = &lexed.toks;
    let test_ranges = cfg_test_ranges(toks);
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| (a..=b).contains(&line));
    let mut out = Vec::new();

    let file_has_par =
        toks.iter().any(|t| t.kind == TokKind::Ident && PAR_HINTS.contains(&t.text.as_str()));

    if scope.d1 && file_has_par {
        check_d1(toks, &in_test, &mut out);
    }
    if scope.d2 {
        check_d2(toks, &in_test, &mut out);
    }
    if scope.p1 {
        check_p1(toks, &in_test, &mut out);
    }
    if scope.p1 && scope.p1_index {
        check_p1_index(toks, &in_test, &mut out);
    }
    if scope.c1 {
        check_c1(toks, scope.c1_all_int, &in_test, &mut out);
    }
    if scope.u1 {
        check_u1(toks, scope.u1_root, &mut out);
    }

    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

/// Collects `(start_line, end_line)` spans of every item annotated
/// `#[cfg(test)]` — any item kind (`mod tests`, `mod proptests`, a lone
/// `fn`, a `use`), tracked by brace depth so nested items stay inside.
fn cfg_test_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            let mut depth = 0i32;
            j += 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Consume the item: up to the matching `}` of its first top-level
        // brace, or to a `;` if none comes first (e.g. `use`, `mod m;`).
        let mut depth = 0i32;
        let mut end_line = start_line;
        let mut closed = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = toks[j].line;
                        j += 1;
                        closed = true;
                    }
                }
                ";" if depth == 0 => {
                    end_line = toks[j].line;
                    j += 1;
                    closed = true;
                }
                _ => {}
            }
            if closed {
                break;
            }
            j += 1;
        }
        if !closed {
            end_line = toks.last().map_or(start_line, |t| t.line);
        }
        ranges.push((start_line, end_line));
        i = j;
    }
    ranges
}

fn check_d1(toks: &[Tok], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || (t.text != "HashMap" && t.text != "HashSet")
            || in_test(t.line)
        {
            continue;
        }
        // `Qualifier::HashMap` where the qualifier is not `collections` is a
        // path into some other namespace (e.g. an enum variant named after
        // the kernel it mirrors), not the std type.
        let variant_path = idx >= 3
            && toks[idx - 1].text == ":"
            && toks[idx - 2].text == ":"
            && toks[idx - 3].kind == TokKind::Ident
            && toks[idx - 3].text != "collections";
        if variant_path {
            continue;
        }
        out.push(Diagnostic {
            rule: "D1",
            line: t.line,
            message: format!(
                "`{}` in a module that touches the parallel runtime: iteration \
                 order is seeded per process; use a sorted Vec or an \
                 index-keyed scatter array instead",
                t.text
            ),
        });
    }
}

fn check_d2(toks: &[Tok], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    let mut active = false;
    let mut rel = 0i32;
    let mut idx = 0usize;
    while idx < toks.len() {
        let t = &toks[idx];
        let starts_chain = t.kind == TokKind::Ident
            && PAR_ITER_STARTS.contains(&t.text.as_str())
            && toks.get(idx + 1).is_some_and(|n| n.text == "(");
        if starts_chain {
            active = true;
            rel = 0;
            idx += 1;
            continue;
        }
        if active {
            match t.text.as_str() {
                "(" | "{" | "[" => rel += 1,
                ")" | "}" | "]" => {
                    rel -= 1;
                    if rel < 0 {
                        active = false;
                    }
                }
                ";" if rel <= 0 => active = false,
                _ => {}
            }
            // Only method calls chained directly on the parallel iterator
            // (relative depth 0) are part of the chain; anything inside a
            // closure body sits at depth > 0 and is serial code.
            if active
                && rel == 0
                && t.kind == TokKind::Ident
                && idx > 0
                && toks[idx - 1].text == "."
            {
                if D2_REDUCERS.contains(&t.text.as_str()) {
                    if !in_test(t.line) {
                        out.push(Diagnostic {
                            rule: "D2",
                            line: t.line,
                            message: format!(
                                "`.{}` chained on a parallel iterator: the \
                                 reduction order depends on the schedule; \
                                 collect in input order and reduce through \
                                 reorderlab_graph::det_sum_f64 (or allowlist \
                                 with a DETERMINISM comment if the operation \
                                 is order-free)",
                                t.text
                            ),
                        });
                    }
                } else if SERIAL_REENTRY.contains(&t.text.as_str()) {
                    active = false;
                }
            }
        }
        idx += 1;
    }
}

fn check_p1(toks: &[Tok], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let prev_dot = idx > 0 && toks[idx - 1].text == ".";
        let next_paren = toks.get(idx + 1).is_some_and(|n| n.text == "(");
        match t.text.as_str() {
            "unwrap" if prev_dot && next_paren => out.push(Diagnostic {
                rule: "P1",
                line: t.line,
                message: "`.unwrap()` in library code: return a typed error, or prove the \
                          invariant and allowlist the site with a SAFETY comment"
                    .to_string(),
            }),
            // Only `.expect("…")` with a string-literal message is the
            // panicking Option/Result method; `self.expect(b'[')`-style
            // parser methods take non-string arguments.
            "expect"
                if prev_dot
                    && next_paren
                    && toks.get(idx + 2).is_some_and(|a| a.kind == TokKind::Str) =>
            {
                out.push(Diagnostic {
                    rule: "P1",
                    line: t.line,
                    message: "`.expect(\"…\")` in library code: return a typed error, or prove \
                              the invariant and allowlist the site with a SAFETY comment"
                        .to_string(),
                });
            }
            "panic" | "todo" | "unimplemented"
                if toks.get(idx + 1).is_some_and(|n| n.text == "!") =>
            {
                out.push(Diagnostic {
                    rule: "P1",
                    line: t.line,
                    message: format!(
                        "`{}!` in library code: return a typed error instead of aborting the \
                         caller",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
}

fn check_p1_index(toks: &[Tok], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    for (idx, t) in toks.iter().enumerate() {
        if t.text != "[" || t.kind != TokKind::Punct || idx == 0 || in_test(t.line) {
            continue;
        }
        let p = &toks[idx - 1];
        let indexing = (p.kind == TokKind::Ident
            && !NON_INDEX_BEFORE_BRACKET.contains(&p.text.as_str()))
            || p.text == ")"
            || p.text == "]";
        if indexing {
            out.push(Diagnostic {
                rule: "P1",
                line: t.line,
                message: "slice index `[…]` in an ingestion path can panic on malformed \
                          input: use `.get()` and surface a typed parse error"
                    .to_string(),
            });
        }
    }
}

fn check_c1(toks: &[Tok], all_int: bool, in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || in_test(t.line) {
            continue;
        }
        let Some(target) = toks.get(idx + 1) else { continue };
        if target.kind != TokKind::Ident {
            continue;
        }
        let narrow = NARROW_INTS.contains(&target.text.as_str());
        let wide = WIDE_INTS.contains(&target.text.as_str());
        if narrow || (all_int && wide) {
            out.push(Diagnostic {
                rule: "C1",
                line: t.line,
                message: format!(
                    "`as {}` silently truncates out-of-range values: use \
                     reorderlab_graph::cast or TryFrom, or allowlist the site with a \
                     SAFETY comment proving the bound",
                    target.text
                ),
            });
        }
    }
}

fn check_u1(toks: &[Tok], require_forbid: bool, out: &mut Vec<Diagnostic>) {
    for t in toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            out.push(Diagnostic {
                rule: "U1",
                line: t.line,
                message: "`unsafe` requires an audit: add a // SAFETY: comment and register \
                          the site in analyze.toml"
                    .to_string(),
            });
        }
    }
    if require_forbid && !has_forbid_unsafe(toks) {
        out.push(Diagnostic {
            rule: "U1",
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    for i in 0..toks.len().saturating_sub(5) {
        let head = toks[i].text == "#"
            && toks[i + 1].text == "!"
            && toks[i + 2].text == "["
            && toks[i + 3].text == "forbid"
            && toks[i + 4].text == "(";
        if !head {
            continue;
        }
        let mut j = i + 5;
        while j < toks.len() && toks[j].text != ")" {
            if toks[j].kind == TokKind::Ident && toks[j].text == "unsafe_code" {
                return true;
            }
            j += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&lex(src), &Scope::all())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d1_flags_hashmap_in_par_file() {
        let src =
            "#![forbid(unsafe_code)]\nuse rayon::prelude::*;\nuse std::collections::HashMap;\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.rule == "D1" && d.line == 3), "{d:?}");
    }

    #[test]
    fn d1_silent_without_par_tokens() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n";
        assert!(!rules_of(&run(src)).contains(&"D1"));
    }

    #[test]
    fn d1_skips_enum_variant_paths() {
        let src = "#![forbid(unsafe_code)]\nuse rayon::prelude::*;\nfn f() { let k = MoveKernel::HashMap; }\n";
        assert!(!rules_of(&run(src)).contains(&"D1"));
    }

    #[test]
    fn d2_flags_sum_on_par_chain() {
        let src = "#![forbid(unsafe_code)]\nfn f(v: &[f64]) -> f64 { v.par_iter().map(|x| x * 2.0).sum() }\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.rule == "D2" && d.line == 2), "{d:?}");
    }

    #[test]
    fn d2_ignores_serial_fold_inside_closure() {
        let src = "#![forbid(unsafe_code)]\nfn f(v: &[Vec<f64>]) { v.par_iter().for_each(|row| { let _s = row.iter().fold(0.0, |a, b| a + b); }); }\n";
        assert!(!rules_of(&run(src)).contains(&"D2"));
    }

    #[test]
    fn d2_chain_ends_at_statement() {
        let src = "#![forbid(unsafe_code)]\nfn f(v: &[f64]) -> f64 { let parts: Vec<f64> = v.par_iter().map(|x| *x).collect();\n parts.iter().fold(0.0, |a, b| a + b) }\n";
        assert!(!rules_of(&run(src)).contains(&"D2"));
    }

    #[test]
    fn p1_flags_unwrap_expect_panic() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u32>) -> u32 {\n let a = x.unwrap();\n let b = x.expect(\"must\");\n if a == b { panic!(\"boom\"); }\n a\n}\n";
        let lines: Vec<u32> = run(src).iter().filter(|d| d.rule == "P1").map(|d| d.line).collect();
        assert_eq!(lines, vec![3, 4, 5]);
    }

    #[test]
    fn p1_skips_non_string_expect_and_unwrap_or() {
        let src = "#![forbid(unsafe_code)]\nfn f(p: &mut P, x: Option<u32>) -> u32 {\n p.expect(b'[');\n x.unwrap_or(0)\n}\n";
        assert!(!rules_of(&run(src)).contains(&"P1"));
    }

    #[test]
    fn p1_suppressed_in_cfg_test() {
        let src = "#![forbid(unsafe_code)]\nfn lib() {}\n#[cfg(test)]\nmod proptests {\n fn t(x: Option<u32>) { x.unwrap(); }\n}\n";
        assert!(!rules_of(&run(src)).contains(&"P1"));
    }

    #[test]
    fn p1_index_flags_indexing_not_attributes() {
        let src = "#![forbid(unsafe_code)]\n#[derive(Debug)]\nstruct S;\nfn f(v: &[u32]) -> u32 { v[0] }\nfn g() { for _x in [1, 2] {} }\n";
        let p1: Vec<u32> = run(src).iter().filter(|d| d.rule == "P1").map(|d| d.line).collect();
        assert_eq!(p1, vec![4]);
    }

    #[test]
    fn c1_flags_narrow_casts_only_unless_all_int() {
        let src = "#![forbid(unsafe_code)]\nfn f(n: usize) -> u32 { n as u32 }\nfn g(n: u32) -> f64 { n as f64 }\nfn h(n: u32) -> usize { n as usize }\n";
        let mut scope = Scope::all();
        scope.c1_all_int = false;
        let d = check(&lex(src), &scope);
        let c1: Vec<u32> = d.iter().filter(|d| d.rule == "C1").map(|d| d.line).collect();
        assert_eq!(c1, vec![2], "narrow mode flags only `as u32`");
        let d = run(src);
        let c1: Vec<u32> = d.iter().filter(|d| d.rule == "C1").map(|d| d.line).collect();
        assert_eq!(c1, vec![2, 4], "ingestion mode also flags `as usize`");
    }

    #[test]
    fn u1_missing_forbid_and_unsafe_token() {
        let src = "fn f() { let p = 0 as *const u8; unsafe { let _ = *p; } }\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.rule == "U1" && d.line == 1));
        assert!(d.iter().filter(|d| d.rule == "U1").count() >= 2, "{d:?}");
    }

    #[test]
    fn u1_satisfied_by_forbid_attribute() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(!rules_of(&run(src)).contains(&"U1"));
    }

    #[test]
    fn clean_file_has_no_diagnostics() {
        let src = "#![forbid(unsafe_code)]\n/// Docs mentioning unwrap() and panic! are fine.\npub fn f(x: Option<u32>) -> Option<u32> { x.map(|v| v.saturating_add(1)) }\n";
        assert_eq!(run(src), Vec::new());
    }
}
