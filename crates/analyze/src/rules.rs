//! The nine repo contracts.
//!
//! | Rule | Contract |
//! |------|----------|
//! | D1   | No `HashMap`/`HashSet` in modules that touch the parallel runtime: iteration order is seeded per process, so any traversal is schedule-visible. |
//! | D2   | No order-sensitive reductions (`.sum`/`.fold`/`.reduce`/`.product`) chained directly on a parallel iterator outside the blessed wrapper (`reorderlab_graph::det_sum_f64`). |
//! | D3   | No call, inside a parallel region, to a function that (transitively, across files) iterates a hash container — the call-graph closure of D1. |
//! | P1   | No `.unwrap()` / `.expect("…")` / `panic!` / `todo!` / `unimplemented!` in library crates outside `#[cfg(test)]`; ingestion files additionally ban slice indexing `[…]`. |
//! | C1   | No lossy `as` integer casts in the graph/core/kernels crates; ingestion files ban *all* integer `as` casts. Use `reorderlab_graph::cast` or `TryFrom`. |
//! | U1   | Every crate root carries `#![forbid(unsafe_code)]`, and any `unsafe` token anywhere is a diagnostic (audited exceptions live in `analyze.toml`). |
//! | L1   | No `MutexGuard` binding live across blocking work (socket/file I/O, `try_reorder`-class kernel calls) in the serve/ops surface — a held lock across a stall serializes every peer on the shard. |
//! | E1   | In serve/ops library code, no `unwrap`/`expect` on lock/channel/socket results outside the blessed poison-recovering `lock()` helper — every failure must map to a typed `OpError`. |
//! | W1   | Wire-contract exhaustiveness: every `OpError` variant appears exactly once in both the exit-code match and the wire-status match. |
//!
//! D1/D2/P1/C1/U1 are token-level; L1/E1/W1 additionally consult the
//! [`crate::scopes`] block tree (guard liveness, enclosing-function names,
//! `impl` membership), and D3 runs workspace-wide over the
//! [`crate::callgraph`] — it is emitted by the driver, not by [`check`].
//! Code under `#[cfg(test)]` is exempt from everything but U1.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::scopes::{cfg_test_ranges, let_bindings_in, ScopeTree};

/// Every rule id the analyzer knows, in report order.
pub const RULE_IDS: [&str; 9] = ["D1", "D2", "D3", "P1", "C1", "U1", "L1", "E1", "W1"];

/// One finding: rule id, 1-based line, human message, and (for D3) the
/// call-graph evidence chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id from [`RULE_IDS`].
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// What was found and what to do instead.
    pub message: String,
    /// Call-graph evidence (`["a", "b", "c"]` = `a` calls `b` calls `c`);
    /// empty for every rule but D3.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// A chain-less diagnostic (every rule but D3).
    pub fn new(rule: &'static str, line: u32, message: String) -> Diagnostic {
        Diagnostic { rule, line, message, chain: Vec::new() }
    }
}

/// Which rules apply to a given file. Computed from the workspace path by
/// the driver; fixtures and unit tests construct it directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// D1 applies (file is in an analyzed crate and not D1-blessed).
    pub d1: bool,
    /// D2 applies (not the blessed `determinism.rs` wrapper module).
    pub d2: bool,
    /// D3 call sites in this file are reported (driver-level rule).
    pub d3: bool,
    /// P1 applies (library crate, not a binary).
    pub p1: bool,
    /// P1's slice-index leg applies (ingestion files only).
    pub p1_index: bool,
    /// C1 applies (graph/core/kernels, not the blessed `cast.rs`).
    pub c1: bool,
    /// C1 bans *all* integer casts, not just narrowing ones (ingestion).
    pub c1_all_int: bool,
    /// U1's `unsafe`-token check applies.
    pub u1: bool,
    /// U1's `#![forbid(unsafe_code)]` requirement applies (crate/bin roots).
    pub u1_root: bool,
    /// L1 applies (serve/ops concurrent surface).
    pub l1: bool,
    /// E1 applies (serve/ops library code).
    pub e1: bool,
    /// W1 applies (fires only in the file defining `enum OpError`).
    pub w1: bool,
}

impl Scope {
    /// Everything on — used by the fixture corpus.
    pub fn all() -> Self {
        Scope {
            d1: true,
            d2: true,
            d3: true,
            p1: true,
            p1_index: true,
            c1: true,
            c1_all_int: true,
            u1: true,
            u1_root: true,
            l1: true,
            e1: true,
            w1: true,
        }
    }
}

/// Identifiers that mark a file as touching the parallel runtime (gates D1).
const PAR_HINTS: [&str; 6] =
    ["rayon", "par_iter", "par_iter_mut", "into_par_iter", "par_chunks", "par_chunks_mut"];

/// Identifiers that start a parallel iterator chain (activates D2, and
/// delimits the parallel regions D3 scans).
pub const PAR_ITER_STARTS: [&str; 5] =
    ["par_iter", "par_iter_mut", "into_par_iter", "par_chunks", "par_chunks_mut"];

/// `.sum` / `.fold` / `.reduce` / `.product` directly on a par chain.
const D2_REDUCERS: [&str; 4] = ["sum", "fold", "reduce", "product"];

/// Adapters that hand the chain back to a serial iterator (deactivate D2).
const SERIAL_REENTRY: [&str; 7] =
    ["iter", "into_iter", "chars", "bytes", "drain", "windows", "chunks"];

/// Integer targets where `as` can truncate from any wider source.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// The remaining integer targets, banned only in ingestion files.
const WIDE_INTS: [&str; 6] = ["u64", "i64", "usize", "isize", "u128", "i128"];

/// Keywords that can legitimately precede `[` without it being an index.
const NON_INDEX_BEFORE_BRACKET: [&str; 12] =
    ["in", "return", "break", "else", "match", "if", "while", "loop", "move", "as", "let", "use"];

/// Blocking work a lock guard must not outlive (L1): socket and file I/O,
/// JSONL appends, channel receives, and the reorder/kernel entry points.
/// Condvar `wait` is deliberately absent — waiting *is* the one blocking
/// operation a guard legitimately spans.
const L1_BLOCKING: [&str; 17] = [
    "read",
    "read_line",
    "read_to_string",
    "read_exact",
    "write",
    "write_all",
    "writeln",
    "flush",
    "append_jsonl",
    "try_reorder",
    "try_reorder_recorded",
    "execute_with",
    "run_with_threads",
    "recv",
    "recv_timeout",
    "accept",
    "connect",
];

/// Chain methods after a `lock` call that detach the binding from the
/// guard (the binding holds copied data, not the `MutexGuard`).
const L1_DETACH: [&str; 18] = [
    "clone",
    "cloned",
    "to_vec",
    "to_owned",
    "to_string",
    "len",
    "is_empty",
    "drain",
    "collect",
    "extend",
    "iter",
    "get",
    "remove",
    "insert",
    "take",
    "position",
    "contains_key",
    "pop_front",
];

/// Receiver-chain identifiers that mark an `unwrap`/`expect` as sitting on
/// a lock/channel/socket result (E1).
const E1_SOURCES: [&str; 18] = [
    "lock",
    "send",
    "try_send",
    "recv",
    "try_recv",
    "try_clone",
    "connect",
    "accept",
    "bind",
    "local_addr",
    "peer_addr",
    "read_line",
    "read_to_string",
    "write_all",
    "flush",
    "spawn",
    "join",
    "wait",
];

/// The one function allowed to consume a lock result without mapping it
/// to `OpError`: the poison-recovering helper every serve module defines.
const E1_BLESSED_FN: &str = "lock";

/// Per-rule documentation for `--explain`: `(id, contract, rationale,
/// minimal fixture example)`.
pub const RULE_DOCS: [(&str, &str, &str, &str); 9] = [
    (
        "D1",
        "No HashMap/HashSet in files that touch the parallel runtime.",
        "Iteration order of randomized-hash containers is seeded per process; any traversal \
         that feeds parallel work makes the result schedule-visible. Use a sorted Vec or an \
         index-keyed scatter array.",
        "use rayon::prelude::*;\nuse std::collections::HashMap;   // <- D1",
    ),
    (
        "D2",
        "No .sum/.fold/.reduce/.product chained directly on a parallel iterator.",
        "Float reduction order depends on the schedule. Collect in input order and reduce \
         through reorderlab_graph::det_sum_f64, or allowlist order-free reductions with a \
         DETERMINISM comment.",
        "v.par_iter().map(|x| x * 2.0).sum()   // <- D2",
    ),
    (
        "D3",
        "No call, inside a parallel region, to a function that transitively iterates a \
         hash container.",
        "D1 only sees hash containers lexically near par_iter; a helper in another file \
         reintroduces the leak. The analyzer builds a workspace call graph, taints every \
         function whose body touches HashMap/HashSet, propagates taint to callers, and \
         reports tainted calls reachable from parallel regions with the evidence chain \
         (tainted via a -> b -> c).",
        "fn tally() { /* iterates a HashMap */ }\nv.par_iter().for_each(|_| { tally(); })   // <- D3",
    ),
    (
        "P1",
        "No unwrap/expect/panic!/todo!/unimplemented! in library crates; ingestion files \
         also ban bare slice indexing.",
        "Library code returns typed errors; aborting the caller's process is a CLI \
         privilege. Invariant-backed sites carry a SAFETY comment and an allowlist entry.",
        "let x = maybe.unwrap();   // <- P1 (library crate)",
    ),
    (
        "C1",
        "No lossy `as` integer casts in graph/core/kernels; ingestion files ban all \
         integer `as` casts.",
        "`as` silently truncates. Use reorderlab_graph::cast or TryFrom, or prove the \
         bound in a SAFETY comment and allowlist.",
        "let small = big as u32;   // <- C1",
    ),
    (
        "U1",
        "Every crate root carries #![forbid(unsafe_code)]; any `unsafe` token is a \
         diagnostic.",
        "The workspace is 100% safe Rust and the compiler enforces it per crate; U1 \
         catches new roots added without the attribute.",
        "unsafe { *ptr }   // <- U1",
    ),
    (
        "L1",
        "No MutexGuard binding live across blocking work (socket/file I/O, \
         try_reorder-class kernel calls).",
        "A lock held across a stall serializes every request on the shard and can deadlock \
         with the coalescing cell. Drop the guard (end its block, or drop(guard)) before \
         blocking; audited exceptions (e.g. the audit-log append, whose lock exists to \
         serialize the write) carry a SAFETY comment.",
        "let guard = lock(&m);\nstream.write_all(buf);   // <- L1: guard still live",
    ),
    (
        "E1",
        "In serve/ops library code, no unwrap/expect on lock/channel/socket results \
         outside the blessed poison-recovering lock() helper.",
        "A poisoned mutex or closed channel must surface as a typed OpError on the wire, \
         not a worker panic. The lock() helper recovers poisoning once, in one audited \
         place.",
        "let g = m.lock().unwrap();   // <- E1 (use the lock() helper)",
    ),
    (
        "W1",
        "Every OpError variant appears exactly once in both the exit-code match and the \
         wire-status match.",
        "The error taxonomy defines exit codes and wire statuses exactly once; a variant \
         added without both mappings silently degrades clients. The rule parses enum \
         OpError and the exit_code()/status() bodies and checks per-variant counts.",
        "enum OpError { Usage(String), Io(String) }\nfn status(&self) -> &str { match self { OpError::Usage(_) => \"usage\" } }   // <- W1: Io unmapped",
    ),
];

/// Runs every in-scope per-file rule over one lexed file. (D3 is
/// workspace-level and emitted by the driver.)
pub fn check(lexed: &Lexed, scope: &Scope) -> Vec<Diagnostic> {
    let toks = &lexed.toks;
    let test_ranges = cfg_test_ranges(toks);
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| (a..=b).contains(&line));
    let mut out = Vec::new();

    let file_has_par =
        toks.iter().any(|t| t.kind == TokKind::Ident && PAR_HINTS.contains(&t.text.as_str()));

    if scope.d1 && file_has_par {
        check_d1(toks, &in_test, &mut out);
    }
    if scope.d2 {
        check_d2(toks, &in_test, &mut out);
    }
    if scope.p1 {
        check_p1(toks, &in_test, &mut out);
    }
    if scope.p1 && scope.p1_index {
        check_p1_index(toks, &in_test, &mut out);
    }
    if scope.c1 {
        check_c1(toks, scope.c1_all_int, &in_test, &mut out);
    }
    if scope.u1 {
        check_u1(toks, scope.u1_root, &mut out);
    }
    if scope.l1 || scope.e1 || scope.w1 {
        let tree = ScopeTree::build(toks);
        if scope.l1 {
            check_l1(toks, &tree, &mut out);
        }
        if scope.e1 {
            check_e1(toks, &tree, &mut out);
        }
        if scope.w1 {
            check_w1(toks, &tree, &mut out);
        }
    }

    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

fn check_d1(toks: &[Tok], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || (t.text != "HashMap" && t.text != "HashSet")
            || in_test(t.line)
        {
            continue;
        }
        // `Qualifier::HashMap` where the qualifier is not `collections` is a
        // path into some other namespace (e.g. an enum variant named after
        // the kernel it mirrors), not the std type.
        let variant_path = idx >= 3
            && toks[idx - 1].text == ":"
            && toks[idx - 2].text == ":"
            && toks[idx - 3].kind == TokKind::Ident
            && toks[idx - 3].text != "collections";
        if variant_path {
            continue;
        }
        out.push(Diagnostic::new(
            "D1",
            t.line,
            format!(
                "`{}` in a module that touches the parallel runtime: iteration \
                 order is seeded per process; use a sorted Vec or an \
                 index-keyed scatter array instead",
                t.text
            ),
        ));
    }
}

fn check_d2(toks: &[Tok], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    let mut active = false;
    let mut rel = 0i32;
    let mut idx = 0usize;
    while idx < toks.len() {
        let t = &toks[idx];
        let starts_chain = t.kind == TokKind::Ident
            && PAR_ITER_STARTS.contains(&t.text.as_str())
            && toks.get(idx + 1).is_some_and(|n| n.text == "(");
        if starts_chain {
            active = true;
            rel = 0;
            idx += 1;
            continue;
        }
        if active {
            match t.text.as_str() {
                "(" | "{" | "[" => rel += 1,
                ")" | "}" | "]" => {
                    rel -= 1;
                    if rel < 0 {
                        active = false;
                    }
                }
                ";" if rel <= 0 => active = false,
                _ => {}
            }
            // Only method calls chained directly on the parallel iterator
            // (relative depth 0) are part of the chain; anything inside a
            // closure body sits at depth > 0 and is serial code.
            if active
                && rel == 0
                && t.kind == TokKind::Ident
                && idx > 0
                && toks[idx - 1].text == "."
            {
                if D2_REDUCERS.contains(&t.text.as_str()) {
                    if !in_test(t.line) {
                        out.push(Diagnostic::new(
                            "D2",
                            t.line,
                            format!(
                                "`.{}` chained on a parallel iterator: the \
                                 reduction order depends on the schedule; \
                                 collect in input order and reduce through \
                                 reorderlab_graph::det_sum_f64 (or allowlist \
                                 with a DETERMINISM comment if the operation \
                                 is order-free)",
                                t.text
                            ),
                        ));
                    }
                } else if SERIAL_REENTRY.contains(&t.text.as_str()) {
                    active = false;
                }
            }
        }
        idx += 1;
    }
}

fn check_p1(toks: &[Tok], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(t.line) {
            continue;
        }
        let prev_dot = idx > 0 && toks[idx - 1].text == ".";
        let next_paren = toks.get(idx + 1).is_some_and(|n| n.text == "(");
        match t.text.as_str() {
            "unwrap" if prev_dot && next_paren => out.push(Diagnostic::new(
                "P1",
                t.line,
                "`.unwrap()` in library code: return a typed error, or prove the \
                 invariant and allowlist the site with a SAFETY comment"
                    .to_string(),
            )),
            // Only `.expect("…")` with a string-literal message is the
            // panicking Option/Result method; `self.expect(b'[')`-style
            // parser methods take non-string arguments.
            "expect"
                if prev_dot
                    && next_paren
                    && toks.get(idx + 2).is_some_and(|a| a.kind == TokKind::Str) =>
            {
                out.push(Diagnostic::new(
                    "P1",
                    t.line,
                    "`.expect(\"…\")` in library code: return a typed error, or prove \
                     the invariant and allowlist the site with a SAFETY comment"
                        .to_string(),
                ));
            }
            "panic" | "todo" | "unimplemented"
                if toks.get(idx + 1).is_some_and(|n| n.text == "!") =>
            {
                out.push(Diagnostic::new(
                    "P1",
                    t.line,
                    format!(
                        "`{}!` in library code: return a typed error instead of aborting the \
                         caller",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

fn check_p1_index(toks: &[Tok], in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    for (idx, t) in toks.iter().enumerate() {
        if t.text != "[" || t.kind != TokKind::Punct || idx == 0 || in_test(t.line) {
            continue;
        }
        let p = &toks[idx - 1];
        let indexing = (p.kind == TokKind::Ident
            && !NON_INDEX_BEFORE_BRACKET.contains(&p.text.as_str()))
            || p.text == ")"
            || p.text == "]";
        if indexing {
            out.push(Diagnostic::new(
                "P1",
                t.line,
                "slice index `[…]` in an ingestion path can panic on malformed \
                 input: use `.get()` and surface a typed parse error"
                    .to_string(),
            ));
        }
    }
}

fn check_c1(toks: &[Tok], all_int: bool, in_test: &dyn Fn(u32) -> bool, out: &mut Vec<Diagnostic>) {
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || in_test(t.line) {
            continue;
        }
        let Some(target) = toks.get(idx + 1) else { continue };
        if target.kind != TokKind::Ident {
            continue;
        }
        let narrow = NARROW_INTS.contains(&target.text.as_str());
        let wide = WIDE_INTS.contains(&target.text.as_str());
        if narrow || (all_int && wide) {
            out.push(Diagnostic::new(
                "C1",
                t.line,
                format!(
                    "`as {}` silently truncates out-of-range values: use \
                     reorderlab_graph::cast or TryFrom, or allowlist the site with a \
                     SAFETY comment proving the bound",
                    target.text
                ),
            ));
        }
    }
}

fn check_u1(toks: &[Tok], require_forbid: bool, out: &mut Vec<Diagnostic>) {
    for t in toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            out.push(Diagnostic::new(
                "U1",
                t.line,
                "`unsafe` requires an audit: add a // SAFETY: comment and register \
                 the site in analyze.toml"
                    .to_string(),
            ));
        }
    }
    if require_forbid && !has_forbid_unsafe(toks) {
        out.push(Diagnostic::new(
            "U1",
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    for i in 0..toks.len().saturating_sub(5) {
        let head = toks[i].text == "#"
            && toks[i + 1].text == "!"
            && toks[i + 2].text == "["
            && toks[i + 3].text == "forbid"
            && toks[i + 4].text == "(";
        if !head {
            continue;
        }
        let mut j = i + 5;
        while j < toks.len() && toks[j].text != ")" {
            if toks[j].kind == TokKind::Ident && toks[j].text == "unsafe_code" {
                return true;
            }
            j += 1;
        }
    }
    false
}

/// L1 — the lock-scope pass. For every simple `let g = …lock(…)…;`
/// binding (or one whose initializer names `MutexGuard`), the guard is
/// live from its `;` until its enclosing block closes, `drop(g)` runs,
/// or the function ends. Any [`L1_BLOCKING`] call in the live range is a
/// finding. Initializers that *detach* from the guard after the lock call
/// (`.clone()`, `.drain().collect()`, …) bind copied data, not the
/// guard, and are skipped.
fn check_l1(toks: &[Tok], tree: &ScopeTree, out: &mut Vec<Diagnostic>) {
    for scope in &tree.functions {
        if scope.in_test {
            continue;
        }
        let Some((open, close)) = scope.body else { continue };
        for b in let_bindings_in(toks, open, close) {
            if !binds_a_guard(toks, b.init) {
                continue;
            }
            // Walk the live range.
            let mut depth = 0i32;
            let mut j = b.end_idx + 1;
            while j <= close && j < toks.len() {
                let t = &toks[j];
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            break; // the binding's block closed: guard dropped
                        }
                    }
                    "drop"
                        if t.kind == TokKind::Ident
                            && toks.get(j + 1).is_some_and(|n| n.text == "(")
                            && toks.get(j + 2).is_some_and(|n| n.text == b.name) =>
                    {
                        j = close + 1; // explicit drop: guard dead
                        continue;
                    }
                    _ => {}
                }
                if t.kind == TokKind::Ident
                    && L1_BLOCKING.contains(&t.text.as_str())
                    && toks.get(j + 1).is_some_and(|n| n.text == "(" || n.text == "!")
                {
                    out.push(Diagnostic::new(
                        "L1",
                        t.line,
                        format!(
                            "blocking call `{}` while lock guard `{}` (line {}) is live: \
                             drop the guard before blocking work, or allowlist with a \
                             SAFETY comment if the lock exists to serialize exactly this",
                            t.text, b.name, b.line
                        ),
                    ));
                }
                j += 1;
            }
        }
    }
}

/// Does this initializer bind a lock guard? True when it contains a
/// `lock(`/`.lock(` call or names `MutexGuard`, and no detaching chain
/// method follows the (last) lock call.
fn binds_a_guard(toks: &[Tok], (start, end): (usize, usize)) -> bool {
    let mut last_lock = None;
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "MutexGuard" {
            return true;
        }
        if t.text == "lock" && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            last_lock = Some(i);
        }
    }
    let Some(lock_idx) = last_lock else { return false };
    !((lock_idx + 1)..=end.min(toks.len().saturating_sub(1)))
        .any(|i| toks[i].kind == TokKind::Ident && L1_DETACH.contains(&toks[i].text.as_str()))
}

/// E1 — unwrap/expect on lock/channel/socket results. Walks the receiver
/// chain backward from the `.unwrap`/`.expect` through method calls,
/// `?`, and paths; if any chain identifier is an [`E1_SOURCES`] name and
/// the site is not inside the blessed `lock()` helper, it fires.
fn check_e1(toks: &[Tok], tree: &ScopeTree, out: &mut Vec<Diagnostic>) {
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || (t.text != "unwrap" && t.text != "expect")
            || idx == 0
            || toks[idx - 1].text != "."
            || toks.get(idx + 1).is_none_or(|n| n.text != "(")
            || tree.in_test(t.line)
        {
            continue;
        }
        let enclosing = tree.enclosing_fn(idx).map(|f| tree.functions[f].name.as_str());
        if enclosing == Some(E1_BLESSED_FN) {
            continue;
        }
        let chain = receiver_chain(toks, idx - 1);
        if let Some(source) = chain.iter().find(|n| E1_SOURCES.contains(&n.as_str())) {
            out.push(Diagnostic::new(
                "E1",
                t.line,
                format!(
                    "`.{}` on a `{source}` result in serving code: a poisoned lock or \
                     closed channel must map to a typed OpError (or go through the \
                     blessed poison-recovering lock() helper), not panic the worker",
                    t.text
                ),
            ));
        }
    }
}

/// Collects the identifiers of the receiver chain ending at the `.` at
/// `dot_idx`: `a.b(x).c?.d` → `["d", "c", "b", "a"]` (argument lists are
/// skipped, not descended into).
fn receiver_chain(toks: &[Tok], dot_idx: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = dot_idx as i64 - 1;
    while i >= 0 {
        let t = &toks[i as usize];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                // Skip the balanced group backward.
                let close = t.text.clone();
                let open = if close == ")" { "(" } else { "[" };
                let mut depth = 0i32;
                while i >= 0 {
                    let s = toks[i as usize].text.as_str();
                    if s == close {
                        depth += 1;
                    } else if s == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i -= 1;
                }
                i -= 1;
            }
            (TokKind::Punct, "?") => i -= 1,
            (TokKind::Punct, ".") => i -= 1,
            (TokKind::Ident, _) => {
                names.push(t.text.clone());
                // Continue through `.`/`::` path segments; otherwise stop.
                if i >= 1 && toks[i as usize - 1].text == "." {
                    i -= 2;
                } else if i >= 2
                    && toks[i as usize - 1].text == ":"
                    && toks[i as usize - 2].text == ":"
                {
                    i -= 3;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    names
}

/// W1 — wire-contract exhaustiveness. Fires only in a file that defines
/// `enum OpError`: every variant must appear exactly once in the body of
/// `exit_code` and exactly once in the body of `status` (both in
/// `impl OpError`).
fn check_w1(toks: &[Tok], tree: &ScopeTree, out: &mut Vec<Diagnostic>) {
    let Some((enum_line, variants)) = op_error_variants(toks) else { return };
    for fn_name in ["exit_code", "status"] {
        let mapping = tree
            .functions
            .iter()
            .find(|f| f.name == fn_name && f.impl_of.as_deref() == Some("OpError"));
        let Some(mapping) = mapping else {
            out.push(Diagnostic::new(
                "W1",
                enum_line,
                format!(
                    "enum OpError is defined here but `fn {fn_name}` is missing from \
                     `impl OpError`: every variant needs an exit-code and a wire-status \
                     mapping"
                ),
            ));
            continue;
        };
        let Some((open, close)) = mapping.body else { continue };
        for v in &variants {
            let count = variant_mentions(toks, open, close, v);
            if count != 1 {
                out.push(Diagnostic::new(
                    "W1",
                    mapping.line,
                    format!(
                        "OpError::{v} appears {count} time(s) in the `{fn_name}` match \
                         (must be exactly 1): a variant without both mappings silently \
                         degrades clients"
                    ),
                ));
            }
        }
    }
}

/// The variants of `enum OpError { … }`, with the enum's line. A variant
/// is an ident at brace depth 1 whose previous significant token is `{`
/// or `,` (or an attribute's closing `]`).
fn op_error_variants(toks: &[Tok]) -> Option<(u32, Vec<String>)> {
    let mut i = 0usize;
    let open = loop {
        if i + 2 >= toks.len() {
            return None;
        }
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "enum"
            && toks[i + 1].text == "OpError"
            && toks[i + 2].text == "{"
        {
            break i + 2;
        }
        i += 1;
    };
    let enum_line = toks[open - 2].line;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if depth == 1
            && toks[j].kind == TokKind::Ident
            && j > 0
            && matches!(toks[j - 1].text.as_str(), "{" | "," | "]")
        {
            variants.push(toks[j].text.clone());
        }
        j += 1;
    }
    Some((enum_line, variants))
}

/// How many times `OpError::<variant>` (or `Self::<variant>`) appears in
/// the token range.
fn variant_mentions(toks: &[Tok], open: usize, close: usize, variant: &str) -> u32 {
    let mut count = 0u32;
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == variant
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && (toks[i - 3].text == "OpError" || toks[i - 3].text == "Self")
        {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&lex(src), &Scope::all())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d1_flags_hashmap_in_par_file() {
        let src =
            "#![forbid(unsafe_code)]\nuse rayon::prelude::*;\nuse std::collections::HashMap;\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.rule == "D1" && d.line == 3), "{d:?}");
    }

    #[test]
    fn d1_silent_without_par_tokens() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::HashMap;\n";
        assert!(!rules_of(&run(src)).contains(&"D1"));
    }

    #[test]
    fn d1_skips_enum_variant_paths() {
        let src = "#![forbid(unsafe_code)]\nuse rayon::prelude::*;\nfn f() { let k = MoveKernel::HashMap; }\n";
        assert!(!rules_of(&run(src)).contains(&"D1"));
    }

    #[test]
    fn d2_flags_sum_on_par_chain() {
        let src = "#![forbid(unsafe_code)]\nfn f(v: &[f64]) -> f64 { v.par_iter().map(|x| x * 2.0).sum() }\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.rule == "D2" && d.line == 2), "{d:?}");
    }

    #[test]
    fn d2_ignores_serial_fold_inside_closure() {
        let src = "#![forbid(unsafe_code)]\nfn f(v: &[Vec<f64>]) { v.par_iter().for_each(|row| { let _s = row.iter().fold(0.0, |a, b| a + b); }); }\n";
        assert!(!rules_of(&run(src)).contains(&"D2"));
    }

    #[test]
    fn d2_chain_ends_at_statement() {
        let src = "#![forbid(unsafe_code)]\nfn f(v: &[f64]) -> f64 { let parts: Vec<f64> = v.par_iter().map(|x| *x).collect();\n parts.iter().fold(0.0, |a, b| a + b) }\n";
        assert!(!rules_of(&run(src)).contains(&"D2"));
    }

    #[test]
    fn p1_flags_unwrap_expect_panic() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u32>) -> u32 {\n let a = x.unwrap();\n let b = x.expect(\"must\");\n if a == b { panic!(\"boom\"); }\n a\n}\n";
        let lines: Vec<u32> = run(src).iter().filter(|d| d.rule == "P1").map(|d| d.line).collect();
        assert_eq!(lines, vec![3, 4, 5]);
    }

    #[test]
    fn p1_skips_non_string_expect_and_unwrap_or() {
        let src = "#![forbid(unsafe_code)]\nfn f(p: &mut P, x: Option<u32>) -> u32 {\n p.expect(b'[');\n x.unwrap_or(0)\n}\n";
        assert!(!rules_of(&run(src)).contains(&"P1"));
    }

    #[test]
    fn p1_suppressed_in_cfg_test() {
        let src = "#![forbid(unsafe_code)]\nfn lib() {}\n#[cfg(test)]\nmod proptests {\n fn t(x: Option<u32>) { x.unwrap(); }\n}\n";
        assert!(!rules_of(&run(src)).contains(&"P1"));
    }

    #[test]
    fn p1_index_flags_indexing_not_attributes() {
        let src = "#![forbid(unsafe_code)]\n#[derive(Debug)]\nstruct S;\nfn f(v: &[u32]) -> u32 { v[0] }\nfn g() { for _x in [1, 2] {} }\n";
        let p1: Vec<u32> = run(src).iter().filter(|d| d.rule == "P1").map(|d| d.line).collect();
        assert_eq!(p1, vec![4]);
    }

    #[test]
    fn c1_flags_narrow_casts_only_unless_all_int() {
        let src = "#![forbid(unsafe_code)]\nfn f(n: usize) -> u32 { n as u32 }\nfn g(n: u32) -> f64 { n as f64 }\nfn h(n: u32) -> usize { n as usize }\n";
        let mut scope = Scope::all();
        scope.c1_all_int = false;
        let d = check(&lex(src), &scope);
        let c1: Vec<u32> = d.iter().filter(|d| d.rule == "C1").map(|d| d.line).collect();
        assert_eq!(c1, vec![2], "narrow mode flags only `as u32`");
        let d = run(src);
        let c1: Vec<u32> = d.iter().filter(|d| d.rule == "C1").map(|d| d.line).collect();
        assert_eq!(c1, vec![2, 4], "ingestion mode also flags `as usize`");
    }

    #[test]
    fn u1_missing_forbid_and_unsafe_token() {
        let src = "fn f() { let p = 0 as *const u8; unsafe { let _ = *p; } }\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.rule == "U1" && d.line == 1));
        assert!(d.iter().filter(|d| d.rule == "U1").count() >= 2, "{d:?}");
    }

    #[test]
    fn u1_satisfied_by_forbid_attribute() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(!rules_of(&run(src)).contains(&"U1"));
    }

    #[test]
    fn clean_file_has_no_diagnostics() {
        let src = "#![forbid(unsafe_code)]\n/// Docs mentioning unwrap() and panic! are fine.\npub fn f(x: Option<u32>) -> Option<u32> { x.map(|v| v.saturating_add(1)) }\n";
        assert_eq!(run(src), Vec::new());
    }

    // --- L1 ---

    #[test]
    fn l1_flags_guard_live_across_blocking_call() {
        let src = "#![forbid(unsafe_code)]\nfn f(m: &Mutex<u32>, s: &mut TcpStream) {\n let guard = lock(m);\n s.write_all(b\"x\");\n}\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.rule == "L1" && d.line == 4), "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("`guard` (line 3)")), "{d:?}");
    }

    #[test]
    fn l1_block_scope_ends_the_guard() {
        let src = "#![forbid(unsafe_code)]\nfn f(m: &Mutex<u32>, s: &mut TcpStream) {\n { let guard = lock(m); *guard += 1; }\n s.write_all(b\"x\");\n}\n";
        assert!(!rules_of(&run(src)).contains(&"L1"));
    }

    #[test]
    fn l1_explicit_drop_ends_the_guard() {
        let src = "#![forbid(unsafe_code)]\nfn f(m: &Mutex<u32>, s: &mut TcpStream) {\n let guard = lock(m);\n drop(guard);\n s.write_all(b\"x\");\n}\n";
        assert!(!rules_of(&run(src)).contains(&"L1"));
    }

    #[test]
    fn l1_detached_bindings_are_not_guards() {
        let src = "#![forbid(unsafe_code)]\nfn f(m: &Mutex<Vec<u32>>, s: &mut TcpStream) {\n let copy = lock(m).clone();\n s.write_all(b\"x\");\n}\n";
        assert!(!rules_of(&run(src)).contains(&"L1"));
    }

    #[test]
    fn l1_temporary_guards_do_not_fire() {
        let src = "#![forbid(unsafe_code)]\nfn f(m: &Mutex<u32>, s: &mut TcpStream) {\n *lock(m) += 1;\n s.write_all(b\"x\");\n}\n";
        assert!(!rules_of(&run(src)).contains(&"L1"));
    }

    // --- E1 ---

    #[test]
    fn e1_flags_unwrap_on_lock_and_channel_results() {
        let src = "#![forbid(unsafe_code)]\nfn f(m: &Mutex<u32>, rx: &Receiver<u32>) {\n let g = m.lock().unwrap();\n let v = rx.recv().expect(\"closed\");\n}\n";
        let e1: Vec<u32> = run(src).iter().filter(|d| d.rule == "E1").map(|d| d.line).collect();
        assert_eq!(e1, vec![3, 4]);
    }

    #[test]
    fn e1_blessed_inside_the_lock_helper() {
        let src = "#![forbid(unsafe_code)]\nfn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n m.lock().unwrap()\n}\n";
        assert!(!rules_of(&run(src)).contains(&"E1"));
    }

    #[test]
    fn e1_ignores_non_channel_unwraps() {
        // Plain Option unwraps are P1's business, not E1's.
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = run(src);
        assert!(!rules_of(&d).contains(&"E1"), "{d:?}");
        assert!(rules_of(&d).contains(&"P1"));
    }

    // --- W1 ---

    const W1_COMPLETE: &str = "#![forbid(unsafe_code)]\n\
        pub enum OpError { Usage(String), Io(String) }\n\
        impl OpError {\n\
         pub fn exit_code(&self) -> u8 { match self { OpError::Usage(_) => 2, OpError::Io(_) => 1 } }\n\
         pub fn status(&self) -> &'static str { match self { OpError::Usage(_) => \"usage\", OpError::Io(_) => \"io\" } }\n\
        }\n";

    #[test]
    fn w1_complete_mapping_is_clean() {
        let d = run(W1_COMPLETE);
        assert!(!rules_of(&d).contains(&"W1"), "{d:?}");
    }

    #[test]
    fn w1_flags_a_missing_status_arm() {
        let src = W1_COMPLETE.replace("OpError::Io(_) => \"io\"", "_ => \"io\"");
        let d = run(&src);
        let w1: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == "W1").collect();
        assert_eq!(w1.len(), 1, "{d:?}");
        assert!(w1[0].message.contains("OpError::Io"), "{}", w1[0].message);
        assert!(w1[0].message.contains("status"), "{}", w1[0].message);
    }

    #[test]
    fn w1_flags_a_duplicated_exit_code_arm() {
        let src = W1_COMPLETE
            .replace("OpError::Io(_) => 1", "OpError::Io(_) => 1, OpError::Usage(_) => 3");
        let d = run(&src);
        assert!(d.iter().any(|d| d.rule == "W1" && d.message.contains("2 time(s)")), "{d:?}");
    }

    #[test]
    fn w1_flags_a_missing_mapping_fn() {
        let src = "#![forbid(unsafe_code)]\npub enum OpError { Usage(String) }\n\
            impl OpError { pub fn exit_code(&self) -> u8 { match self { OpError::Usage(_) => 2 } } }\n";
        let d = run(src);
        assert!(
            d.iter().any(|d| d.rule == "W1" && d.message.contains("`fn status` is missing")),
            "{d:?}"
        );
    }

    #[test]
    fn w1_silent_without_the_enum() {
        let src = "#![forbid(unsafe_code)]\nfn uses(e: &OpError) -> u8 { e.exit_code() }\n";
        assert!(!rules_of(&run(src)).contains(&"W1"));
    }
}
