//! A three-level cache hierarchy plus DRAM, with the latency accounting
//! that backs the paper's memory metrics (§VI-A): average load latency in
//! cycles and the L1/L2/L3/DRAM "boundedness" breakdown.

use crate::cache::{Cache, CacheConfig};

/// The memory level that satisfied a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Private level-1 data cache.
    L1,
    /// Private level-2 cache.
    L2,
    /// Shared last-level cache.
    L3,
    /// Main memory.
    Dram,
}

impl MemLevel {
    /// All levels, nearest first.
    pub const ALL: [MemLevel; 4] = [MemLevel::L1, MemLevel::L2, MemLevel::L3, MemLevel::Dram];
}

/// Geometry and latency of the simulated hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// L3 geometry.
    pub l3: CacheConfig,
    /// Load-to-use latency in cycles per level `[L1, L2, L3, DRAM]`.
    pub latency: [u64; 4],
    /// Next-line hardware prefetcher: on a demand miss, the following cache
    /// line is filled without charging a demand load — modelling why VTune
    /// counts only "demand (not prefetched)" stalls (paper §VI-A).
    pub next_line_prefetch: bool,
}

impl HierarchyConfig {
    /// The paper's test platform, per core: Intel Xeon Platinum 8276
    /// (Cascade Lake) — 32 KiB 8-way L1, 1 MiB 16-way L2, 38.5 MiB L3
    /// (modeled 11-way), 64-byte lines; latencies 4 / 14 / 50 / 180 cycles.
    pub fn cascade_lake() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(32 * 1024, 64, 8),
            l2: CacheConfig::new(1024 * 1024, 64, 16),
            // 38.5 MiB rounded to a power-of-two set count: 44 MiB, 11-way.
            l3: CacheConfig::new(11 * 4 * 1024 * 1024, 64, 11),
            latency: [4, 14, 50, 180],
            next_line_prefetch: false,
        }
    }

    /// The Cascade Lake hierarchy scaled down ~16–20× (32 KiB L1 kept,
    /// 128 KiB L2, 2 MiB L3), matching the 1/16–1/64 down-scaling of the
    /// large instance suite so that the *ratio* of graph working set to
    /// cache capacity — which is what decides the paper's boundedness
    /// results — is preserved.
    pub fn scaled_cascade_lake() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(32 * 1024, 64, 8),
            l2: CacheConfig::new(128 * 1024, 64, 8),
            l3: CacheConfig::new(2 * 1024 * 1024, 64, 16),
            latency: [4, 14, 50, 180],
            next_line_prefetch: false,
        }
    }

    /// A miniature hierarchy for fast unit tests (1 KiB / 8 KiB / 64 KiB).
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(1024, 64, 2),
            l2: CacheConfig::new(8 * 1024, 64, 4),
            l3: CacheConfig::new(64 * 1024, 64, 8),
            latency: [4, 14, 50, 180],
            next_line_prefetch: false,
        }
    }
}

impl HierarchyConfig {
    /// Enables the next-line prefetcher.
    pub fn with_next_line_prefetch(mut self) -> Self {
        self.next_line_prefetch = true;
        self
    }
}

/// Aggregated metrics of a replay, in the paper's §VI-A vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemReport {
    /// Total loads issued.
    pub loads: u64,
    /// Average load latency in cycles.
    pub avg_latency: f64,
    /// Loads satisfied at each level `[L1, L2, L3, DRAM]`.
    pub level_hits: [u64; 4],
    /// Fraction of total stall cycles attributable to each level
    /// `[L1, L2, L3, DRAM]` — the boundedness breakdown. (VTune's variants
    /// are not a strict decomposition; ours is normalized to sum to 1.)
    pub bound: [f64; 4],
}

impl MemReport {
    /// Fraction of loads that hit in the private caches (L1 + L2).
    pub fn private_hit_rate(&self) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        (self.level_hits[0] + self.level_hits[1]) as f64 / self.loads as f64
    }

    /// Fraction of loads satisfied at `level` (0 for a zero-load replay).
    pub fn hit_rate(&self, level: MemLevel) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        self.level_hits[level_index(level)] as f64 / self.loads as f64
    }

    /// Fraction of loads satisfied by L1 — the headline per-kernel hit
    /// ratio the snapshot records.
    pub fn l1_hit_rate(&self) -> f64 {
        self.hit_rate(MemLevel::L1)
    }
}

/// A simulated L1/L2/L3/DRAM hierarchy accepting a load trace.
///
/// # Examples
///
/// ```
/// use reorderlab_memsim::{Hierarchy, HierarchyConfig, MemLevel};
///
/// let mut h = Hierarchy::new(HierarchyConfig::tiny());
/// assert_eq!(h.load(0), MemLevel::Dram); // cold
/// assert_eq!(h.load(8), MemLevel::L1);   // same line, now resident
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    level_hits: [u64; 4],
    prefetch_fills: u64,
}

impl Hierarchy {
    /// Creates a cold hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            config,
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            level_hits: [0; 4],
            prefetch_fills: 0,
        }
    }

    /// Issues one demand load; returns the level that satisfied it. Misses
    /// fill every level on the way down (inclusive hierarchy). With the
    /// next-line prefetcher enabled, any demand miss also fills the
    /// following cache line (uncounted).
    pub fn load(&mut self, addr: u64) -> MemLevel {
        let level = self.touch(addr);
        self.level_hits[level_index(level)] += 1;
        if self.config.next_line_prefetch && level != MemLevel::L1 {
            let next_line = addr + self.config.l1.line_bytes as u64;
            self.touch(next_line);
            self.prefetch_fills += 1;
        }
        level
    }

    /// Walks the hierarchy without counting a demand load.
    fn touch(&mut self, addr: u64) -> MemLevel {
        if self.l1.access(addr) {
            MemLevel::L1
        } else if self.l2.access(addr) {
            MemLevel::L2
        } else if self.l3.access(addr) {
            MemLevel::L3
        } else {
            MemLevel::Dram
        }
    }

    /// Number of prefetch fills triggered so far (0 when the prefetcher is
    /// disabled).
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Total loads so far.
    pub fn loads(&self) -> u64 {
        self.level_hits.iter().sum()
    }

    /// Builds the metrics report for the trace replayed so far.
    pub fn report(&self) -> MemReport {
        let loads = self.loads();
        let lat = self.config.latency;
        let cycles: [f64; 4] = [
            self.level_hits[0] as f64 * lat[0] as f64,
            self.level_hits[1] as f64 * lat[1] as f64,
            self.level_hits[2] as f64 * lat[2] as f64,
            self.level_hits[3] as f64 * lat[3] as f64,
        ];
        let total: f64 = cycles.iter().sum();
        let bound = if total == 0.0 {
            [0.0; 4]
        } else {
            [cycles[0] / total, cycles[1] / total, cycles[2] / total, cycles[3] / total]
        };
        MemReport {
            loads,
            avg_latency: if loads == 0 { 0.0 } else { total / loads as f64 },
            level_hits: self.level_hits,
            bound,
        }
    }

    /// The configured geometry and latencies.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Clears cache contents and counters.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
        self.level_hits = [0; 4];
        self.prefetch_fills = 0;
    }
}

fn level_index(level: MemLevel) -> usize {
    match level {
        MemLevel::L1 => 0,
        MemLevel::L2 => 1,
        MemLevel::L3 => 2,
        MemLevel::Dram => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_goes_to_dram_then_l1() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        assert_eq!(h.load(4096), MemLevel::Dram);
        assert_eq!(h.load(4096), MemLevel::L1);
    }

    #[test]
    fn evicted_from_l1_hits_l2() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        // L1 is 1 KiB (16 lines, 2-way, 8 sets). Streaming 64 lines evicts
        // early lines from L1 but they fit in the 8 KiB L2 (128 lines).
        for i in 0..64u64 {
            h.load(i * 64);
        }
        assert_eq!(h.load(0), MemLevel::L2);
    }

    #[test]
    fn evicted_from_l2_hits_l3() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        // Stream 256 lines (16 KiB): exceeds L2 (8 KiB), fits L3 (64 KiB).
        for i in 0..256u64 {
            h.load(i * 64);
        }
        let lvl = h.load(0);
        assert!(
            lvl == MemLevel::L3 || lvl == MemLevel::L2,
            "early line should be in L3 (or L2 by set luck), got {lvl:?}"
        );
    }

    #[test]
    fn sequential_stream_is_mostly_l1() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        for i in 0..4096u64 {
            h.load(i * 4); // 4-byte stride: 16 accesses per line
        }
        let r = h.report();
        let l1_frac = r.level_hits[0] as f64 / r.loads as f64;
        assert!(l1_frac > 0.9, "sequential stride must be L1-friendly, got {l1_frac}");
        assert!(r.avg_latency < 20.0);
    }

    #[test]
    fn random_large_footprint_is_dram_bound() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        // Pseudo-random walk over 16 MiB: far beyond the 64 KiB L3.
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.load(x % (16 * 1024 * 1024));
        }
        let r = h.report();
        assert!(r.bound[3] > 0.5, "random big footprint must be DRAM bound: {:?}", r.bound);
        assert!(r.avg_latency > 50.0);
    }

    #[test]
    fn report_consistency() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        for i in 0..1000u64 {
            h.load(i * 64 % 8192);
        }
        let r = h.report();
        assert_eq!(r.loads, 1000);
        assert_eq!(r.level_hits.iter().sum::<u64>(), 1000);
        let bound_sum: f64 = r.bound.iter().sum();
        assert!((bound_sum - 1.0).abs() < 1e-9);
        assert!(r.avg_latency >= 4.0 && r.avg_latency <= 180.0);
    }

    #[test]
    fn cascade_lake_geometry() {
        let c = HierarchyConfig::cascade_lake();
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.latency, [4, 14, 50, 180]);
        // Must construct without panicking (power-of-two set counts).
        let _ = Hierarchy::new(c);
    }

    #[test]
    fn mem_level_all_nearest_first() {
        assert_eq!(MemLevel::ALL, [MemLevel::L1, MemLevel::L2, MemLevel::L3, MemLevel::Dram]);
    }

    #[test]
    fn prefetcher_converts_stream_misses_to_hits() {
        // A line-strided stream misses every access without prefetch…
        let mut cold = Hierarchy::new(HierarchyConfig::tiny());
        for i in 0..512u64 {
            cold.load(i * 64);
        }
        // …but with the next-line prefetcher, alternate lines are resident.
        let mut pf = Hierarchy::new(HierarchyConfig::tiny().with_next_line_prefetch());
        for i in 0..512u64 {
            pf.load(i * 64);
        }
        assert!(pf.prefetch_fills() > 0);
        assert!(
            pf.report().level_hits[0] > cold.report().level_hits[0] + 200,
            "prefetch should turn most stream misses into L1 hits: {:?} vs {:?}",
            pf.report().level_hits,
            cold.report().level_hits
        );
        assert!(pf.report().avg_latency < cold.report().avg_latency);
    }

    #[test]
    fn prefetcher_disabled_by_default() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        h.load(0);
        h.load(4096);
        assert_eq!(h.prefetch_fills(), 0);
    }

    #[test]
    fn prefetch_does_not_count_as_demand_load() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny().with_next_line_prefetch());
        h.load(0); // miss, prefetches line 1
        assert_eq!(h.loads(), 1, "prefetch fills are not demand loads");
        assert_eq!(h.load(64), MemLevel::L1, "prefetched line must be resident");
    }

    #[test]
    fn prefetch_miss_on_last_line_of_a_set_fills_the_next_set() {
        // tiny L1: 1 KiB, 64 B lines, 2-way => 8 sets; line k maps to set
        // k % 8. A miss on a line in the last set (set 7) prefetches the
        // following line, which wraps into set 0 — the fill must land there,
        // not alias back into set 7.
        let mut h = Hierarchy::new(HierarchyConfig::tiny().with_next_line_prefetch());
        assert_eq!(h.load(7 * 64), MemLevel::Dram); // set 7: miss, prefetch line 8
        assert_eq!(h.prefetch_fills(), 1);
        assert_eq!(h.load(8 * 64), MemLevel::L1, "prefetched line must sit in set 0");
        // Set 7 still holds only line 7: a conflicting line (15) misses.
        assert_eq!(h.load(15 * 64), MemLevel::Dram);
        assert_eq!(h.load(7 * 64), MemLevel::L1, "line 7 must not have been evicted");
    }

    #[test]
    fn prefetch_stream_crossing_set_boundaries_alternates_hits() {
        // A line-strided stream walks sets 0,1,2,…; each miss prefetches
        // exactly the next line (the next set), so demand accesses alternate
        // miss (even lines) / L1 hit (odd lines) regardless of set wraps.
        let mut h = Hierarchy::new(HierarchyConfig::tiny().with_next_line_prefetch());
        for line in 0..20u64 {
            let level = h.load(line * 64);
            if line % 2 == 0 {
                assert_ne!(level, MemLevel::L1, "even line {line} is a demand miss");
            } else {
                assert_eq!(level, MemLevel::L1, "odd line {line} was prefetched");
            }
        }
        assert_eq!(h.prefetch_fills(), 10);
    }

    #[test]
    fn private_hit_rate_counts_l1_l2() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        h.load(0); // DRAM
        h.load(0); // L1
        let r = h.report();
        assert!((r.private_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        h.load(0);
        h.reset();
        assert_eq!(h.loads(), 0);
        assert_eq!(h.load(0), MemLevel::Dram);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let h = Hierarchy::new(HierarchyConfig::tiny());
        let r = h.report();
        assert_eq!(r.loads, 0);
        assert_eq!(r.avg_latency, 0.0);
        assert_eq!(r.bound, [0.0; 4]);
        assert_eq!(r.private_hit_rate(), 0.0);
    }
}
