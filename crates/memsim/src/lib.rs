//! # reorderlab-memsim
//!
//! A trace-driven memory-hierarchy simulator standing in for the paper's
//! Intel VTune measurements (§VI-A): set-associative LRU L1/L2/L3 caches
//! plus DRAM, with per-level latencies modeled on the paper's Cascade Lake
//! test platform.
//!
//! Two replay kernels issue the address streams of the paper's profiled hot
//! routines — the Louvain neighbor-community scan (§VI-B, Figure 10) and
//! the IC reverse-BFS sampler (§VI-C, Figure 12) — over a CSR laid out by
//! any ordering under study. The report exposes the paper's two metrics:
//! **average load latency** (cycles) and **memory-hierarchy boundedness**
//! (the L1/L2/L3/DRAM stall breakdown).
//!
//! ## Example
//!
//! ```
//! use reorderlab_datasets::grid2d;
//! use reorderlab_memsim::{replay_louvain_scan, Hierarchy, HierarchyConfig};
//!
//! let g = grid2d(32, 32);
//! let mut h = Hierarchy::new(HierarchyConfig::tiny());
//! replay_louvain_scan(&g, 4096, &mut h);
//! let report = h.report();
//! assert!(report.loads > 0);
//! assert!(report.avg_latency >= 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod workloads;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{Hierarchy, HierarchyConfig, MemLevel, MemReport};
pub use workloads::{
    replay_louvain_move, replay_louvain_scan, replay_pagerank_iteration, replay_rr_kernel,
    replay_rr_sampling, LouvainReplayKernel, RrReplayKernel,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn hit_plus_miss_equals_accesses(addrs in proptest::collection::vec(any::<u32>(), 1..500)) {
            let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
            for &a in &addrs {
                c.access(a as u64);
            }
            prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        }

        #[test]
        fn immediate_reaccess_always_hits(addrs in proptest::collection::vec(any::<u32>(), 1..200)) {
            let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
            for &a in &addrs {
                c.access(a as u64);
                prop_assert!(c.access(a as u64), "immediate re-access must hit");
            }
        }

        #[test]
        fn hierarchy_bounds_are_a_distribution(
            addrs in proptest::collection::vec(any::<u32>(), 1..500),
        ) {
            let mut h = Hierarchy::new(HierarchyConfig::tiny());
            for &a in &addrs {
                h.load(a as u64);
            }
            let r = h.report();
            prop_assert_eq!(r.loads, addrs.len() as u64);
            let sum: f64 = r.bound.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(r.avg_latency >= 4.0 && r.avg_latency <= 180.0);
        }
    }
}
