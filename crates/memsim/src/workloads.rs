//! Replay kernels: the memory-access streams of the paper's two hot
//! routines, driven through the simulated hierarchy.
//!
//! The kernels issue the *same address sequence* the real algorithms issue
//! over a CSR laid out by a given ordering, which is exactly what makes
//! cache behaviour ordering-sensitive:
//!
//! - [`replay_louvain_scan`]: Grappolo's hot routine — for every vertex,
//!   scan its neighbors, look up each neighbor's community, and update a
//!   per-vertex community map (the "C++ map" auxiliary structure of §VI-B).
//! - [`replay_rr_sampling`]: Ripples' hot routine — probabilistic reverse
//!   BFS traversals touching offsets, targets, and a visited array (§VI-C).
//!
//! Array regions are placed in disjoint address ranges mirroring separate
//! allocations.

use crate::hierarchy::Hierarchy;
use reorderlab_graph::Csr;

/// Base address of the CSR offsets array (8 bytes/entry).
const OFFSETS_BASE: u64 = 0x1000_0000_0000;
/// Base address of the CSR targets array (4 bytes/entry).
const TARGETS_BASE: u64 = 0x2000_0000_0000;
/// Base address of the per-vertex community array (4 bytes/entry).
const COMMUNITY_BASE: u64 = 0x3000_0000_0000;
/// Base address of the per-thread community-weight map.
const MAP_BASE: u64 = 0x4000_0000_0000;
/// Base address of the visited bitmap/array (1 byte/entry).
const VISITED_BASE: u64 = 0x5000_0000_0000;

#[inline]
fn offsets_addr(v: u64) -> u64 {
    OFFSETS_BASE + v * 8
}

#[inline]
fn targets_addr(i: u64) -> u64 {
    TARGETS_BASE + i * 4
}

#[inline]
fn community_addr(v: u64) -> u64 {
    COMMUNITY_BASE + v * 4
}

#[inline]
fn visited_addr(v: u64) -> u64 {
    VISITED_BASE + v
}

/// Base address of the scatter-kernel epoch-stamp array (8 bytes/entry).
const STAMP_BASE: u64 = 0x7000_0000_0000;
/// Base address of the scatter-kernel weight array (8 bytes/entry).
const WEIGHTS_BASE: u64 = 0x8000_0000_0000;
/// Base address of the packed (stamp, weight) slots (16 bytes/entry).
const PACKED_BASE: u64 = 0x9000_0000_0000;
/// Base address of the hub-slot map of the split sampler (4 bytes/entry).
const HUBMAP_BASE: u64 = 0xA000_0000_0000;
/// Base address of the compact hub stamps of the split sampler (8 B/entry).
const HUBSTAMP_BASE: u64 = 0xB000_0000_0000;
/// Base address of the sampler's full-size visited stamps (8 bytes/entry).
const SAMPLER_STAMP_BASE: u64 = 0xC000_0000_0000;

/// Which Louvain move-kernel access stream [`replay_louvain_move`] replays.
/// These mirror the selectable kernels of the community crate's move phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LouvainReplayKernel {
    /// Grappolo's per-vertex `HashMap` accumulation: one hashed 16-byte map
    /// access per neighbor (`map_slots` entries model the map working set).
    HashMap {
        /// Number of 16-byte map slots.
        map_slots: u64,
    },
    /// Flat scatter arrays: per neighbor one 8-byte stamp access plus one
    /// 8-byte weight access, in two separate community-indexed arrays.
    FlatScatter,
    /// The flat stream reordered into line-sized blocks: targets and
    /// community payloads for a whole block are gathered before the block's
    /// scatter accesses are issued.
    Blocked,
    /// Packed scatter: stamp and weight share one 16-byte slot, so each
    /// community touch costs a single line instead of two.
    Packed,
}

/// Targets per 64-byte cache line — the block size the blocked replay (and
/// the real blocked kernel) uses.
const LINE_TARGETS: u64 = 16;

/// Replays the address stream of one Louvain move iteration over `graph`
/// *as laid out* (i.e. pass the CSR already permuted by the ordering under
/// study), under the given kernel's memory layout.
///
/// Per vertex `v`: one offsets load; per neighbor: one targets load, one
/// community load (the ordering-sensitive indirection), and the kernel's
/// accumulator accesses (communities are taken as the initial self-labels,
/// so accumulator indices mix the neighbor id).
pub fn replay_louvain_move(graph: &Csr, kernel: LouvainReplayKernel, hier: &mut Hierarchy) {
    let n = graph.num_vertices() as u64;
    let offsets = graph.offsets();
    let targets = graph.targets();
    for v in 0..n {
        hier.load(offsets_addr(v));
        let lo = offsets[v as usize] as u64;
        let hi = offsets[v as usize + 1] as u64;
        match kernel {
            LouvainReplayKernel::HashMap { map_slots } => {
                for i in lo..hi {
                    hier.load(targets_addr(i));
                    let t = targets[i as usize] as u64;
                    hier.load(community_addr(t));
                    // Map update keyed by the neighbor's community;
                    // initially the community of a vertex is itself, so the
                    // hash mixes `t`.
                    let slot = splitmix(t) % map_slots.max(1);
                    hier.load(MAP_BASE + slot * 16);
                }
            }
            LouvainReplayKernel::FlatScatter => {
                for i in lo..hi {
                    hier.load(targets_addr(i));
                    let t = targets[i as usize] as u64;
                    hier.load(community_addr(t));
                    hier.load(STAMP_BASE + t * 8);
                    hier.load(WEIGHTS_BASE + t * 8);
                }
            }
            LouvainReplayKernel::Blocked => {
                // Same loads as FlatScatter, re-ordered: the whole block's
                // sequential reads first, then its scatter accesses.
                let mut b = lo;
                while b < hi {
                    let e = (b + LINE_TARGETS).min(hi);
                    for i in b..e {
                        hier.load(targets_addr(i));
                        let t = targets[i as usize] as u64;
                        hier.load(community_addr(t));
                    }
                    for i in b..e {
                        let t = targets[i as usize] as u64;
                        hier.load(STAMP_BASE + t * 8);
                        hier.load(WEIGHTS_BASE + t * 8);
                    }
                    b = e;
                }
            }
            LouvainReplayKernel::Packed => {
                for i in lo..hi {
                    hier.load(targets_addr(i));
                    let t = targets[i as usize] as u64;
                    hier.load(community_addr(t));
                    hier.load(PACKED_BASE + t * 16);
                }
            }
        }
    }
}

/// [`replay_louvain_move`] under the [`LouvainReplayKernel::HashMap`]
/// stream — the original replay entry point, kept for existing callers.
pub fn replay_louvain_scan(graph: &Csr, map_slots: u64, hier: &mut Hierarchy) {
    replay_louvain_move(graph, LouvainReplayKernel::HashMap { map_slots }, hier);
}

/// Replays the address stream of `num_sets` IC reverse-BFS samples over
/// `graph` (pass the transpose for directed graphs, already permuted by the
/// ordering under study).
///
/// `labels[v]` is a layout-independent stable id for vertex `v` (pass the
/// inverse permutation when the graph was relabeled, or `0..n` for the
/// natural layout). Roots and per-edge coin flips are hashed from *stable*
/// ids, so every layout replays the exact same logical traversal — only the
/// addresses differ. That is precisely the comparison the paper's Figure 12
/// makes: same work, different placement.
///
/// Per visited vertex: one offsets load; per examined in-edge: one targets
/// load and one visited-array load.
///
/// # Panics
///
/// Panics if `labels` does not cover every vertex or `probability` is not
/// in `\[0, 1\]`.
pub fn replay_rr_sampling(
    graph: &Csr,
    labels: &[u32],
    probability: f64,
    num_sets: usize,
    seed: u64,
    hier: &mut Hierarchy,
) {
    assert!((0.0..=1.0).contains(&probability), "probability must be in [0, 1]");
    let n = graph.num_vertices();
    assert_eq!(labels.len(), n, "labels must cover every vertex");
    if n == 0 {
        return;
    }
    // stable id -> layout vertex, for picking roots deterministically.
    let mut by_label = vec![0u32; n];
    for (v, &l) in labels.iter().enumerate() {
        by_label[l as usize] = v as u32;
    }
    let offsets = graph.offsets();
    let targets = graph.targets();
    let mut visited = vec![u32::MAX; n]; // epoch-tagged visited array
    for s in 0..num_sets {
        let set_seed = splitmix(seed ^ (s as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let root = by_label[(set_seed % n as u64) as usize];
        let epoch = s as u32;
        visited[root as usize] = epoch;
        let mut frontier = vec![root];
        let mut head = 0usize;
        while head < frontier.len() {
            let v = frontier[head];
            head += 1;
            hier.load(offsets_addr(v as u64));
            let lo = offsets[v as usize];
            let hi = offsets[v as usize + 1];
            // `i` doubles as the simulated address of the adjacency slot.
            #[allow(clippy::needless_range_loop)]
            for i in lo..hi {
                hier.load(targets_addr(i as u64));
                let t = targets[i];
                hier.load(visited_addr(t as u64));
                if visited[t as usize] != epoch
                    && edge_coin(set_seed, labels[v as usize], labels[t as usize]) < probability
                {
                    visited[t as usize] = epoch;
                    frontier.push(t);
                }
            }
        }
    }
}

/// Which RR-sampler visited-stamp layout [`replay_rr_kernel`] replays.
/// These mirror the influence crate's selectable sampler kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrReplayKernel {
    /// One full-size epoch-stamp array (8 bytes/vertex).
    Classic,
    /// Hub/cold split: a visited check first reads the hub-slot map
    /// (4 bytes/vertex); hubs then probe a compact cache-resident stamp
    /// array, cold vertices the full-size one.
    HubSplit,
}

/// Replays the address stream of `num_sets` IC reverse-BFS samples under
/// the given visited-stamp layout. The logical traversal (roots, coins,
/// visit order) is identical across kernels — it is keyed on the stable
/// `labels` exactly like [`replay_rr_sampling`] — so any counter delta is
/// attributable purely to the layout.
///
/// The hub set mirrors the real sampler's partition: the top `n/64`
/// (clamped to `[1, 4096]`) vertices by degree, ties broken by id.
///
/// # Panics
///
/// Panics if `labels` does not cover every vertex or `probability` is not
/// in `\[0, 1\]`.
pub fn replay_rr_kernel(
    graph: &Csr,
    labels: &[u32],
    probability: f64,
    num_sets: usize,
    seed: u64,
    kernel: RrReplayKernel,
    hier: &mut Hierarchy,
) {
    assert!((0.0..=1.0).contains(&probability), "probability must be in [0, 1]");
    let n = graph.num_vertices();
    assert_eq!(labels.len(), n, "labels must cover every vertex");
    if n == 0 {
        return;
    }
    // Hub partition mirroring the influence crate's `hub_partition`.
    let hub_slot: Vec<u32> = match kernel {
        RrReplayKernel::Classic => Vec::new(),
        RrReplayKernel::HubSplit => {
            let k = (n / 64).clamp(1, 4096).min(n);
            let mut by_degree: Vec<u32> = (0..n as u32).collect();
            by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
            let mut slots = vec![u32::MAX; n];
            for (slot, &v) in by_degree[..k].iter().enumerate() {
                slots[v as usize] = slot as u32;
            }
            slots
        }
    };
    let stamp_check = |hier: &mut Hierarchy, t: u64| match kernel {
        RrReplayKernel::Classic => {
            hier.load(SAMPLER_STAMP_BASE + t * 8);
        }
        RrReplayKernel::HubSplit => {
            hier.load(HUBMAP_BASE + t * 4);
            let s = hub_slot[t as usize];
            if s != u32::MAX {
                hier.load(HUBSTAMP_BASE + u64::from(s) * 8);
            } else {
                hier.load(SAMPLER_STAMP_BASE + t * 8);
            }
        }
    };
    // stable id -> layout vertex, for picking roots deterministically.
    let mut by_label = vec![0u32; n];
    for (v, &l) in labels.iter().enumerate() {
        by_label[l as usize] = v as u32;
    }
    let offsets = graph.offsets();
    let targets = graph.targets();
    let mut visited = vec![u32::MAX; n]; // epoch-tagged visited array
    for s in 0..num_sets {
        let set_seed = splitmix(seed ^ (s as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let root = by_label[(set_seed % n as u64) as usize];
        let epoch = s as u32;
        visited[root as usize] = epoch;
        let mut frontier = vec![root];
        let mut head = 0usize;
        while head < frontier.len() {
            let v = frontier[head];
            head += 1;
            hier.load(offsets_addr(v as u64));
            let lo = offsets[v as usize];
            let hi = offsets[v as usize + 1];
            // `i` doubles as the simulated address of the adjacency slot.
            #[allow(clippy::needless_range_loop)]
            for i in lo..hi {
                hier.load(targets_addr(i as u64));
                let t = targets[i];
                stamp_check(hier, t as u64);
                if visited[t as usize] != epoch
                    && edge_coin(set_seed, labels[v as usize], labels[t as usize]) < probability
                {
                    visited[t as usize] = epoch;
                    frontier.push(t);
                }
            }
        }
    }
}

/// Base address of the PageRank score arrays (8 bytes/entry).
const SCORES_BASE: u64 = 0x6000_0000_0000;

/// Replays the address stream of one pull-style PageRank iteration over
/// `graph` as laid out: per vertex one offsets load, per in-edge one
/// targets load and one score gather (`scores[neighbor]` — the
/// ordering-sensitive indirection), plus one store-side access to the
/// output slot.
///
/// This is the kernel the lightweight-reordering literature (\[2, 12\])
/// profiles; exposed so the prior-work baseline suite can be compared on
/// the same simulated hierarchy as the paper's two applications.
pub fn replay_pagerank_iteration(graph: &Csr, hier: &mut Hierarchy) {
    let n = graph.num_vertices() as u64;
    let offsets = graph.offsets();
    let targets = graph.targets();
    for v in 0..n {
        hier.load(offsets_addr(v));
        let lo = offsets[v as usize];
        let hi = offsets[v as usize + 1];
        // `i` doubles as the simulated address of the adjacency slot.
        #[allow(clippy::needless_range_loop)]
        for i in lo..hi {
            hier.load(targets_addr(i as u64));
            let t = targets[i] as u64;
            hier.load(SCORES_BASE + t * 8); // gather scores[neighbor]
        }
        hier.load(SCORES_BASE + (n + v) * 8); // write next[v] (second array)
    }
}

/// A uniform `[0, 1)` coin for the *undirected* edge `{a, b}` in set
/// `set_seed`, independent of traversal direction and layout.
fn edge_coin(set_seed: u64, a: u32, b: u32) -> f64 {
    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
    let h = splitmix(set_seed ^ (lo << 32 | hi));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64 finalizer used as the map hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use reorderlab_graph::{GraphBuilder, Permutation};

    fn ring(n: usize) -> Csr {
        let mut b = GraphBuilder::undirected(n);
        for i in 0..n as u32 {
            b = b.edge(i, (i + 1) % n as u32);
        }
        b.build().unwrap()
    }

    #[test]
    fn louvain_replay_load_count() {
        let g = ring(100);
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        replay_louvain_scan(&g, 4096, &mut h);
        // 1 offsets load per vertex + 3 loads per arc.
        assert_eq!(h.loads(), 100 + 3 * g.num_arcs() as u64);
    }

    #[test]
    fn local_ordering_beats_shuffled_on_community_loads() {
        // A large ring: natural layout accesses community[t] for t = v±1
        // (sequential), while a shuffled layout scatters them.
        let g = ring(20_000);
        let shuffled = {
            // Deterministic shuffle via an LCG-built permutation.
            let n = g.num_vertices();
            let mut order: Vec<u32> = (0..n as u32).collect();
            let mut x = 99u64;
            for i in (1..n).rev() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                order.swap(i, (x >> 33) as usize % (i + 1));
            }
            g.permuted(&Permutation::from_order(&order).unwrap()).unwrap()
        };
        let mut h_nat = Hierarchy::new(HierarchyConfig::tiny());
        replay_louvain_scan(&g, 4096, &mut h_nat);
        let mut h_shuf = Hierarchy::new(HierarchyConfig::tiny());
        replay_louvain_scan(&shuffled, 4096, &mut h_shuf);
        let nat = h_nat.report();
        let shuf = h_shuf.report();
        assert!(
            nat.avg_latency < shuf.avg_latency,
            "natural ring {} vs shuffled {}",
            nat.avg_latency,
            shuf.avg_latency
        );
    }

    #[test]
    fn rr_replay_touches_memory() {
        let g = ring(500);
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        let labels: Vec<u32> = (0..500).collect();
        replay_rr_sampling(&g, &labels, 0.3, 20, 7, &mut h);
        assert!(h.loads() > 20, "each sample must load at least the root's row");
    }

    #[test]
    fn rr_replay_deterministic() {
        let g = ring(300);
        let mut a = Hierarchy::new(HierarchyConfig::tiny());
        let mut b = Hierarchy::new(HierarchyConfig::tiny());
        let labels: Vec<u32> = (0..300).collect();
        replay_rr_sampling(&g, &labels, 0.25, 10, 3, &mut a);
        replay_rr_sampling(&g, &labels, 0.25, 10, 3, &mut b);
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn rr_replay_zero_probability_touches_roots_only() {
        let g = ring(100);
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        let labels: Vec<u32> = (0..100).collect();
        replay_rr_sampling(&g, &labels, 0.0, 5, 1, &mut h);
        // Per sample: 1 offsets load + 2 arcs * (target + visited) loads.
        assert_eq!(h.loads(), 5 * (1 + 2 * 2));
    }

    #[test]
    fn rr_replay_logical_traversal_is_layout_invariant() {
        // Under any relabeling, the replay must perform the *same logical
        // work* (roots and coins hash stable ids), so the load count is
        // identical across layouts — only the addresses (and thus cache
        // behaviour) change.
        let g = ring(500);
        let labels_nat: Vec<u32> = (0..500).collect();
        let mut h_nat = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_sampling(&g, &labels_nat, 0.4, 25, 9, &mut h_nat);

        let mut order: Vec<u32> = (0..500u32).collect();
        let mut x = 7u64;
        for i in (1..order.len()).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (x >> 33) as usize % (i + 1));
        }
        let pi = Permutation::from_order(&order).unwrap();
        let shuffled = g.permuted(&pi).unwrap();
        // Vertex v of the shuffled graph is original vertex order[v].
        let labels_shuf: Vec<u32> = pi.to_order();
        let mut h_shuf = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_sampling(&shuffled, &labels_shuf, 0.4, 25, 9, &mut h_shuf);

        assert_eq!(h_nat.loads(), h_shuf.loads(), "identical logical traversal");
    }

    #[test]
    fn edge_coin_symmetric_and_uniformish() {
        assert_eq!(edge_coin(5, 3, 9), edge_coin(5, 9, 3));
        let mean: f64 = (0..1000).map(|i| edge_coin(42, i, i + 1)).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "coin mean {mean} should be near 0.5");
    }

    #[test]
    fn pagerank_replay_load_count() {
        let g = ring(50);
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        replay_pagerank_iteration(&g, &mut h);
        // Per vertex: offsets + output store; per arc: target + gather.
        assert_eq!(h.loads(), 2 * 50 + 2 * g.num_arcs() as u64);
    }

    #[test]
    fn pagerank_replay_prefers_local_layout() {
        let g = ring(20_000);
        let shuffled = {
            let n = g.num_vertices();
            let mut order: Vec<u32> = (0..n as u32).collect();
            let mut x = 5u64;
            for i in (1..n).rev() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                order.swap(i, (x >> 33) as usize % (i + 1));
            }
            g.permuted(&Permutation::from_order(&order).unwrap()).unwrap()
        };
        let mut a = Hierarchy::new(HierarchyConfig::tiny());
        replay_pagerank_iteration(&g, &mut a);
        let mut b = Hierarchy::new(HierarchyConfig::tiny());
        replay_pagerank_iteration(&shuffled, &mut b);
        assert!(a.report().avg_latency < b.report().avg_latency);
    }

    #[test]
    fn empty_graph_replays() {
        let g = GraphBuilder::undirected(0).build().unwrap();
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_sampling(&g, &[], 0.5, 10, 0, &mut h);
        replay_louvain_scan(&g, 64, &mut h);
        replay_pagerank_iteration(&g, &mut h);
        replay_louvain_move(&g, LouvainReplayKernel::Packed, &mut h);
        replay_rr_kernel(&g, &[], 0.5, 10, 0, RrReplayKernel::HubSplit, &mut h);
        assert_eq!(h.loads(), 0);
    }

    #[test]
    fn louvain_move_kernel_load_counts() {
        let g = ring(100);
        let arcs = g.num_arcs() as u64;
        // HashMap: 3 loads per arc; flat/blocked: 4 (stamp + weights split);
        // packed: 3 (one 16-byte slot) — plus one offsets load per vertex.
        let per_arc = [
            (LouvainReplayKernel::HashMap { map_slots: 4096 }, 3),
            (LouvainReplayKernel::FlatScatter, 4),
            (LouvainReplayKernel::Blocked, 4),
            (LouvainReplayKernel::Packed, 3),
        ];
        for (kernel, k) in per_arc {
            let mut h = Hierarchy::new(HierarchyConfig::tiny());
            replay_louvain_move(&g, kernel, &mut h);
            assert_eq!(h.loads(), 100 + k * arcs, "{kernel:?}");
        }
    }

    #[test]
    fn louvain_scan_is_the_hashmap_stream() {
        let g = ring(200);
        let mut a = Hierarchy::new(HierarchyConfig::tiny());
        replay_louvain_scan(&g, 512, &mut a);
        let mut b = Hierarchy::new(HierarchyConfig::tiny());
        replay_louvain_move(&g, LouvainReplayKernel::HashMap { map_slots: 512 }, &mut b);
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn packed_layout_beats_split_arrays_on_scattered_access() {
        // On a shuffled layout the scatter indices are random; the packed
        // slot touches one line per community where the split arrays touch
        // two, so its hit ratio is strictly better and it issues fewer
        // loads. This is the fig10-style "why it wins" delta.
        let g = ring(20_000);
        let shuffled = {
            let n = g.num_vertices();
            let mut order: Vec<u32> = (0..n as u32).collect();
            let mut x = 3u64;
            for i in (1..n).rev() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                order.swap(i, (x >> 33) as usize % (i + 1));
            }
            g.permuted(&Permutation::from_order(&order).unwrap()).unwrap()
        };
        let mut flat = Hierarchy::new(HierarchyConfig::tiny());
        replay_louvain_move(&shuffled, LouvainReplayKernel::FlatScatter, &mut flat);
        let mut packed = Hierarchy::new(HierarchyConfig::tiny());
        replay_louvain_move(&shuffled, LouvainReplayKernel::Packed, &mut packed);
        let (rf, rp) = (flat.report(), packed.report());
        assert!(rp.loads < rf.loads);
        assert!(
            rp.avg_latency < rf.avg_latency,
            "packed {} vs flat {}",
            rp.avg_latency,
            rf.avg_latency
        );
    }

    #[test]
    fn blocked_replays_same_loads_in_blocked_order() {
        let g = ring(5_000);
        let mut flat = Hierarchy::new(HierarchyConfig::tiny());
        replay_louvain_move(&g, LouvainReplayKernel::FlatScatter, &mut flat);
        let mut blocked = Hierarchy::new(HierarchyConfig::tiny());
        replay_louvain_move(&g, LouvainReplayKernel::Blocked, &mut blocked);
        // Identical loads — only the issue order differs.
        assert_eq!(flat.loads(), blocked.loads());
    }

    #[test]
    fn rr_kernel_replay_deterministic_and_accounted() {
        let g = ring(400);
        let labels: Vec<u32> = (0..400).collect();
        // p = 0: only roots visit, so per sample the stream is exactly
        // 1 offsets load + 2 checks of (targets + visited stamps).
        let mut classic = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_kernel(&g, &labels, 0.0, 8, 5, RrReplayKernel::Classic, &mut classic);
        assert_eq!(classic.loads(), 8 * (1 + 2 * 2));
        // Hub split adds exactly one hub-map load per visited check.
        let mut hub = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_kernel(&g, &labels, 0.0, 8, 5, RrReplayKernel::HubSplit, &mut hub);
        assert_eq!(hub.loads(), 8 * (1 + 2 * 3));
        // Re-running replays the identical stream.
        let mut again = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_kernel(&g, &labels, 0.0, 8, 5, RrReplayKernel::HubSplit, &mut again);
        assert_eq!(hub.report(), again.report());
    }

    #[test]
    fn rr_kernel_traversal_matches_legacy_replay() {
        // The kernel replay performs the same logical traversal as
        // `replay_rr_sampling`: same roots, same coins, so the offsets and
        // targets portions of the stream are identical and only the
        // visited-stamp addresses differ. Load counts under Classic match
        // the legacy replay's exactly (1 visited access per check each).
        let g = ring(600);
        let labels: Vec<u32> = (0..600).collect();
        let mut legacy = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_sampling(&g, &labels, 0.35, 20, 11, &mut legacy);
        let mut classic = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_kernel(&g, &labels, 0.35, 20, 11, RrReplayKernel::Classic, &mut classic);
        assert_eq!(legacy.loads(), classic.loads());
    }

    #[test]
    fn hub_split_replay_records_layout_delta_on_skewed_graph() {
        // The referee's job is the *delta*: the split path issues exactly
        // one extra hub-map load per visited check on top of the classic
        // stream's `visits + 2·checks`, and both reports are deterministic,
        // so the snapshot can attribute any hit-ratio change to the layout.
        let spec = reorderlab_datasets::by_name("twitter_lists").expect("suite instance");
        let g = spec.generate();
        let labels: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let mut classic = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_kernel(&g, &labels, 0.25, 64, 7, RrReplayKernel::Classic, &mut classic);
        let mut hub = Hierarchy::new(HierarchyConfig::tiny());
        replay_rr_kernel(&g, &labels, 0.25, 64, 7, RrReplayKernel::HubSplit, &mut hub);
        let (rc, rh) = (classic.report(), hub.report());
        let checks = rh.loads - rc.loads;
        assert!(checks > 0, "the traversal must examine edges");
        // classic = visits + 2·checks, so visits falls out consistently.
        let visits = rc.loads - 2 * checks;
        assert!(visits > 0 && visits < checks, "visits {visits}, checks {checks}");
        // Per-level hit ratios are finite and differ between the layouts —
        // the quantity the BENCH snapshot records per kernel.
        use crate::hierarchy::MemLevel;
        for level in MemLevel::ALL {
            assert!(rc.hit_rate(level).is_finite() && rh.hit_rate(level).is_finite());
        }
        assert_ne!(rc.level_hits, rh.level_hits);
    }

    #[test]
    fn degenerate_suite_replays_stay_finite() {
        // Satellite regression: zero-load and near-zero-load replays (empty
        // and edgeless graphs) must report finite metrics, never NaN.
        for case in reorderlab_datasets::degenerate_suite() {
            let g = &case.graph;
            let labels: Vec<u32> = (0..g.num_vertices() as u32).collect();
            let mut h = Hierarchy::new(HierarchyConfig::tiny());
            for kernel in [
                LouvainReplayKernel::HashMap { map_slots: 64 },
                LouvainReplayKernel::FlatScatter,
                LouvainReplayKernel::Blocked,
                LouvainReplayKernel::Packed,
            ] {
                replay_louvain_move(g, kernel, &mut h);
            }
            replay_pagerank_iteration(g, &mut h);
            if g.num_vertices() > 0 {
                replay_rr_kernel(g, &labels, 0.5, 4, 1, RrReplayKernel::Classic, &mut h);
                replay_rr_kernel(g, &labels, 0.5, 4, 1, RrReplayKernel::HubSplit, &mut h);
            }
            let r = h.report();
            assert!(r.avg_latency.is_finite(), "{}: avg_latency", case.name);
            assert!(r.bound.iter().all(|b| b.is_finite()), "{}: bound", case.name);
            assert!(r.private_hit_rate().is_finite(), "{}", case.name);
            assert!(r.l1_hit_rate().is_finite(), "{}", case.name);
            let bound_sum: f64 = r.bound.iter().sum();
            assert!(bound_sum == 0.0 || (bound_sum - 1.0).abs() < 1e-9, "{}", case.name);
        }
    }
}
