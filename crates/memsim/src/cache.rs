//! A single set-associative cache with LRU replacement.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache-line size in bytes (must be a power of two).
    pub line_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// A config with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and
    /// `size_bytes` is a positive multiple of `line_bytes × associativity`.
    pub fn new(size_bytes: usize, line_bytes: usize, associativity: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(associativity >= 1, "need at least one way");
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(line_bytes * associativity),
            "size must be a positive multiple of line × ways"
        );
        CacheConfig { size_bytes, line_bytes, associativity }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.associativity)
    }
}

/// A set-associative LRU cache over 64-bit byte addresses.
///
/// # Examples
///
/// ```
/// use reorderlab_memsim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
/// assert!(!c.access(0));  // cold miss
/// assert!(c.access(32));  // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// `sets[s]` holds the resident line tags, most recently used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            config,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (num_sets - 1) as u64,
            sets: vec![Vec::with_capacity(config.associativity); num_sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns whether it hit. On miss the line is filled
    /// (evicting LRU if needed).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to MRU position.
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.config.associativity {
                set.pop();
            }
            set.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Empties the cache and zeroes the counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_checks() {
        let c = CacheConfig::new(32 * 1024, 64, 8);
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_line() {
        let _ = CacheConfig::new(1024, 48, 2);
    }

    #[test]
    fn same_line_hits() {
        let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
        assert!(!c.access(100));
        assert!(c.access(101));
        assert!(c.access(127));
        assert!(!c.access(128), "next line is cold");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, line 64, 1024 bytes -> 8 sets; addresses 0, 512, 1024 all
        // map to set 0 (line numbers 0, 8, 16).
        let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
        assert!(!c.access(0));
        assert!(!c.access(512));
        assert!(!c.access(1024)); // evicts line of addr 0 (LRU)
        assert!(!c.access(0), "LRU line must have been evicted");
        assert!(c.access(1024), "MRU line must survive");
    }

    #[test]
    fn lru_touch_refreshes() {
        let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
        c.access(0);
        c.access(512);
        c.access(0); // refresh 0 to MRU
        c.access(1024); // evicts 512 now
        assert!(c.access(0));
        assert!(!c.access(512));
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut c = Cache::new(CacheConfig::new(4096, 64, 4));
        let addrs: Vec<u64> = (0..64).map(|i| i * 64).collect(); // exactly capacity
        for &a in &addrs {
            c.access(a);
        }
        for &a in &addrs {
            assert!(c.access(a), "resident working set must hit at {a}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0), "reset cache must be cold");
    }
}
