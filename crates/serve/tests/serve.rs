//! End-to-end daemon tests over real TCP: response identity with local
//! execution, cache behavior, typed errors, audit trail, and shutdown.

use reorderlab_ops::{execute, FsResolver, OpError, OpReport, OpRequest, RequestEnvelope};
use reorderlab_serve::loadgen::exchange;
use reorderlab_serve::{
    prepare_compressed_corpus, run_loadgen, serve, Corpus, LoadgenConfig, Response, ServerConfig,
    ServerHandle,
};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

fn start_daemon(audit: Option<String>) -> ServerHandle {
    let mut corpus = Corpus::new();
    for name in ["euroroad", "rovira"] {
        corpus.insert(name, reorderlab_datasets::by_name(name).unwrap().generate());
    }
    let config = ServerConfig { audit_path: audit, ..ServerConfig::default() };
    serve(Arc::new(corpus), config).unwrap()
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let writer = TcpStream::connect(handle.addr()).unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) -> String {
        exchange(&mut self.writer, &mut self.reader, line).unwrap()
    }
}

/// The daemon's rendered report must be byte-identical to what the same
/// request produces locally through `execute`, for every thread bound.
#[test]
fn daemon_reports_match_local_execution_across_thread_bounds() {
    let mut handle = start_daemon(None);
    let mut client = Client::connect(&handle);
    let requests = [
        OpRequest::Stats { source: reorderlab_ops::GraphSource::Instance("euroroad".into()) },
        OpRequest::Reorder {
            source: reorderlab_ops::GraphSource::Instance("euroroad".into()),
            scheme: Some("rcm".into()),
            apply_perm: None,
            return_perm: false,
        },
        OpRequest::Measure {
            source: reorderlab_ops::GraphSource::Instance("euroroad".into()),
            schemes: vec!["natural".into(), "rcm".into(), "dbg".into()],
        },
    ];
    for threads in [1usize, 2, 7] {
        for request in &requests {
            let local = execute(request, &FsResolver).unwrap().report;
            let envelope = RequestEnvelope { request: request.clone(), threads: Some(threads) };
            let resp = client.send(&envelope.to_json().to_line());
            let Response::Ok(remote) = Response::parse(&resp).unwrap() else {
                panic!("expected ok response at threads={threads}: {resp}");
            };
            let (local_text, remote_text) = match (&local, remote.as_ref()) {
                (OpReport::Stats(a), OpReport::Stats(b)) => (a.render_text(), b.render_text()),
                (OpReport::Reorder(a), OpReport::Reorder(b)) => {
                    // Wall time is the one legitimately nondeterministic
                    // field; strip the trailing "(N.NNNs)" before diffing.
                    let strip = |s: String| match s.rfind(" (") {
                        Some(i) => s[..i].to_string(),
                        None => s,
                    };
                    (strip(a.summary_line()), strip(b.summary_line()))
                }
                (OpReport::Measure(a), OpReport::Measure(b)) => (a.render_text(), b.render_text()),
                other => panic!("report kind mismatch: {other:?}"),
            };
            assert_eq!(
                local_text, remote_text,
                "daemon output must be bit-identical to CLI output (threads={threads})"
            );
        }
    }
    handle.stop();
}

#[test]
fn repeated_requests_are_served_from_the_permutation_cache() {
    let mut handle = start_daemon(None);
    let mut client = Client::connect(&handle);
    let line = "{\"op\":\"reorder\",\"source\":{\"corpus\":\"euroroad\"},\"scheme\":\"dbg\"}";
    let first = client.send(line);
    assert!(first.contains("\"cache_hit\":false"), "{first}");
    // Same request again — and also from a second connection.
    let second = client.send(line);
    assert!(second.contains("\"cache_hit\":true"), "{second}");
    let mut other = Client::connect(&handle);
    let third = other.send(line);
    assert!(third.contains("\"cache_hit\":true"), "{third}");
    let stats = client.send("{\"control\":\"stats\"}");
    let v = reorderlab_trace::Json::parse(&stats).unwrap();
    let hits = v.get("cache_hits").and_then(reorderlab_trace::Json::as_f64).unwrap();
    assert!(hits >= 2.0, "{stats}");
    handle.stop();
}

/// A daemon whose corpus was prepared as `.csrz` containers serves
/// `compression` requests byte-identically to local execution on the
/// same generated graph.
#[test]
fn compressed_corpus_daemon_serves_compression_requests() {
    let dir = std::env::temp_dir().join(format!("serve_csrz_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    prepare_compressed_corpus(&dir, &["euroroad".into()]).unwrap();
    let corpus = Corpus::load_dir(&dir).unwrap();
    let mut handle = serve(Arc::new(corpus), ServerConfig::default()).unwrap();
    let mut client = Client::connect(&handle);
    let line = "{\"op\":\"compression\",\"source\":{\"corpus\":\"euroroad\"},\
                \"schemes\":[\"natural\",\"rcm\"]}";
    let resp = client.send(line);
    let Response::Ok(remote) = Response::parse(&resp).unwrap() else {
        panic!("expected ok response: {resp}");
    };
    let OpReport::Compression(remote) = remote.as_ref() else {
        panic!("expected a compression report: {resp}");
    };
    let local = execute(
        &OpRequest::Compression {
            source: reorderlab_ops::GraphSource::Instance("euroroad".into()),
            schemes: vec!["natural".into(), "rcm".into()],
        },
        &FsResolver,
    )
    .unwrap()
    .report;
    let OpReport::Compression(local) = &local else { panic!("wrong local report") };
    assert_eq!(
        local.render_text(),
        remote.render_text(),
        "compressed-corpus daemon output must match local execution"
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_typed_errors_with_exit_codes() {
    let mut handle = start_daemon(None);
    let mut client = Client::connect(&handle);
    let cases = [
        ("not json at all", 1),         // parse
        ("{\"op\":\"frobnicate\"}", 2), // usage
        ("{\"op\":\"reorder\",\"source\":{\"corpus\":\"euroroad\"},\"scheme\":\"bogus\"}", 2),
        ("{\"op\":\"stats\",\"source\":{\"corpus\":\"missing\"}}", 2),
        ("{\"op\":\"stats\",\"source\":{\"path\":\"/etc/hosts\"}}", 2), // no client paths
        ("{\"control\":\"dance\"}", 2),
    ];
    for (line, want_code) in cases {
        let resp = client.send(line);
        let Response::Err(e) = Response::parse(&resp).unwrap() else {
            panic!("expected error response for {line:?}: {resp}");
        };
        assert_eq!(e.exit_code(), want_code, "{line:?} -> {resp}");
    }
    handle.stop();
}

#[test]
fn audit_log_records_every_executed_request() {
    let audit = std::env::temp_dir()
        .join(format!("serve_audit_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let _ = std::fs::remove_file(&audit);
    let mut handle = start_daemon(Some(audit.clone()));
    let mut client = Client::connect(&handle);
    client.send("{\"op\":\"stats\",\"source\":{\"corpus\":\"euroroad\"}}");
    client.send("{\"op\":\"reorder\",\"source\":{\"corpus\":\"rovira\"},\"scheme\":\"rcm\"}");
    client.send("{\"op\":\"stats\",\"source\":{\"corpus\":\"missing\"}}");
    handle.stop();
    let text = std::fs::read_to_string(&audit).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    for line in &lines {
        let m = reorderlab_trace::Manifest::parse(line).unwrap();
        assert_eq!(m.command, "serve");
    }
    assert!(lines[0].contains("\"status\":\"ok\""), "{}", lines[0]);
    assert!(lines[1].contains("\"cache\":\"miss\""), "{}", lines[1]);
    assert!(lines[2].contains("\"status\":\"usage\""), "{}", lines[2]);
    let _ = std::fs::remove_file(&audit);
}

#[test]
fn shutdown_verb_stops_the_daemon() {
    let mut handle = start_daemon(None);
    let mut client = Client::connect(&handle);
    let resp = client.send("{\"control\":\"shutdown\"}");
    assert!(resp.contains("\"shutdown\":true"), "{resp}");
    handle.wait();
    assert!(handle.is_stopping());
    // The listener is gone: new exchanges fail.
    let err =
        TcpStream::connect(handle.addr()).map_err(|e| OpError::Io(e.to_string())).and_then(|s| {
            let mut w = s.try_clone().map_err(|e| OpError::Io(e.to_string()))?;
            let mut r = BufReader::new(s);
            exchange(&mut w, &mut r, "{\"control\":\"ping\"}")
        });
    assert!(err.is_err(), "daemon should not answer after shutdown");
}

#[test]
fn loadgen_replays_a_zipf_trace_and_sees_cache_hits() {
    let mut handle = start_daemon(None);
    let templates: Vec<String> = ["rcm", "dbg", "degree"]
        .iter()
        .map(|s| {
            format!(
                "{{\"op\":\"reorder\",\"source\":{{\"corpus\":\"euroroad\"}},\"scheme\":\"{s}\"}}"
            )
        })
        .collect();
    let config = LoadgenConfig { requests: 60, concurrency: 3, zipf_s: 1.1, seed: 42 };
    let report = run_loadgen(&handle.addr().to_string(), &templates, &config).unwrap();
    assert_eq!(report.total, 60);
    assert_eq!(report.ok, 60, "all replayed requests should succeed");
    assert!(report.cache_hits > 0, "repeat templates must hit the cache");
    assert!(report.cache_misses <= 3, "at most one miss per template");
    assert!(report.hit_rate() > 0.5, "zipf trace over 3 templates is cache-friendly");
    assert!(report.p50_ms <= report.p99_ms);
    assert!(report.throughput > 0.0);
    let text = report.render_text(templates.len(), &config);
    assert!(text.contains("hit rate"), "{text}");
    handle.stop();
}
