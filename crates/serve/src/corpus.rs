//! The daemon's preloaded graph corpus.
//!
//! A corpus is a directory of checksummed graph containers: flat binary
//! CSR files (`*.csrbin`, see `reorderlab_graph::read_binary_csr`) and
//! delta/varint compressed CSR files (`*.csrz`,
//! `reorderlab_graph::read_compressed_csr`), dispatched by extension. The
//! daemon loads every entry once at startup — parse cost is paid per
//! process, not per request — decodes compressed entries to flat form for
//! serving, and remembers each graph's content digest, which keys the
//! permutation cache. The digest is always computed over the decoded
//! graph, so a `.csrz` corpus entry shares cache entries with the same
//! graph served from `.csrbin` or generated on demand.

use reorderlab_datasets::by_name;
use reorderlab_graph::{
    csr_digest, read_binary_csr, read_compressed_csr, write_binary_csr, write_compressed_csr,
    CompressedCsr, Csr, BINARY_CSR_EXTENSION, COMPRESSED_CSR_EXTENSION,
};
use reorderlab_ops::{GraphSource, OpError, ResolveGraph, ResolvedGraph};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::sync::Arc;

/// One loaded corpus graph.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The graph, shared with every request that names it.
    pub graph: Arc<Csr>,
    /// FNV-1a content digest (`reorderlab_graph::csr_digest`): the
    /// graph half of every permutation-cache key.
    pub digest: u64,
}

/// A named set of preloaded graphs.
#[derive(Debug, Default)]
pub struct Corpus {
    entries: BTreeMap<String, CorpusEntry>,
}

impl Corpus {
    /// An empty corpus (requests can still name generator instances).
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Loads every `*.csrbin` and `*.csrz` file under `dir`; the entry
    /// name is the file stem. Compressed entries are checksum-validated
    /// and decoded to flat form at load time, so serving cost is identical
    /// across container formats.
    ///
    /// # Errors
    ///
    /// [`OpError::Io`] when the directory is unreadable,
    /// [`OpError::Parse`] when any entry fails its checksum or structural
    /// validation (a corrupt corpus never half-loads),
    /// [`OpError::Usage`] when two files (e.g. `g.csrbin` and `g.csrz`)
    /// claim the same entry name.
    pub fn load_dir(dir: &Path) -> Result<Corpus, OpError> {
        let mut corpus = Corpus::new();
        let listing = std::fs::read_dir(dir)
            .map_err(|e| OpError::Io(format!("cannot read corpus dir {}: {e}", dir.display())))?;
        // Sort so load order (and thus which duplicate is diagnosed) never
        // depends on directory enumeration order.
        let mut paths = Vec::new();
        for entry in listing {
            let entry =
                entry.map_err(|e| OpError::Io(format!("cannot list {}: {e}", dir.display())))?;
            paths.push(entry.path());
        }
        paths.sort();
        for path in paths {
            let is_compressed = path.extension().is_some_and(|x| x == COMPRESSED_CSR_EXTENSION);
            let is_flat = path.extension().is_some_and(|x| x == BINARY_CSR_EXTENSION);
            if !is_compressed && !is_flat {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if corpus.get(stem).is_some() {
                return Err(OpError::Usage(format!(
                    "duplicate corpus entry {stem:?}: {} collides with an earlier container",
                    path.display()
                )));
            }
            let file = File::open(&path)
                .map_err(|e| OpError::Io(format!("cannot open {}: {e}", path.display())))?;
            let mut reader = BufReader::new(file);
            let graph = if is_compressed {
                read_compressed_csr(&mut reader)
                    .map(|cz| cz.decode())
                    .map_err(|e| OpError::Parse(format!("corpus entry {}: {e}", path.display())))?
            } else {
                read_binary_csr(&mut reader)
                    .map_err(|e| OpError::Parse(format!("corpus entry {}: {e}", path.display())))?
            };
            corpus.insert(stem, graph);
        }
        Ok(corpus)
    }

    /// Adds a graph under `name`, computing its digest.
    pub fn insert(&mut self, name: &str, graph: Csr) {
        let digest = csr_digest(&graph);
        self.entries.insert(name.to_string(), CorpusEntry { graph: Arc::new(graph), digest });
    }

    /// Looks up an entry.
    pub fn get(&self, name: &str) -> Option<&CorpusEntry> {
        self.entries.get(name)
    }

    /// Entry names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Generates the named suite instances and writes them into `dir` as
/// binary CSR corpus entries, returning `(name, digest)` per entry.
///
/// # Errors
///
/// [`OpError::Usage`] for an unknown instance name, [`OpError::Io`] when
/// a file cannot be written.
pub fn prepare_corpus(dir: &Path, instances: &[String]) -> Result<Vec<(String, u64)>, OpError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| OpError::Io(format!("cannot create corpus dir {}: {e}", dir.display())))?;
    let mut out = Vec::with_capacity(instances.len());
    for name in instances {
        let spec = by_name(name).ok_or_else(|| {
            OpError::Usage(format!("unknown instance {name:?}; see `reorderlab list`"))
        })?;
        let g = spec.generate();
        let path = dir.join(format!("{name}.{BINARY_CSR_EXTENSION}"));
        let file = File::create(&path)
            .map_err(|e| OpError::Io(format!("cannot create {}: {e}", path.display())))?;
        let mut writer = BufWriter::new(file);
        write_binary_csr(&g, &mut writer)
            .map_err(|e| OpError::Io(format!("failed to write {}: {e}", path.display())))?;
        out.push((name.clone(), csr_digest(&g)));
    }
    Ok(out)
}

/// Like [`prepare_corpus`], but writes delta/varint compressed CSR
/// entries (`*.csrz`), returning `(name, digest)` per entry. Digests are
/// computed over the uncompressed graph, so a compressed corpus shares
/// permutation-cache keys with a flat one.
///
/// # Errors
///
/// [`OpError::Usage`] for an unknown instance name, [`OpError::Io`] when
/// a file cannot be written or a generated graph cannot be compressed.
pub fn prepare_compressed_corpus(
    dir: &Path,
    instances: &[String],
) -> Result<Vec<(String, u64)>, OpError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| OpError::Io(format!("cannot create corpus dir {}: {e}", dir.display())))?;
    let mut out = Vec::with_capacity(instances.len());
    for name in instances {
        let spec = by_name(name).ok_or_else(|| {
            OpError::Usage(format!("unknown instance {name:?}; see `reorderlab list`"))
        })?;
        let g = spec.generate();
        let cz = CompressedCsr::from_csr(&g)
            .map_err(|e| OpError::Io(format!("cannot compress {name}: {e}")))?;
        let path = dir.join(format!("{name}.{COMPRESSED_CSR_EXTENSION}"));
        let file = File::create(&path)
            .map_err(|e| OpError::Io(format!("cannot create {}: {e}", path.display())))?;
        let mut writer = BufWriter::new(file);
        write_compressed_csr(&cz, &mut writer)
            .map_err(|e| OpError::Io(format!("failed to write {}: {e}", path.display())))?;
        out.push((name.clone(), csr_digest(&g)));
    }
    Ok(out)
}

/// The daemon's resolver: corpus entries from memory, generator instances
/// on demand (with digests, so both are cacheable), client file paths
/// rejected — the daemon never reads caller-named files.
#[derive(Debug, Clone)]
pub struct CorpusResolver {
    corpus: Arc<Corpus>,
}

impl CorpusResolver {
    /// Wraps a loaded corpus.
    pub fn new(corpus: Arc<Corpus>) -> CorpusResolver {
        CorpusResolver { corpus }
    }
}

impl ResolveGraph for CorpusResolver {
    fn resolve(&self, source: &GraphSource) -> Result<ResolvedGraph, OpError> {
        match source {
            GraphSource::Corpus(name) => {
                let entry = self.corpus.get(name).ok_or_else(|| {
                    OpError::Usage(format!(
                        "unknown corpus entry {name:?}; loaded: {}",
                        self.corpus.names().join(", ")
                    ))
                })?;
                Ok(ResolvedGraph {
                    graph: Arc::clone(&entry.graph),
                    id: name.clone(),
                    digest: Some(entry.digest),
                })
            }
            GraphSource::Instance(name) => {
                let spec = by_name(name).ok_or_else(|| {
                    OpError::Usage(format!("unknown instance {name:?}; see `reorderlab list`"))
                })?;
                let g = spec.generate();
                let digest = csr_digest(&g);
                Ok(ResolvedGraph { graph: Arc::new(g), id: name.clone(), digest: Some(digest) })
            }
            GraphSource::Path(path) => Err(OpError::Usage(format!(
                "the daemon does not read client paths ({path:?}); use a corpus or instance source"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("serve_corpus_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn prepare_then_load_round_trips_digests() {
        let dir = tmp_dir("rt");
        let made = prepare_corpus(&dir, &["euroroad".into(), "rovira".into()]).unwrap();
        assert_eq!(made.len(), 2);
        let corpus = Corpus::load_dir(&dir).unwrap();
        assert_eq!(corpus.names(), vec!["euroroad", "rovira"]);
        for (name, digest) in &made {
            assert_eq!(corpus.get(name).unwrap().digest, *digest, "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compressed_corpus_round_trips_with_identical_digests() {
        let dir = tmp_dir("csrz");
        let flat = prepare_corpus(&dir, &["euroroad".into()]).unwrap();
        let zdir = tmp_dir("csrz2");
        let packed = prepare_compressed_corpus(&zdir, &["euroroad".into()]).unwrap();
        // Same graph, same digest — container format is invisible to the
        // permutation-cache key.
        assert_eq!(flat, packed);
        let corpus = Corpus::load_dir(&zdir).unwrap();
        assert_eq!(corpus.names(), vec!["euroroad"]);
        let entry = corpus.get("euroroad").unwrap();
        assert_eq!(entry.digest, packed[0].1);
        assert_eq!(entry.graph.num_vertices(), 1190);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&zdir);
    }

    #[test]
    fn duplicate_entry_names_are_rejected() {
        let dir = tmp_dir("dup");
        prepare_corpus(&dir, &["euroroad".into()]).unwrap();
        prepare_compressed_corpus(&dir, &["euroroad".into()]).unwrap();
        let err = Corpus::load_dir(&dir).unwrap_err();
        assert!(matches!(err, OpError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("duplicate"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_compressed_entries_fail_to_load_with_typed_errors() {
        let dir = tmp_dir("badz");
        prepare_compressed_corpus(&dir, &["euroroad".into()]).unwrap();
        let path = dir.join("euroroad.csrz");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = Corpus::load_dir(&dir).unwrap_err();
        assert!(matches!(err, OpError::Parse(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_fail_to_load_with_typed_errors() {
        let dir = tmp_dir("bad");
        prepare_corpus(&dir, &["euroroad".into()]).unwrap();
        let path = dir.join("euroroad.csrbin");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = Corpus::load_dir(&dir).unwrap_err();
        assert!(matches!(err, OpError::Parse(_)), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolver_rules() {
        let mut corpus = Corpus::new();
        corpus.insert("tiny", reorderlab_datasets::by_name("euroroad").unwrap().generate());
        let r = CorpusResolver::new(Arc::new(corpus));
        let hit = r.resolve(&GraphSource::Corpus("tiny".into())).unwrap();
        assert!(hit.digest.is_some());
        assert_eq!(hit.id, "tiny");
        let inst = r.resolve(&GraphSource::Instance("euroroad".into())).unwrap();
        // Same generated content → same digest: instance and corpus
        // requests share cache entries.
        assert_eq!(inst.digest, hit.digest);
        assert!(r.resolve(&GraphSource::Corpus("nope".into())).is_err());
        assert!(r.resolve(&GraphSource::Path("/etc/passwd".into())).is_err());
    }
}
