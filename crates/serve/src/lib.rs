//! Reorder-as-a-service: a long-lived daemon that executes the typed
//! operations API from `reorderlab-ops` over JSON Lines on TCP.
//!
//! The daemon preloads a [`Corpus`] of checksummed graph containers —
//! flat binary CSR (`.csrbin`) or delta/varint compressed CSR (`.csrz`),
//! dispatched by extension —
//! shards requests across bounded worker queues (full queues *shed* with
//! a typed overload response), coalesces identical in-flight requests,
//! and memoizes orderings in a [`PermCache`] keyed by `(graph digest,
//! canonical scheme spec)`. Every executed request can be audited via an
//! append-only manifest log. The [`loadgen`] module replays
//! zipf-distributed traces against a running daemon and reports latency
//! percentiles, throughput, and cache behavior.
//!
//! Start a daemon in-process:
//!
//! ```
//! use std::sync::Arc;
//! use reorderlab_serve::{serve, Corpus, ServerConfig};
//!
//! let mut corpus = Corpus::new();
//! corpus.insert("tiny", reorderlab_datasets::by_name("euroroad").unwrap().generate());
//! let mut handle = serve(Arc::new(corpus), ServerConfig::default()).unwrap();
//! assert!(handle.addr().port() != 0);
//! handle.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod corpus;
pub mod loadgen;
mod proto;
mod server;

pub use cache::{CachingPerms, PermCache};
pub use corpus::{prepare_compressed_corpus, prepare_corpus, Corpus, CorpusEntry, CorpusResolver};
pub use loadgen::{run_loadgen, zipf_trace, LoadReport, LoadgenConfig};
pub use proto::{
    error_response, ok_response, parse_control, shed_response, Control, Response, STATUS_SHED,
};
pub use server::{serve, Engine, ServeStats, ServerConfig, ServerHandle, SubmitResult};
