//! The wire protocol: JSON Lines over TCP.
//!
//! Each request is one line — an [`OpRequest`] object (optionally with
//! `"threads"`), or a control verb `{"control": "ping" | "stats" |
//! "shutdown"}`. Each response is one line:
//!
//! ```text
//! {"status":"ok","report":{...}}          operation succeeded
//! {"status":"usage","error":"..."}        OpError taxonomy keyword
//! {"status":"shed","error":"..."}         bounded queue was full
//! ```
//!
//! Error statuses reuse [`OpError::status`], so a client maps daemon
//! failures onto the same exit codes as local ones via
//! [`OpError::from_wire`].

use reorderlab_ops::{OpError, OpReport};
use reorderlab_trace::Json;

/// Status keyword for a shed (overload) response. Maps onto
/// [`OpError::Io`] client-side: a runtime failure, not a caller mistake.
pub const STATUS_SHED: &str = "shed";

/// A control verb, parsed from `{"control": ...}` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Liveness probe.
    Ping,
    /// Server counters snapshot.
    Stats,
    /// Orderly shutdown.
    Shutdown,
}

/// Recognizes a control line; `None` means the line is an operation
/// request.
///
/// # Errors
///
/// `Some(Err)` for an unknown control verb.
pub fn parse_control(v: &Json) -> Option<Result<Control, OpError>> {
    let verb = v.get("control")?.as_str();
    Some(match verb {
        Some("ping") => Ok(Control::Ping),
        Some("stats") => Ok(Control::Stats),
        Some("shutdown") => Ok(Control::Shutdown),
        _ => Err(OpError::Usage("unknown control verb; try ping|stats|shutdown".into())),
    })
}

/// Serializes a success response.
pub fn ok_response(report: &OpReport) -> String {
    Json::Obj(vec![("status".into(), Json::Str("ok".into())), ("report".into(), report.to_json())])
        .to_line()
}

/// Serializes an error response with the taxonomy's status keyword.
pub fn error_response(e: &OpError) -> String {
    Json::Obj(vec![
        ("status".into(), Json::Str(e.status().into())),
        ("error".into(), Json::Str(e.to_string())),
    ])
    .to_line()
}

/// Serializes the overload response.
pub fn shed_response() -> String {
    Json::Obj(vec![
        ("status".into(), Json::Str(STATUS_SHED.into())),
        ("error".into(), Json::Str("server overloaded; request shed, retry later".into())),
    ])
    .to_line()
}

/// A decoded response.
#[derive(Debug)]
pub enum Response {
    /// The operation succeeded.
    Ok(Box<OpReport>),
    /// A control acknowledgment or counters object (status `"ok"`, no
    /// report).
    Ack(Json),
    /// The daemon reported a failure; decoded back into the taxonomy.
    Err(OpError),
}

impl Response {
    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// [`OpError::Parse`] when the line is not a valid response document.
    pub fn parse(line: &str) -> Result<Response, OpError> {
        let v = Json::parse(line).map_err(|e| OpError::Parse(format!("invalid response: {e}")))?;
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| OpError::Parse("response missing \"status\"".into()))?;
        if status == "ok" {
            return match v.get("report") {
                Some(r) => Ok(Response::Ok(Box::new(OpReport::from_json(r)?))),
                None => Ok(Response::Ack(v.clone())),
            };
        }
        let message = v.get("error").and_then(Json::as_str).unwrap_or("unknown daemon error");
        Ok(Response::Err(OpError::from_wire(status, message)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_lines_parse() {
        let parse = |t: &str| parse_control(&Json::parse(t).unwrap());
        assert_eq!(parse("{\"control\":\"ping\"}"), Some(Ok(Control::Ping)));
        assert_eq!(parse("{\"control\":\"stats\"}"), Some(Ok(Control::Stats)));
        assert_eq!(parse("{\"control\":\"shutdown\"}"), Some(Ok(Control::Shutdown)));
        assert!(matches!(parse("{\"control\":\"frob\"}"), Some(Err(_))));
        assert!(parse("{\"op\":\"stats\"}").is_none());
    }

    #[test]
    fn error_responses_round_trip_exit_codes() {
        for e in [
            OpError::Usage("bad".into()),
            OpError::Io("gone".into()),
            OpError::Parse("mangled".into()),
            OpError::Malformed("broken".into()),
        ] {
            let line = error_response(&e);
            let Response::Err(back) = Response::parse(&line).unwrap() else {
                panic!("expected error response: {line}");
            };
            assert_eq!(back.exit_code(), e.exit_code(), "{line}");
            assert_eq!(back.to_string(), e.to_string());
        }
    }

    #[test]
    fn shed_is_a_runtime_failure_client_side() {
        let Response::Err(e) = Response::parse(&shed_response()).unwrap() else {
            panic!("expected error");
        };
        assert_eq!(e.exit_code(), 1);
        assert!(e.to_string().contains("overloaded"));
    }
}
