//! The load generator: replays a zipf-distributed request trace against a
//! running daemon and reports latency, throughput, and cache behavior.
//!
//! Real reorder-service traffic is skewed — a few popular (graph, scheme)
//! pairs dominate — so the trace draws request templates from a zipf
//! distribution: template rank `i` (0-based) is drawn with probability
//! proportional to `1 / (i + 1)^s`. With `s = 0` the trace is uniform.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_ops::OpError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Trace shape and replay knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests to send across all client threads.
    pub requests: usize,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Zipf exponent over template ranks (0 = uniform).
    pub zipf_s: f64,
    /// Trace RNG seed.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig { requests: 200, concurrency: 4, zipf_s: 1.1, seed: 42 }
    }
}

/// Draws `total` template indices from a zipf distribution over
/// `templates` ranks (template 0 is the most popular).
pub fn zipf_trace(templates: usize, total: usize, s: f64, seed: u64) -> Vec<usize> {
    if templates == 0 || total == 0 {
        return Vec::new();
    }
    // Cumulative distribution by CDF inversion; ranks are 1-based inside
    // the weight formula.
    let mut cdf = Vec::with_capacity(templates);
    let mut acc = 0.0f64;
    for rank in 0..templates {
        acc += 1.0 / ((rank + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let norm = acc;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(total);
    for _ in 0..total {
        let u: f64 = rng.gen::<f64>() * norm;
        let idx = cdf.partition_point(|&c| c < u).min(templates - 1);
        trace.push(idx);
    }
    trace
}

/// What one replay run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent.
    pub total: usize,
    /// `status:"ok"` responses.
    pub ok: usize,
    /// Error responses (any non-ok, non-shed status).
    pub errors: usize,
    /// `status:"shed"` responses.
    pub shed: usize,
    /// Wall-clock seconds for the whole replay.
    pub wall_s: f64,
    /// Requests per second (completed / wall).
    pub throughput: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Daemon permutation-cache hits at the end of the run.
    pub cache_hits: u64,
    /// Daemon permutation-cache misses at the end of the run.
    pub cache_misses: u64,
    /// Requests coalesced onto identical in-flight computations.
    pub coalesced: u64,
}

impl LoadReport {
    /// Permutation-cache hit rate over the run, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// The human-readable replay summary (what lands in
    /// `results/serve_loadgen.txt`).
    pub fn render_text(&self, templates: usize, config: &LoadgenConfig) -> String {
        let mut out = String::new();
        out.push_str("reorderlab-serve loadgen\n");
        out.push_str(&format!(
            "trace: {} requests over {} templates, zipf s={}, seed={}, {} client thread(s)\n",
            self.total, templates, config.zipf_s, config.seed, config.concurrency
        ));
        out.push_str(&format!(
            "outcome: {} ok, {} errors, {} shed in {:.3}s\n",
            self.ok, self.errors, self.shed, self.wall_s
        ));
        out.push_str(&format!("throughput: {:.1} req/s\n", self.throughput));
        out.push_str(&format!("latency: p50 {:.2} ms, p99 {:.2} ms\n", self.p50_ms, self.p99_ms));
        out.push_str(&format!(
            "perm cache: {} hits, {} misses, hit rate {:.1}%, {} coalesced",
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0,
            self.coalesced
        ));
        out
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted_ms.len() - 1) as f64;
    let idx = rank.round().max(0.0);
    let idx = usize::try_from(idx as u64).unwrap_or(0).min(sorted_ms.len() - 1);
    sorted_ms[idx]
}

/// One blocking request/response exchange on an open connection.
///
/// # Errors
///
/// [`OpError::Io`] when the connection drops mid-exchange.
pub fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, OpError> {
    writeln!(writer, "{line}").map_err(|e| OpError::Io(format!("send failed: {e}")))?;
    writer.flush().map_err(|e| OpError::Io(format!("send failed: {e}")))?;
    let mut resp = String::new();
    let n = reader.read_line(&mut resp).map_err(|e| OpError::Io(format!("receive failed: {e}")))?;
    if n == 0 {
        return Err(OpError::Io("daemon closed the connection".into()));
    }
    Ok(resp.trim_end().to_string())
}

fn connect(addr: &str) -> Result<(TcpStream, BufReader<TcpStream>), OpError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| OpError::Io(format!("cannot connect to {addr}: {e}")))?;
    // One small JSON line per exchange: without TCP_NODELAY the
    // Nagle/delayed-ACK interaction puts a ~40-90ms floor under every
    // request.
    let _ = stream.set_nodelay(true);
    let reading =
        stream.try_clone().map_err(|e| OpError::Io(format!("cannot clone connection: {e}")))?;
    Ok((stream, BufReader::new(reading)))
}

fn status_of(resp: &str) -> &'static str {
    // Responses are single-line JSON objects with "status" first; a
    // substring probe avoids re-parsing on the hot path.
    if resp.contains("\"status\":\"ok\"") {
        "ok"
    } else if resp.contains("\"status\":\"shed\"") {
        "shed"
    } else {
        "error"
    }
}

/// Replays a zipf trace over `templates` (request lines) against the
/// daemon at `addr` and gathers the report.
///
/// # Errors
///
/// [`OpError::Usage`] when no templates are given, [`OpError::Io`] when
/// the daemon is unreachable or the final stats probe fails.
pub fn run_loadgen(
    addr: &str,
    templates: &[String],
    config: &LoadgenConfig,
) -> Result<LoadReport, OpError> {
    if templates.is_empty() {
        return Err(OpError::Usage("loadgen needs at least one request template".into()));
    }
    let trace = Arc::new(zipf_trace(templates.len(), config.requests, config.zipf_s, config.seed));
    let cursor = Arc::new(AtomicUsize::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(config.requests)));
    let templates_arc: Arc<Vec<String>> = Arc::new(templates.to_vec());

    let t0 = Instant::now();
    let mut joins = Vec::with_capacity(config.concurrency.max(1));
    for worker in 0..config.concurrency.max(1) {
        let addr = addr.to_string();
        let trace = Arc::clone(&trace);
        let cursor = Arc::clone(&cursor);
        let ok = Arc::clone(&ok);
        let errors = Arc::clone(&errors);
        let shed = Arc::clone(&shed);
        let latencies = Arc::clone(&latencies);
        let templates = Arc::clone(&templates_arc);
        let handle = std::thread::Builder::new()
            .name(format!("loadgen-{worker}"))
            .spawn(move || -> Result<(), OpError> {
                let (mut writer, mut reader) = connect(&addr)?;
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= trace.len() {
                        break;
                    }
                    let line = &templates[trace[i]];
                    let rt0 = Instant::now();
                    let resp = exchange(&mut writer, &mut reader, line)?;
                    local.push(rt0.elapsed().as_secs_f64() * 1000.0);
                    match status_of(&resp) {
                        "ok" => ok.fetch_add(1, Ordering::Relaxed),
                        "shed" => shed.fetch_add(1, Ordering::Relaxed),
                        _ => errors.fetch_add(1, Ordering::Relaxed),
                    };
                }
                latencies.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).extend(local);
                Ok(())
            })
            .map_err(|e| OpError::Io(format!("cannot spawn loadgen thread: {e}")))?;
        joins.push(handle);
    }
    for handle in joins {
        match handle.join() {
            Ok(result) => result?,
            Err(_) => return Err(OpError::Io("loadgen thread panicked".into())),
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // Final counters from the daemon itself.
    let (mut writer, mut reader) = connect(addr)?;
    let stats_line = exchange(&mut writer, &mut reader, "{\"control\":\"stats\"}")?;
    let stats = reorderlab_trace::Json::parse(&stats_line)
        .map_err(|e| OpError::Parse(format!("invalid stats response: {e}")))?;
    let counter = |key: &str| -> u64 {
        stats.get(key).and_then(reorderlab_trace::Json::as_f64).map_or(0, |f| {
            if f >= 0.0 {
                f as u64
            } else {
                0
            }
        })
    };

    let mut sorted = latencies.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let completed = sorted.len();
    Ok(LoadReport {
        total: completed,
        ok: usize::try_from(ok.load(Ordering::Relaxed)).unwrap_or(usize::MAX),
        errors: usize::try_from(errors.load(Ordering::Relaxed)).unwrap_or(usize::MAX),
        shed: usize::try_from(shed.load(Ordering::Relaxed)).unwrap_or(usize::MAX),
        wall_s,
        throughput: if wall_s > 0.0 { completed as f64 / wall_s } else { 0.0 },
        p50_ms: percentile(&sorted, 50.0),
        p99_ms: percentile(&sorted, 99.0),
        cache_hits: counter("cache_hits"),
        cache_misses: counter("cache_misses"),
        coalesced: counter("coalesced"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_trace_is_deterministic_and_skewed() {
        let a = zipf_trace(8, 1000, 1.1, 42);
        let b = zipf_trace(8, 1000, 1.1, 42);
        assert_eq!(a, b);
        let mut counts = vec![0usize; 8];
        for &i in &a {
            counts[i] += 1;
        }
        assert!(counts[0] > counts[7] * 2, "rank 0 should dominate rank 7: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let trace = zipf_trace(4, 4000, 0.0, 7);
        let mut counts = vec![0usize; 4];
        for &i in &trace {
            counts[i] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "roughly uniform expected: {counts:?}");
        }
    }

    #[test]
    fn percentiles_pick_expected_ranks() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&sorted, 50.0) - 50.0).abs() <= 1.0);
        assert!((percentile(&sorted, 99.0) - 99.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
