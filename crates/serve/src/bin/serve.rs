//! `reorderlab-serve` — the daemon front-end.
//!
//! ```text
//! reorderlab-serve prepare --dir DIR --instances NAME[,NAME...] [--compressed]
//! reorderlab-serve run --corpus DIR [--addr HOST:PORT] [--shards N]
//!                      [--queue-cap N] [--cache-cap N] [--audit FILE]
//! reorderlab-serve request --addr HOST:PORT --json LINE [--render]
//! ```

#![forbid(unsafe_code)]

use reorderlab_ops::args::{flag_value, has_flag};
use reorderlab_ops::OpError;
use reorderlab_serve::loadgen::exchange;
use reorderlab_serve::{
    prepare_compressed_corpus, prepare_corpus, serve, Corpus, Response, ServerConfig,
};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: reorderlab-serve <prepare|run|request> [options]
  prepare --dir DIR --instances NAME[,NAME...] [--compressed]
                                                 write a corpus (.csrbin, or
                                                 .csrz with --compressed)
  run --corpus DIR [--addr HOST:PORT] [--shards N] [--queue-cap N]
      [--cache-cap N] [--audit FILE]             serve the corpus
  request --addr HOST:PORT --json LINE [--render] send one request line";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("reorderlab-serve: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), OpError> {
    match args.first().map(String::as_str) {
        Some("prepare") => cmd_prepare(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        _ => Err(OpError::Usage(USAGE.into())),
    }
}

fn cmd_prepare(args: &[String]) -> Result<(), OpError> {
    let dir = flag_value(args, "--dir")
        .ok_or_else(|| OpError::Usage("prepare needs --dir DIR".into()))?;
    let instances: Vec<String> = flag_value(args, "--instances")
        .map(|s| s.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect())
        .ok_or_else(|| OpError::Usage("prepare needs --instances NAME[,NAME...]".into()))?;
    if instances.is_empty() {
        return Err(OpError::Usage("prepare needs at least one instance name".into()));
    }
    let made = if has_flag(args, "--compressed") {
        prepare_compressed_corpus(Path::new(&dir), &instances)?
    } else {
        prepare_corpus(Path::new(&dir), &instances)?
    };
    for (name, digest) in made {
        println!("{name}: digest {digest:#018x}");
    }
    Ok(())
}

fn parse_num(args: &[String], flag: &str, default: usize) -> Result<usize, OpError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| OpError::Usage(format!("{flag} needs a non-negative integer, got {v:?}"))),
    }
}

fn cmd_run(args: &[String]) -> Result<(), OpError> {
    let dir = flag_value(args, "--corpus")
        .ok_or_else(|| OpError::Usage("run needs --corpus DIR".into()))?;
    let corpus = Corpus::load_dir(Path::new(&dir))?;
    let config = ServerConfig {
        addr: flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        shards: parse_num(args, "--shards", 4)?,
        queue_cap: parse_num(args, "--queue-cap", 32)?,
        cache_cap: parse_num(args, "--cache-cap", 64)?,
        audit_path: flag_value(args, "--audit"),
    };
    let names = corpus.names().join(", ");
    let mut handle = serve(Arc::new(corpus), config)?;
    println!("listening on {}", handle.addr());
    println!("corpus: {names}");
    std::io::stdout().flush().map_err(|e| OpError::Io(format!("cannot flush stdout: {e}")))?;
    handle.wait();
    Ok(())
}

fn cmd_request(args: &[String]) -> Result<(), OpError> {
    let addr = flag_value(args, "--addr")
        .ok_or_else(|| OpError::Usage("request needs --addr HOST:PORT".into()))?;
    let line = flag_value(args, "--json")
        .ok_or_else(|| OpError::Usage("request needs --json LINE".into()))?;
    let stream = TcpStream::connect(&addr)
        .map_err(|e| OpError::Io(format!("cannot connect to {addr}: {e}")))?;
    let _ = stream.set_nodelay(true);
    let reading =
        stream.try_clone().map_err(|e| OpError::Io(format!("cannot clone connection: {e}")))?;
    let mut writer = stream;
    let mut reader = BufReader::new(reading);
    let resp = exchange(&mut writer, &mut reader, &line)?;
    if !has_flag(args, "--render") {
        println!("{resp}");
        return Ok(());
    }
    // Render the report exactly as the CLI would, so daemon output can be
    // diffed against `reorderlab` output byte-for-byte.
    match Response::parse(&resp)? {
        Response::Ok(report) => {
            use reorderlab_ops::OpReport;
            match *report {
                OpReport::Stats(s) => println!("{}", s.render_text()),
                OpReport::Reorder(r) => println!("{}", r.summary_line()),
                OpReport::Measure(m) => println!("{}", m.render_text()),
                OpReport::Compression(c) => println!("{}", c.render_text()),
                OpReport::Memsim(m) => println!("{}", m.render_text()),
                OpReport::Validate(v) => {
                    for file in &v.files {
                        println!("{}", file.verdict_line());
                    }
                    println!("{}", v.overall()?);
                }
            }
            Ok(())
        }
        Response::Ack(v) => {
            println!("{}", v.to_line());
            Ok(())
        }
        Response::Err(e) => Err(e),
    }
}
