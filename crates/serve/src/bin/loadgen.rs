//! `reorderlab-loadgen` — replay a zipf trace against a daemon.
//!
//! ```text
//! reorderlab-loadgen --addr HOST:PORT --names A[,B...] [options]
//! reorderlab-loadgen --self-host A[,B...] [options]
//! ```
//!
//! `--self-host` starts an in-process daemon over the named generator
//! instances, so a full benchmark needs no prior setup. Templates are
//! reorder requests for every (graph, scheme) pair — ranked so the zipf
//! head concentrates on the first pairs — plus one stats request per
//! graph at the tail.

#![forbid(unsafe_code)]

use reorderlab_ops::args::flag_value;
use reorderlab_ops::OpError;
use reorderlab_serve::{run_loadgen, serve, Corpus, LoadgenConfig, ServerConfig};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str =
    "usage: reorderlab-loadgen (--addr HOST:PORT --names A[,B...] | --self-host A[,B...])
  [--schemes S[,S...]] [--requests N] [--concurrency N] [--zipf S]
  [--seed N] [--out FILE]";

const DEFAULT_SCHEMES: &str = "rcm,dbg,degree,hubsort";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("reorderlab-loadgen: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn csv(s: &str) -> Vec<String> {
    s.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect()
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, OpError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => {
            v.parse::<T>().map_err(|_| OpError::Usage(format!("{flag}: cannot parse {v:?}")))
        }
    }
}

fn templates_for(names: &[String], schemes: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for name in names {
        for scheme in schemes {
            out.push(format!(
                "{{\"op\":\"reorder\",\"source\":{{\"corpus\":{name:?}}},\"scheme\":{scheme:?}}}"
            ));
        }
    }
    for name in names {
        out.push(format!("{{\"op\":\"stats\",\"source\":{{\"corpus\":{name:?}}}}}"));
    }
    out
}

fn run(args: &[String]) -> Result<(), OpError> {
    let self_host = flag_value(args, "--self-host");
    let (addr, names, _handle) = match (&self_host, flag_value(args, "--addr")) {
        (Some(list), _) => {
            let names = csv(list);
            let mut corpus = Corpus::new();
            for name in &names {
                let spec = reorderlab_datasets::by_name(name).ok_or_else(|| {
                    OpError::Usage(format!("unknown instance {name:?}; see `reorderlab list`"))
                })?;
                corpus.insert(name, spec.generate());
            }
            let handle = serve(Arc::new(corpus), ServerConfig::default())?;
            (handle.addr().to_string(), names, Some(handle))
        }
        (None, Some(addr)) => {
            let names = csv(&flag_value(args, "--names").ok_or_else(|| {
                OpError::Usage(format!("--addr needs --names A[,B...]\n{USAGE}"))
            })?);
            (addr, names, None)
        }
        (None, None) => return Err(OpError::Usage(USAGE.into())),
    };
    if names.is_empty() {
        return Err(OpError::Usage("no graph names given".into()));
    }
    let schemes = csv(&flag_value(args, "--schemes").unwrap_or_else(|| DEFAULT_SCHEMES.into()));
    let templates = templates_for(&names, &schemes);
    let config = LoadgenConfig {
        requests: parse_num(args, "--requests", 200usize)?,
        concurrency: parse_num(args, "--concurrency", 4usize)?,
        zipf_s: parse_num(args, "--zipf", 1.1f64)?,
        seed: parse_num(args, "--seed", 42u64)?,
    };
    let report = run_loadgen(&addr, &templates, &config)?;
    let text = report.render_text(templates.len(), &config);
    println!("{text}");
    if let Some(path) = flag_value(args, "--out") {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| OpError::Io(format!("cannot create {}: {e}", parent.display())))?;
            }
        }
        let mut file = std::fs::File::create(&path)
            .map_err(|e| OpError::Io(format!("cannot create {path}: {e}")))?;
        writeln!(file, "{text}")
            .map_err(|e| OpError::Io(format!("failed to write {path}: {e}")))?;
    }
    Ok(())
}
