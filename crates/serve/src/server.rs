//! The sharded execution engine and its TCP front door.
//!
//! Requests are routed by FNV hash of their canonical wire form onto one
//! of `shards` single-worker queues, so identical requests serialize onto
//! the same worker and the permutation cache sees them back-to-back. Each
//! queue is bounded: when it is full the request is *shed* with a typed
//! overload response instead of queueing without limit. Identical
//! requests already in flight are *coalesced* — late arrivals wait on the
//! first computation's cell instead of enqueuing a duplicate job.

use crate::cache::{CachingPerms, PermCache};
use crate::corpus::{Corpus, CorpusResolver};
use crate::proto::{error_response, ok_response, parse_control, shed_response, Control};
use reorderlab_ops::{
    execute_with, parse_scheme, run_with_threads, scheme_seed, OpError, OpOutcome, OpReport,
    OpRequest, RequestEnvelope,
};
use reorderlab_trace::{Json, Manifest};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Recover from a poisoned lock; every critical section leaves the data
/// consistent, so a panicking holder does not invalidate it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of worker shards (each runs one worker thread).
    pub shards: usize,
    /// Bounded queue depth per shard; a full queue sheds.
    pub queue_cap: usize,
    /// Permutation-cache capacity (entries).
    pub cache_cap: usize,
    /// Append one audit manifest per executed request to this JSONL file.
    pub audit_path: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            queue_cap: 32,
            cache_cap: 64,
            audit_path: None,
        }
    }
}

/// Monotonic request counters, exposed via `{"control":"stats"}`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Lines received (operations + control verbs).
    pub requests: AtomicU64,
    /// Operations that returned `status:"ok"`.
    pub ok: AtomicU64,
    /// Operations that returned a taxonomy error.
    pub errors: AtomicU64,
    /// Requests shed because a shard queue was full.
    pub shed: AtomicU64,
    /// Requests that attached to an identical in-flight computation.
    pub coalesced: AtomicU64,
}

/// One in-flight computation: waiters block on the condvar until the
/// worker (or the shed path) publishes the response line.
#[derive(Debug, Default)]
struct JobCell {
    slot: Mutex<Option<String>>,
    ready: Condvar,
}

impl JobCell {
    fn publish(&self, response: String) {
        *lock(&self.slot) = Some(response);
        self.ready.notify_all();
    }

    fn wait(&self) -> String {
        let mut guard = lock(&self.slot);
        loop {
            if let Some(resp) = guard.as_ref() {
                return resp.clone();
            }
            guard = self.ready.wait(guard).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

struct Job {
    envelope: RequestEnvelope,
    key: String,
    cell: Arc<JobCell>,
}

struct Shared {
    corpus: Arc<Corpus>,
    cache: Arc<PermCache>,
    stats: ServeStats,
    pending: Mutex<BTreeMap<String, Arc<JobCell>>>,
    audit: Option<AuditLog>,
}

struct AuditLog {
    path: String,
    guard: Mutex<()>,
}

/// What `enqueue_line` produced.
enum Enqueued {
    /// The response is already known (control verb, parse error, shed).
    Ready(String),
    /// The request is queued (or coalesced); wait on this cell.
    Wait(Arc<JobCell>),
    /// A shutdown verb: the response to send before stopping.
    Shutdown(String),
}

/// The engine's answer to one request line.
pub enum SubmitResult {
    /// A response line to write back.
    Response(String),
    /// A shutdown acknowledgment; the server should stop after sending it.
    Shutdown(String),
}

/// The sharded, caching, coalescing executor behind the TCP listener.
pub struct Engine {
    shared: Arc<Shared>,
    senders: Mutex<Vec<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    // Receivers of worker-less test engines, kept alive so queues fill
    // (and shed) instead of reporting disconnection.
    #[cfg(test)]
    _parked: Mutex<Vec<Receiver<Job>>>,
}

impl Engine {
    /// Builds the engine and starts its worker threads.
    pub fn new(corpus: Arc<Corpus>, config: &ServerConfig) -> Engine {
        Engine::build(corpus, config, true)
    }

    /// Builds the engine without workers, for deterministic queue tests.
    #[cfg(test)]
    fn new_unstarted(corpus: Arc<Corpus>, config: &ServerConfig) -> Engine {
        Engine::build(corpus, config, false)
    }

    fn build(corpus: Arc<Corpus>, config: &ServerConfig, start_workers: bool) -> Engine {
        let shared = Arc::new(Shared {
            corpus,
            cache: Arc::new(PermCache::new(config.cache_cap)),
            stats: ServeStats::default(),
            pending: Mutex::new(BTreeMap::new()),
            audit: config.audit_path.clone().map(|path| AuditLog { path, guard: Mutex::new(()) }),
        });
        let shards = config.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut parked: Vec<Receiver<Job>> = Vec::new();
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<Job>(config.queue_cap.max(1));
            senders.push(tx);
            if start_workers {
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("serve-worker-{shard}"))
                    .spawn(move || worker_loop(&shared, &rx));
                match handle {
                    Ok(h) => workers.push(h),
                    Err(e) => eprintln!("serve: cannot spawn worker {shard}: {e}"),
                }
            } else {
                parked.push(rx);
            }
        }
        #[cfg(not(test))]
        drop(parked);
        Engine {
            shared,
            senders: Mutex::new(senders),
            workers: Mutex::new(workers),
            #[cfg(test)]
            _parked: Mutex::new(parked),
        }
    }

    /// The shared permutation cache (counters are read by loadgen).
    pub fn cache(&self) -> Arc<PermCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Request counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Handles one request line to completion (blocking until a worker
    /// finishes it, if it queues).
    pub fn submit_line(&self, line: &str) -> SubmitResult {
        match self.enqueue_line(line) {
            Enqueued::Ready(resp) => SubmitResult::Response(resp),
            Enqueued::Wait(cell) => SubmitResult::Response(cell.wait()),
            Enqueued::Shutdown(resp) => SubmitResult::Shutdown(resp),
        }
    }

    fn enqueue_line(&self, line: &str) -> Enqueued {
        let stats = &self.shared.stats;
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return Enqueued::Ready(error_response(&OpError::Parse(format!(
                    "invalid request: {e}"
                ))));
            }
        };
        if let Some(control) = parse_control(&v) {
            return match control {
                Err(e) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    Enqueued::Ready(error_response(&e))
                }
                Ok(Control::Ping) => Enqueued::Ready(
                    Json::Obj(vec![
                        ("status".into(), Json::Str("ok".into())),
                        ("pong".into(), Json::Bool(true)),
                    ])
                    .to_line(),
                ),
                Ok(Control::Stats) => Enqueued::Ready(self.stats_snapshot().to_line()),
                Ok(Control::Shutdown) => Enqueued::Shutdown(
                    Json::Obj(vec![
                        ("status".into(), Json::Str("ok".into())),
                        ("shutdown".into(), Json::Bool(true)),
                    ])
                    .to_line(),
                ),
            };
        }
        let envelope = match RequestEnvelope::from_json(&v) {
            Ok(env) => env,
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return Enqueued::Ready(error_response(&e));
            }
        };
        if let Err(e) = reject_filesystem_request(&envelope.request) {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return Enqueued::Ready(error_response(&e));
        }
        // The canonical wire form is the coalescing/shard key: two
        // requests that decode equal serialize equal.
        let key = envelope.to_json().to_line();
        let (cell, needs_enqueue) = {
            let mut pending = lock(&self.shared.pending);
            if let Some(cell) = pending.get(&key) {
                stats.coalesced.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(cell), false)
            } else {
                let cell = Arc::new(JobCell::default());
                pending.insert(key.clone(), Arc::clone(&cell));
                (cell, true)
            }
        };
        if needs_enqueue {
            let senders = lock(&self.senders);
            if senders.is_empty() {
                lock(&self.shared.pending).remove(&key);
                cell.publish(error_response(&OpError::Io("server is shutting down".into())));
                return Enqueued::Wait(cell);
            }
            let shard = usize::try_from(fnv1a(key.as_bytes()) % senders.len() as u64).unwrap_or(0);
            let job = Job { envelope, key: key.clone(), cell: Arc::clone(&cell) };
            match senders[shard].try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    // Publish the shed response through the cell so any
                    // coalesced waiters that raced in are released too.
                    lock(&self.shared.pending).remove(&job.key);
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                    job.cell.publish(shed_response());
                }
                Err(TrySendError::Disconnected(job)) => {
                    lock(&self.shared.pending).remove(&job.key);
                    job.cell
                        .publish(error_response(&OpError::Io("server is shutting down".into())));
                }
            }
        }
        Enqueued::Wait(cell)
    }

    fn stats_snapshot(&self) -> Json {
        let s = &self.shared.stats;
        let c = &self.shared.cache;
        let n = |x: u64| Json::Num(x as f64);
        Json::Obj(vec![
            ("status".into(), Json::Str("ok".into())),
            ("requests".into(), n(s.requests.load(Ordering::Relaxed))),
            ("ok".into(), n(s.ok.load(Ordering::Relaxed))),
            ("errors".into(), n(s.errors.load(Ordering::Relaxed))),
            ("shed".into(), n(s.shed.load(Ordering::Relaxed))),
            ("coalesced".into(), n(s.coalesced.load(Ordering::Relaxed))),
            ("cache_hits".into(), n(c.hits())),
            ("cache_misses".into(), n(c.misses())),
            ("cache_evictions".into(), n(c.evictions())),
            ("cache_len".into(), n(c.len() as u64)),
        ])
    }

    /// Stops the workers: closes every shard queue and joins the worker
    /// threads (queued jobs finish first).
    pub fn shutdown_workers(&self) {
        lock(&self.senders).clear();
        let handles: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// The daemon's file-access policy, applied before a request can queue:
/// `validate` and `reorder`'s `apply_perm` name caller-chosen server-side
/// paths, so a network client could probe or read arbitrary files through
/// them. They are filesystem-frontend (CLI) operations only — the daemon
/// refuses them outright, the same way [`CorpusResolver`] refuses
/// `GraphSource::Path`.
fn reject_filesystem_request(request: &OpRequest) -> Result<(), OpError> {
    match request {
        OpRequest::Validate { .. } => Err(OpError::Usage(
            "the daemon does not read client files; run `reorderlab validate` locally".into(),
        )),
        OpRequest::Reorder { apply_perm: Some(_), .. } => Err(OpError::Usage(
            "the daemon does not read client files; \"apply_perm\" is CLI-only, use \"scheme\""
                .into(),
        )),
        _ => Ok(()),
    }
}

fn worker_loop(shared: &Shared, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        // A panicking handler must not strand the job: catch the unwind,
        // publish a typed internal error in its place, and keep this
        // worker (and the pending-map cleanup below) alive. The shared
        // state stays usable — every lock here recovers from poisoning.
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(shared, &job.envelope)
        }))
        .unwrap_or_else(|_| {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            error_response(&OpError::Io("internal error: request handler panicked".into()))
        });
        // Remove from pending BEFORE publishing: a request arriving after
        // removal starts a fresh computation; one arriving before it
        // attaches to this cell and is released by the publish below.
        lock(&shared.pending).remove(&job.key);
        job.cell.publish(response);
    }
}

fn run_job(shared: &Shared, envelope: &RequestEnvelope) -> String {
    let t0 = std::time::Instant::now();
    let resolver = CorpusResolver::new(Arc::clone(&shared.corpus));
    let mut perms = CachingPerms::new(shared.cache.clone());
    let result = run_with_threads(envelope.threads, || {
        execute_with(&envelope.request, &resolver, &mut perms)
    });
    let wall_s = t0.elapsed().as_secs_f64();
    // Per-request hit observation, not a diff of the global counters —
    // concurrent workers on other shards would race that.
    let cache_hit = perms.request_hits() > 0;
    let (line, status) = match &result {
        Ok(out) => {
            shared.stats.ok.fetch_add(1, Ordering::Relaxed);
            (ok_response(&out.report), "ok")
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            (error_response(e), e.status())
        }
    };
    if let Some(audit) = &shared.audit {
        append_audit(audit, envelope, status, wall_s, cache_hit, result.as_ref().ok());
    }
    line
}

/// Appends one audit manifest per executed request: the daemon's
/// tamper-evident trail of what ran, for whom, and how long it took.
fn append_audit(
    audit: &AuditLog,
    envelope: &RequestEnvelope,
    status: &str,
    wall_s: f64,
    cache_hit: bool,
    outcome: Option<&OpOutcome>,
) {
    let (graph_id, vertices, edges) = match outcome.map(|o| &o.report) {
        Some(OpReport::Stats(s)) => (s.graph.clone(), s.vertices, s.edges),
        Some(OpReport::Reorder(r)) => (r.graph.clone(), r.vertices, r.edges),
        Some(OpReport::Measure(m)) => (m.graph.clone(), m.vertices, m.edges),
        Some(OpReport::Compression(c)) => (c.graph.clone(), c.vertices, c.edges),
        Some(OpReport::Memsim(m)) => (m.graph.clone(), 0, 0),
        _ => (request_graph_id(&envelope.request), 0, 0),
    };
    let mut m = Manifest::new("serve", &graph_id, vertices, edges)
        .with_seed(audit_seed(&envelope.request))
        .with_threads(envelope.threads.unwrap_or_else(rayon::current_num_threads));
    m.push_note("op", envelope.request.op_name());
    m.push_note("status", status);
    m.push_note("cache", if cache_hit { "hit" } else { "miss" });
    m.push_measure("wall_s", wall_s);
    // SAFETY: this lock exists precisely to serialize the append — the
    // audit log is a shared JSONL file and interleaved writes would corrupt
    // it. The guard spans only this one bounded write (no socket I/O, no
    // kernel work), and workers audit after responding to their client.
    let _held = lock(&audit.guard);
    if let Err(e) = m.append_jsonl(&audit.path) {
        eprintln!("serve: cannot append audit manifest to {}: {e}", audit.path);
    }
}

/// The seed the audit manifest records: the request scheme's own seed
/// parameter where it has one, otherwise the frontend-wide default of 42
/// — the same rule `exec_reorder` applies to its own manifest.
fn audit_seed(request: &OpRequest) -> u64 {
    let spec = match request {
        OpRequest::Reorder { scheme, .. } | OpRequest::Memsim { scheme, .. } => scheme.as_deref(),
        _ => None,
    };
    spec.and_then(|s| parse_scheme(s).ok()).map_or(42, |s| scheme_seed(&s))
}

fn request_graph_id(request: &OpRequest) -> String {
    match request {
        OpRequest::Stats { source }
        | OpRequest::Reorder { source, .. }
        | OpRequest::Measure { source, .. }
        | OpRequest::Compression { source, .. }
        | OpRequest::Memsim { source, .. } => source.id().to_string(),
        OpRequest::Validate { files } => {
            files.first().cloned().unwrap_or_else(|| "validate".into())
        }
    }
}

/// A running daemon: the bound address plus shutdown plumbing.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stopping: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine, for in-process counter inspection.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// True once a shutdown verb has been received.
    pub fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn stop(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.engine.shutdown_workers();
    }

    /// Blocks until a shutdown verb arrives over the wire, then drains.
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.engine.shutdown_workers();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds the daemon and starts serving.
///
/// # Errors
///
/// [`OpError::Io`] when the address cannot be bound.
pub fn serve(corpus: Arc<Corpus>, config: ServerConfig) -> Result<ServerHandle, OpError> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| OpError::Io(format!("cannot bind {}: {e}", config.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| OpError::Io(format!("cannot read bound address: {e}")))?;
    let engine = Arc::new(Engine::new(corpus, &config));
    let stopping = Arc::new(AtomicBool::new(false));
    let accept = {
        let engine = Arc::clone(&engine);
        let stopping = Arc::clone(&stopping);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&listener, &engine, &stopping))
            .map_err(|e| OpError::Io(format!("cannot spawn accept thread: {e}")))?
    };
    Ok(ServerHandle { addr, engine, stopping, accept: Some(accept) })
}

fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, stopping: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let engine = Arc::clone(engine);
        let stopping = Arc::clone(stopping);
        let spawned = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || handle_connection(stream, &engine, &stopping));
        if let Err(e) = spawned {
            eprintln!("serve: cannot spawn connection thread: {e}");
        }
    }
}

fn handle_connection(stream: TcpStream, engine: &Engine, stopping: &AtomicBool) {
    // Line-oriented request/response traffic: disable Nagle so each
    // response line leaves immediately instead of waiting on an ACK.
    let _ = stream.set_nodelay(true);
    let Ok(reading) = stream.try_clone() else { return };
    let mut writer = stream;
    let peer = writer.peer_addr().ok();
    let local = writer.local_addr().ok();
    for line in BufReader::new(reading).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match engine.submit_line(&line) {
            SubmitResult::Response(resp) => {
                if writeln!(writer, "{resp}").is_err() {
                    break;
                }
                let _ = writer.flush();
            }
            SubmitResult::Shutdown(resp) => {
                let _ = writeln!(writer, "{resp}");
                let _ = writer.flush();
                stopping.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                if let Some(addr) = local {
                    let _ = TcpStream::connect(addr);
                }
                break;
            }
        }
    }
    let _ = peer;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Arc<Corpus> {
        let mut c = Corpus::new();
        c.insert("tiny", reorderlab_datasets::by_name("euroroad").unwrap().generate());
        Arc::new(c)
    }

    fn response_of(engine: &Engine, line: &str) -> String {
        match engine.submit_line(line) {
            SubmitResult::Response(r) => r,
            SubmitResult::Shutdown(r) => r,
        }
    }

    #[test]
    fn executes_and_counts_requests() {
        let engine = Engine::new(corpus(), &ServerConfig::default());
        let resp = response_of(&engine, "{\"op\":\"stats\",\"source\":{\"corpus\":\"tiny\"}}");
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
        assert!(resp.contains("\"report\":"), "{resp}");
        assert_eq!(engine.stats().ok.load(Ordering::Relaxed), 1);
        engine.shutdown_workers();
    }

    #[test]
    fn repeat_reorders_hit_the_cache() {
        let engine = Engine::new(corpus(), &ServerConfig::default());
        let line = "{\"op\":\"reorder\",\"source\":{\"corpus\":\"tiny\"},\"scheme\":\"rcm\"}";
        let first = response_of(&engine, line);
        let second = response_of(&engine, line);
        assert!(first.contains("\"cache_hit\":false"), "{first}");
        assert!(second.contains("\"cache_hit\":true"), "{second}");
        assert_eq!(engine.cache().hits(), 1);
        engine.shutdown_workers();
    }

    #[test]
    fn malformed_and_unknown_requests_are_typed() {
        let engine = Engine::new(corpus(), &ServerConfig::default());
        let garbage = response_of(&engine, "this is not json");
        assert!(garbage.contains("\"status\":\"parse\""), "{garbage}");
        let unknown = response_of(&engine, "{\"op\":\"frob\"}");
        assert!(unknown.contains("\"status\":\"usage\""), "{unknown}");
        let bad_scheme = response_of(
            &engine,
            "{\"op\":\"reorder\",\"source\":{\"corpus\":\"tiny\"},\"scheme\":\"bogus\"}",
        );
        assert!(bad_scheme.contains("\"status\":\"scheme\""), "{bad_scheme}");
        assert_eq!(engine.stats().errors.load(Ordering::Relaxed), 3);
        engine.shutdown_workers();
    }

    #[test]
    fn filesystem_reading_requests_are_refused() {
        let engine = Engine::new(corpus(), &ServerConfig::default());
        // `validate` reads caller-named server-side paths: refused before
        // it can reach the filesystem (no errno/parse detail echoed).
        let validate = response_of(&engine, "{\"op\":\"validate\",\"files\":[\"/etc/passwd\"]}");
        assert!(validate.contains("\"status\":\"usage\""), "{validate}");
        assert!(validate.contains("does not read client files"), "{validate}");
        // Same for `apply_perm` on reorder, even with return_perm set —
        // the exfiltration path the contract forbids.
        let apply = response_of(
            &engine,
            "{\"op\":\"reorder\",\"source\":{\"corpus\":\"tiny\"},\
             \"apply_perm\":\"/etc/passwd\",\"return_perm\":true}",
        );
        assert!(apply.contains("\"status\":\"usage\""), "{apply}");
        assert!(apply.contains("does not read client files"), "{apply}");
        assert_eq!(engine.stats().errors.load(Ordering::Relaxed), 2);
        engine.shutdown_workers();
    }

    #[test]
    fn full_queue_sheds_deterministically() {
        let config = ServerConfig { shards: 1, queue_cap: 1, ..ServerConfig::default() };
        let engine = Engine::new_unstarted(corpus(), &config);
        // No workers: the first job occupies the queue slot forever…
        let first = engine.enqueue_line("{\"op\":\"stats\",\"source\":{\"corpus\":\"tiny\"}}");
        assert!(matches!(first, Enqueued::Wait(_)));
        // …and a different request finds the queue full and is shed.
        let second = engine.enqueue_line(
            "{\"op\":\"reorder\",\"source\":{\"corpus\":\"tiny\"},\"scheme\":\"rcm\"}",
        );
        let Enqueued::Wait(cell) = second else { panic!("expected queued/shed cell") };
        let resp = cell.wait();
        assert!(resp.contains("\"status\":\"shed\""), "{resp}");
        assert_eq!(engine.stats().shed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn identical_inflight_requests_coalesce() {
        let config = ServerConfig { shards: 1, queue_cap: 4, ..ServerConfig::default() };
        let engine = Engine::new_unstarted(corpus(), &config);
        let line = "{\"op\":\"stats\",\"source\":{\"corpus\":\"tiny\"}}";
        let Enqueued::Wait(a) = engine.enqueue_line(line) else { panic!("expected wait") };
        let Enqueued::Wait(b) = engine.enqueue_line(line) else { panic!("expected wait") };
        assert!(Arc::ptr_eq(&a, &b), "identical in-flight requests must share a cell");
        assert_eq!(engine.stats().coalesced.load(Ordering::Relaxed), 1);
        // Releasing the cell releases both waiters.
        a.publish("{\"status\":\"ok\"}".into());
        assert_eq!(b.wait(), "{\"status\":\"ok\"}");
    }

    #[test]
    fn control_verbs_answer_inline() {
        let engine = Engine::new(corpus(), &ServerConfig::default());
        assert!(response_of(&engine, "{\"control\":\"ping\"}").contains("\"pong\":true"));
        let stats = response_of(&engine, "{\"control\":\"stats\"}");
        assert!(stats.contains("\"cache_hits\":"), "{stats}");
        assert!(matches!(
            engine.submit_line("{\"control\":\"shutdown\"}"),
            SubmitResult::Shutdown(_)
        ));
        engine.shutdown_workers();
    }
}
