//! The permutation cache.
//!
//! Keyed by `(graph digest, canonical scheme spec)`: the digest pins the
//! exact graph bytes (`reorderlab_graph::csr_digest`), and
//! `Scheme::spec()` is the canonical rendering of a parsed spec, so
//! `metis:64` and `metis:parts=64,seed=42` share one entry. Eviction is
//! LRU under a fixed capacity: every hit re-touches its entry, so the
//! hot schemes of a zipf-skewed trace stay resident even when a burst of
//! one-off requests would have flushed them under insertion-order (FIFO)
//! eviction. The re-touch is an O(capacity) queue scan, which is noise at
//! the capacities this daemon runs (a permutation costs ~4·|V| bytes, so
//! capacity stays in the tens).

use reorderlab_core::Scheme;
use reorderlab_graph::Permutation;
use reorderlab_ops::{OpError, PermSource, ResolvedGraph};
use reorderlab_trace::RunRecorder;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Recover from a poisoned lock: every critical section here leaves the
/// map and recency queue consistent at every await-free step, so the data
/// is usable even if a panicking thread held the guard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

type CacheKey = (u64, String);

#[derive(Debug, Default)]
struct CacheInner {
    map: BTreeMap<CacheKey, Arc<Permutation>>,
    /// Recency queue: front = least recently used, back = most recent.
    /// Hits move their key to the back; eviction pops the front.
    lru: VecDeque<CacheKey>,
}

/// A bounded, thread-safe permutation cache.
#[derive(Debug)]
pub struct PermCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PermCache {
    /// A cache holding at most `capacity` permutations (0 disables
    /// caching but keeps the counters).
    pub fn new(capacity: usize) -> PermCache {
        PermCache {
            capacity,
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `(digest, scheme)`, computing and inserting on a miss.
    /// Returns the ordering and whether it was a hit. A hit re-touches the
    /// entry (moves it to the back of the recency queue), so recently-used
    /// entries outlive a same-capacity FIFO's.
    ///
    /// The digest is a 64-bit FNV-1a, so a collision between two
    /// different graphs is possible; a hit whose cached ordering does not
    /// cover this graph's vertex count is treated as a collision, evicted,
    /// and recomputed rather than served wrong-sized.
    ///
    /// # Errors
    ///
    /// [`OpError::Scheme`] when the scheme rejects the graph (failures
    /// are not cached).
    pub fn get_or_compute(
        &self,
        digest: u64,
        scheme: &Scheme,
        resolved: &ResolvedGraph,
        rec: &mut RunRecorder,
    ) -> Result<(Arc<Permutation>, bool), OpError> {
        let key = (digest, scheme.spec());
        {
            let mut inner = lock(&self.inner);
            if let Some(pi) = inner.map.get(&key).cloned() {
                if pi.len() == resolved.graph.num_vertices() {
                    // Re-touch: this entry is now the most recently used.
                    if let Some(pos) = inner.lru.iter().position(|k| k == &key) {
                        inner.lru.remove(pos);
                        inner.lru.push_back(key);
                    }
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((pi, true));
                }
                // Digest collision: the cached ordering belongs to a
                // different graph. Drop the stale entry and fall through
                // to recompute for this one.
                inner.map.remove(&key);
                inner.lru.retain(|k| k != &key);
            }
        }
        // Compute outside the lock: a slow scheme must not serialize the
        // whole cache. Two racing misses may both compute; the second
        // insert is a no-op.
        let pi = scheme.try_reorder_recorded(&resolved.graph, rec).map_err(OpError::Scheme)?;
        let pi = Arc::new(pi);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if self.capacity > 0 {
            let mut inner = lock(&self.inner);
            if !inner.map.contains_key(&key) {
                inner.map.insert(key.clone(), Arc::clone(&pi));
                inner.lru.push_back(key);
                while inner.map.len() > self.capacity {
                    if let Some(old) = inner.lru.pop_front() {
                        inner.map.remove(&old);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    } else {
                        break;
                    }
                }
            }
        }
        Ok((pi, false))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`PermSource`] backed by a [`PermCache`]: resolved graphs that carry
/// a digest are served from (and fill) the cache; digest-less graphs are
/// computed fresh.
#[derive(Debug, Clone)]
pub struct CachingPerms {
    cache: Arc<PermCache>,
    request_hits: u64,
}

impl CachingPerms {
    /// Wraps a shared cache.
    pub fn new(cache: Arc<PermCache>) -> CachingPerms {
        CachingPerms { cache, request_hits: 0 }
    }

    /// Hits observed through *this* source (one per request in the
    /// daemon) — unlike the shared cache's global counters, this cannot
    /// be perturbed by concurrent requests on other workers.
    pub fn request_hits(&self) -> u64 {
        self.request_hits
    }
}

impl PermSource for CachingPerms {
    fn ordering(
        &mut self,
        resolved: &ResolvedGraph,
        scheme: &Scheme,
        rec: &mut RunRecorder,
    ) -> Result<(Arc<Permutation>, bool), OpError> {
        let (pi, hit) = match resolved.digest {
            Some(digest) => self.cache.get_or_compute(digest, scheme, resolved, rec)?,
            None => {
                let pi =
                    scheme.try_reorder_recorded(&resolved.graph, rec).map_err(OpError::Scheme)?;
                self.cache.misses.fetch_add(1, Ordering::Relaxed);
                (Arc::new(pi), false)
            }
        };
        if hit {
            self.request_hits += 1;
        }
        Ok((pi, hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_graph::csr_digest;

    fn resolved(name: &str) -> ResolvedGraph {
        let g = reorderlab_datasets::by_name(name).unwrap().generate();
        let digest = csr_digest(&g);
        ResolvedGraph { graph: Arc::new(g), id: name.into(), digest: Some(digest) }
    }

    fn scheme(spec: &str) -> Scheme {
        Scheme::parse(spec).unwrap()
    }

    #[test]
    fn repeat_requests_hit() {
        let cache = PermCache::new(8);
        let r = resolved("euroroad");
        let mut rec = RunRecorder::new();
        let (a, hit_a) =
            cache.get_or_compute(r.digest.unwrap(), &scheme("rcm"), &r, &mut rec).unwrap();
        let (b, hit_b) =
            cache.get_or_compute(r.digest.unwrap(), &scheme("rcm"), &r, &mut rec).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(a.as_ref(), b.as_ref());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn spec_canonicalization_shares_entries() {
        let cache = PermCache::new(8);
        let r = resolved("euroroad");
        let mut rec = RunRecorder::new();
        let d = r.digest.unwrap();
        cache.get_or_compute(d, &scheme("metis:64"), &r, &mut rec).unwrap();
        let (_, hit) =
            cache.get_or_compute(d, &scheme("metis:parts=64,seed=42"), &r, &mut rec).unwrap();
        assert!(hit, "positional and keyword spellings must share a cache entry");
    }

    #[test]
    fn distinct_graphs_do_not_collide() {
        let cache = PermCache::new(8);
        let a = resolved("euroroad");
        let b = resolved("rovira");
        assert_ne!(a.digest, b.digest);
        let mut rec = RunRecorder::new();
        let (pa, _) =
            cache.get_or_compute(a.digest.unwrap(), &scheme("rcm"), &a, &mut rec).unwrap();
        let (pb, _) =
            cache.get_or_compute(b.digest.unwrap(), &scheme("rcm"), &b, &mut rec).unwrap();
        assert_ne!(pa.len(), pb.len());
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn forged_digest_collision_is_not_served() {
        let cache = PermCache::new(8);
        let a = resolved("euroroad");
        let mut b = resolved("rovira");
        // Forge a 64-bit digest collision between two different graphs.
        b.digest = a.digest;
        let mut rec = RunRecorder::new();
        let (pa, _) =
            cache.get_or_compute(a.digest.unwrap(), &scheme("rcm"), &a, &mut rec).unwrap();
        let (pb, hit) =
            cache.get_or_compute(b.digest.unwrap(), &scheme("rcm"), &b, &mut rec).unwrap();
        assert!(!hit, "a collided entry must be recomputed, not served");
        assert_eq!(pb.len(), b.graph.num_vertices());
        assert_ne!(pa.len(), pb.len());
    }

    #[test]
    fn caching_perms_counts_hits_per_source() {
        let cache = Arc::new(PermCache::new(8));
        let r = resolved("euroroad");
        let mut rec = RunRecorder::new();
        let mut first = CachingPerms::new(Arc::clone(&cache));
        first.ordering(&r, &scheme("rcm"), &mut rec).unwrap();
        assert_eq!(first.request_hits(), 0);
        let mut second = CachingPerms::new(Arc::clone(&cache));
        second.ordering(&r, &scheme("rcm"), &mut rec).unwrap();
        assert_eq!(second.request_hits(), 1);
        // The first source is unaffected by the second's hit.
        assert_eq!(first.request_hits(), 0);
    }

    #[test]
    fn lru_eviction_is_bounded() {
        let cache = PermCache::new(2);
        let r = resolved("euroroad");
        let d = r.digest.unwrap();
        let mut rec = RunRecorder::new();
        // With no intervening hits, LRU degenerates to insertion order.
        for spec in ["rcm", "dbg", "degree"] {
            cache.get_or_compute(d, &scheme(spec), &r, &mut rec).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // The least recently used entry (rcm) was evicted; re-requesting
        // it misses.
        let (_, hit) = cache.get_or_compute(d, &scheme("rcm"), &r, &mut rec).unwrap();
        assert!(!hit);
    }

    #[test]
    fn retouched_entry_survives_an_eviction_fifo_would_take() {
        let cache = PermCache::new(2);
        let r = resolved("euroroad");
        let d = r.digest.unwrap();
        let mut rec = RunRecorder::new();
        cache.get_or_compute(d, &scheme("rcm"), &r, &mut rec).unwrap();
        cache.get_or_compute(d, &scheme("dbg"), &r, &mut rec).unwrap();
        // Hit rcm: under FIFO this is a no-op; under LRU it moves rcm to
        // the back of the recency queue, making dbg the eviction victim.
        let (_, hit) = cache.get_or_compute(d, &scheme("rcm"), &r, &mut rec).unwrap();
        assert!(hit);
        cache.get_or_compute(d, &scheme("degree"), &r, &mut rec).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // rcm survived the eviction FIFO would have taken...
        let (_, hit) = cache.get_or_compute(d, &scheme("rcm"), &r, &mut rec).unwrap();
        assert!(hit, "the re-touched entry must survive the eviction");
        // ...and dbg, the actual least recently used entry, was evicted.
        let (_, hit) = cache.get_or_compute(d, &scheme("dbg"), &r, &mut rec).unwrap();
        assert!(!hit, "the least recently used entry must be the victim");
    }

    #[test]
    fn zero_capacity_disables_storage_but_counts() {
        let cache = PermCache::new(0);
        let r = resolved("euroroad");
        let d = r.digest.unwrap();
        let mut rec = RunRecorder::new();
        cache.get_or_compute(d, &scheme("rcm"), &r, &mut rec).unwrap();
        cache.get_or_compute(d, &scheme("rcm"), &r, &mut rec).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 2);
    }
}
