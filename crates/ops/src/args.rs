//! Flag scanning shared by the operational binaries.
//!
//! The CLI, the serve daemon, and the loadgen harness all parse
//! `--flag value` style argument lists; these helpers are the one copy of
//! that scanning logic (formerly private functions inside the CLI binary).

/// Returns the value following `flag`, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// True when the bare flag is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Collects all values of a repeatable flag.
pub fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if args[i] == flag {
            out.push(args[i + 1].clone());
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scans_values_and_presence() {
        let args = argv(&["--input", "g.mtx", "--json", "--scheme", "rcm", "--scheme", "cdfs"]);
        assert_eq!(flag_value(&args, "--input").as_deref(), Some("g.mtx"));
        assert_eq!(flag_value(&args, "--out"), None);
        assert!(has_flag(&args, "--json"));
        assert!(!has_flag(&args, "--quick"));
        assert_eq!(flag_values(&args, "--scheme"), argv(&["rcm", "cdfs"]));
    }

    #[test]
    fn trailing_flag_without_value_yields_none() {
        let args = argv(&["--input"]);
        assert_eq!(flag_value(&args, "--input"), None);
        assert!(flag_values(&args, "--input").is_empty());
    }
}
