//! # reorderlab-ops
//!
//! The typed operations surface of the `reorderlab` workspace: every
//! user-facing operation — `stats`, `reorder`, `measure`, `compression`,
//! `validate`, `memsim` — expressed as a serializable [`OpRequest`], executed by
//! [`execute`] into a typed [`OpReport`], with failures classified by the
//! shared [`OpError`] taxonomy.
//!
//! The CLI binary is a thin argv parser over this crate; the serve daemon
//! is a thin wire protocol over it. Because both frontends render results
//! through the same [`OpReport`] methods, a daemon response is
//! byte-identical to the CLI's stdout by construction.
//!
//! ```
//! use reorderlab_ops::{execute, FsResolver, GraphSource, OpReport, OpRequest};
//!
//! let req = OpRequest::Stats { source: GraphSource::Instance("euroroad".into()) };
//! let out = execute(&req, &FsResolver).unwrap();
//! let OpReport::Stats(stats) = &out.report else { unreachable!() };
//! assert!(stats.render_text().starts_with("graph: euroroad"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
mod error;
mod exec;
mod report;
mod request;
mod schemes;
mod source;

pub use error::OpError;
pub use exec::{execute, execute_with, run_with_threads, ComputePerm, OpOutcome, PermSource};
pub use report::{
    CompressionReport, CompressionRow, FileVerdict, GapRow, MeasureReport, MeasureRow,
    MemsimReport, OpReport, ReorderReport, StatsReport, ValidateReport,
};
pub use request::{OpRequest, RequestEnvelope};
pub use schemes::{parse_scheme, scheme_help, scheme_seed};
pub use source::{
    read_graph_auto, write_graph_auto, FsResolver, GraphSource, ResolveGraph, ResolvedGraph,
};
