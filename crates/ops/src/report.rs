//! The typed response surface: what an operation returns.
//!
//! Every [`OpReport`] variant carries the typed numbers an operation
//! produced *and* knows how to render the CLI's human-facing text from
//! them. The CLI and the serve daemon both render through these methods,
//! so a daemon response is byte-identical to the CLI's stdout by
//! construction, not by parallel maintenance.

use crate::error::OpError;
use reorderlab_trace::{Json, Manifest};
use std::fmt::Write as _;

/// Structural statistics of one graph (`stats`).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Display identity of the graph.
    pub graph: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Degree standard deviation.
    pub degree_std_dev: f64,
    /// Triangle count.
    pub triangles: u64,
    /// Global clustering coefficient.
    pub clustering_coefficient: f64,
    /// The run manifest (phases, counters, measures).
    pub manifest: Manifest,
}

impl StatsReport {
    /// The CLI's human-readable stdout block (no trailing newline).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "graph: {}", self.graph);
        let _ = writeln!(out, "  vertices:               {}", self.vertices);
        let _ = writeln!(out, "  edges:                  {}", self.edges);
        let _ = writeln!(out, "  max degree:             {}", self.max_degree);
        let _ = writeln!(out, "  mean degree:            {:.3}", self.mean_degree);
        let _ = writeln!(out, "  degree std dev:         {:.3}", self.degree_std_dev);
        let _ = writeln!(out, "  triangles:              {}", self.triangles);
        let _ = write!(out, "  clustering coefficient: {:.4}", self.clustering_coefficient);
        out
    }
}

/// Gap measures of one ordering, as reported by `reorder` and `measure`.
#[derive(Debug, Clone, PartialEq)]
pub struct GapRow {
    /// Average gap ξ̂.
    pub avg_gap: f64,
    /// Bandwidth β (maximum gap).
    pub bandwidth: u32,
    /// Average per-vertex bandwidth β̂.
    pub avg_bandwidth: f64,
    /// Average log₂ gap.
    pub avg_log_gap: f64,
}

/// Outcome of computing (or applying) one ordering (`reorder`).
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderReport {
    /// Display identity of the graph.
    pub graph: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Human label: the scheme name, or `perm file PATH`.
    pub label: String,
    /// Gap measures under the identity ordering.
    pub before: GapRow,
    /// Gap measures under the produced ordering.
    pub after: GapRow,
    /// Wall-clock seconds spent producing the ordering.
    pub wall_s: f64,
    /// True when the ordering came from a permutation cache rather than a
    /// fresh computation (always false in the CLI).
    pub cache_hit: bool,
    /// The run manifest.
    pub manifest: Manifest,
    /// The permutation in its text form, when the request asked for it.
    pub permutation: Option<String>,
}

impl ReorderReport {
    /// The CLI's one-line stderr summary (includes the wall time, so two
    /// runs of the same request differ here and only here).
    pub fn summary_line(&self) -> String {
        format!(
            "{} on {}: ξ̂ {:.1} -> {:.1}, β {} -> {}, β̂ {:.1} -> {:.1} ({:.3}s)",
            self.label,
            self.graph,
            self.before.avg_gap,
            self.after.avg_gap,
            self.before.bandwidth,
            self.after.bandwidth,
            self.before.avg_bandwidth,
            self.after.avg_bandwidth,
            self.wall_s
        )
    }
}

/// One scheme's row in a `measure` table.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureRow {
    /// The scheme's display name.
    pub scheme: String,
    /// Its gap measures.
    pub gaps: GapRow,
    /// Its run manifest.
    pub manifest: Manifest,
}

/// Gap measures across a set of schemes (`measure`).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureReport {
    /// Display identity of the graph.
    pub graph: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// One row per scheme, in request order.
    pub rows: Vec<MeasureRow>,
}

impl MeasureReport {
    /// The CLI's human-readable table (no trailing newline).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gap measures on {} (|V|={}, |E|={}):",
            self.graph, self.vertices, self.edges
        );
        let _ = write!(
            out,
            "{:<16} {:>12} {:>12} {:>12} {:>12}",
            "scheme", "avg gap", "bandwidth", "avg band", "log gap"
        );
        for row in &self.rows {
            let _ = write!(
                out,
                "\n{:<16} {:>12.1} {:>12} {:>12.1} {:>12.2}",
                row.scheme,
                row.gaps.avg_gap,
                row.gaps.bandwidth,
                row.gaps.avg_bandwidth,
                row.gaps.avg_log_gap
            );
        }
        out
    }

    /// The CLI's `--json` output: one compact manifest line per scheme.
    pub fn render_jsonl(&self) -> String {
        let lines: Vec<String> = self.rows.iter().map(|r| r.manifest.to_line()).collect();
        lines.join("\n")
    }
}

/// One scheme's row in a `compression` table.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionRow {
    /// The scheme's display name.
    pub scheme: String,
    /// Exact size in bytes of the LEB128 gap stream under the ordering.
    pub gap_bytes: u64,
    /// `8 · gap_bytes / max(arcs, 1)` — realized bits per stored arc.
    pub bits_per_edge: f64,
    /// Average log₂ gap: the information-theoretic lower bound on
    /// `bits_per_edge`.
    pub avg_log_gap: f64,
    /// Its run manifest.
    pub manifest: Manifest,
}

/// Compression footprint across a set of schemes (`compression`).
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Display identity of the graph.
    pub graph: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Stored arc count (2·edges undirected): the denominator of
    /// bits-per-edge.
    pub arcs: usize,
    /// One row per scheme, in request order.
    pub rows: Vec<CompressionRow>,
}

impl CompressionReport {
    /// The CLI's human-readable table (no trailing newline).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compression footprint on {} (|V|={}, |E|={}, arcs={}):",
            self.graph, self.vertices, self.edges, self.arcs
        );
        let _ = write!(
            out,
            "{:<16} {:>12} {:>12} {:>12}",
            "scheme", "gap bytes", "bits/edge", "log-gap lb"
        );
        for row in &self.rows {
            let _ = write!(
                out,
                "\n{:<16} {:>12} {:>12.3} {:>12.3}",
                row.scheme, row.gap_bytes, row.bits_per_edge, row.avg_log_gap
            );
        }
        out
    }

    /// The CLI's `--json` output: one compact manifest line per scheme.
    pub fn render_jsonl(&self) -> String {
        let lines: Vec<String> = self.rows.iter().map(|r| r.manifest.to_line()).collect();
        lines.join("\n")
    }
}

/// One file's verdict under `validate`.
#[derive(Debug, Clone, PartialEq)]
pub struct FileVerdict {
    /// The path checked.
    pub path: String,
    /// `ok`, `unreadable`, or `malformed`.
    pub status: String,
    /// The reader's diagnosis for non-ok files.
    pub detail: Option<String>,
    /// Vertex count for clean files, 0 otherwise.
    pub vertices: usize,
    /// Edge count for clean files, 0 otherwise.
    pub edges: usize,
    /// The per-file run manifest.
    pub manifest: Manifest,
}

impl FileVerdict {
    /// The CLI's one-line stderr verdict for this file.
    pub fn verdict_line(&self) -> String {
        match &self.detail {
            None => format!("{}: ok (|V|={}, |E|={})", self.path, self.vertices, self.edges),
            Some(msg) => format!("{}: {}: {msg}", self.path, self.status),
        }
    }
}

/// Ingestion-contract verdicts over a set of files (`validate`).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateReport {
    /// One verdict per file, in request order.
    pub files: Vec<FileVerdict>,
}

impl ValidateReport {
    /// Number of files diagnosed as malformed.
    pub fn malformed(&self) -> usize {
        self.files.iter().filter(|f| f.status == "malformed").count()
    }

    /// Number of files that could not be read at all.
    pub fn unreadable(&self) -> usize {
        self.files.iter().filter(|f| f.status == "unreadable").count()
    }

    /// The overall outcome: `Err` with the CLI's summary message when any
    /// file failed (malformed dominates unreadable), `Ok` with the success
    /// summary line otherwise.
    ///
    /// # Errors
    ///
    /// [`OpError::Malformed`] / [`OpError::Io`] carrying the exact
    /// summary the CLI prints.
    pub fn overall(&self) -> Result<String, OpError> {
        let total = self.files.len();
        let malformed = self.malformed();
        let unreadable = self.unreadable();
        if malformed > 0 {
            Err(OpError::Malformed(format!("{malformed} of {total} file(s) malformed")))
        } else if unreadable > 0 {
            Err(OpError::Io(format!("{unreadable} of {total} file(s) unreadable")))
        } else {
            Ok(format!("{total} file(s) ok"))
        }
    }
}

/// Memory-hierarchy replay counters (`memsim`).
#[derive(Debug, Clone, PartialEq)]
pub struct MemsimReport {
    /// Display identity of the graph.
    pub graph: String,
    /// The layout scheme's display name (`Natural` when none was given).
    pub scheme: String,
    /// The workload replayed.
    pub workload: String,
    /// The kernel replayed.
    pub kernel: String,
    /// Total loads issued.
    pub loads: u64,
    /// Hits per level (L1, L2, L3, DRAM).
    pub level_hits: Vec<u64>,
    /// Average load latency in cycles.
    pub avg_latency: f64,
    /// Boundedness fractions per level.
    pub bound: Vec<f64>,
    /// L1 hit rate.
    pub l1_hit_rate: f64,
}

impl MemsimReport {
    /// The CLI's human-readable counter block (no trailing newline).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "memsim replay: {}/{} on {} ({} layout)",
            self.workload, self.kernel, self.graph, self.scheme
        );
        let _ = writeln!(out, "  loads        {}", self.loads);
        let levels = ["L1", "L2", "L3", "DRAM"];
        for (i, level) in levels.iter().enumerate() {
            let hits = self.level_hits.get(i).copied().unwrap_or(0);
            let rate = if self.loads == 0 { 0.0 } else { num_f64(hits) / num_f64(self.loads) };
            let _ = writeln!(out, "  {level:<4} hits    {:<10} ({:.1}%)", hits, rate * 100.0);
        }
        let _ = writeln!(out, "  avg latency  {:.3} cycles", self.avg_latency);
        let bound = |i: usize| self.bound.get(i).copied().unwrap_or(0.0) * 100.0;
        let _ = write!(
            out,
            "  boundedness  L1 {:.1}% | L2 {:.1}% | L3 {:.1}% | DRAM {:.1}%",
            bound(0),
            bound(1),
            bound(2),
            bound(3)
        );
        out
    }

    /// The CLI's `--json` object (pretty-printed by the caller).
    pub fn render_json(&self) -> Json {
        Json::Obj(vec![
            ("graph".into(), Json::Str(self.graph.clone())),
            ("scheme".into(), Json::Str(self.scheme.clone())),
            ("workload".into(), Json::Str(self.workload.clone())),
            ("kernel".into(), Json::Str(self.kernel.clone())),
            ("hierarchy".into(), Json::Str("scaled_cascade_lake".into())),
            ("loads".into(), Json::Num(num_f64(self.loads))),
            (
                "level_hits".into(),
                Json::Arr(self.level_hits.iter().map(|&h| Json::Num(num_f64(h))).collect()),
            ),
            ("avg_latency".into(), Json::Num(self.avg_latency)),
            ("bound".into(), Json::Arr(self.bound.iter().map(|&b| Json::Num(b)).collect())),
            ("l1_hit_rate".into(), Json::Num(self.l1_hit_rate)),
        ])
    }
}

/// What an operation returned.
#[derive(Debug, Clone, PartialEq)]
pub enum OpReport {
    /// `stats` result.
    Stats(StatsReport),
    /// `reorder` result.
    Reorder(ReorderReport),
    /// `measure` result.
    Measure(MeasureReport),
    /// `compression` result.
    Compression(CompressionReport),
    /// `validate` result.
    Validate(ValidateReport),
    /// `memsim` result.
    Memsim(MemsimReport),
}

/// `u64` → `f64` for JSON numbers; counters stay below 2^53 so the
/// conversion is exact (the serializer asserts the same bound).
fn num_f64(x: u64) -> f64 {
    // Not a lossy semantic cast: JSON numbers *are* f64.
    let mut v = 0.0f64;
    let mut rem = x;
    // Decompose in 32-bit halves to avoid an `as` cast flagged by C1.
    let high = u32::try_from(rem >> 32).unwrap_or(u32::MAX);
    rem &= 0xFFFF_FFFF;
    let low = u32::try_from(rem).unwrap_or(u32::MAX);
    v += f64::from(high) * 4_294_967_296.0;
    v += f64::from(low);
    v
}

fn usize_f64(x: usize) -> f64 {
    num_f64(u64::try_from(x).unwrap_or(u64::MAX))
}

fn get_f64(v: &Json, key: &str) -> Result<f64, OpError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| OpError::Parse(format!("report missing number {key:?}")))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, OpError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| OpError::Parse(format!("report missing integer {key:?}")))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, OpError> {
    usize::try_from(get_u64(v, key)?).map_err(|_| OpError::Parse(format!("{key:?} out of range")))
}

fn get_str(v: &Json, key: &str) -> Result<String, OpError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| OpError::Parse(format!("report missing string {key:?}")))
}

fn get_manifest(v: &Json, key: &str) -> Result<Manifest, OpError> {
    let m = v.get(key).ok_or_else(|| OpError::Parse(format!("report missing {key:?}")))?;
    Manifest::from_json(m).map_err(|e| OpError::Parse(format!("bad manifest in report: {e}")))
}

fn gap_row_json(g: &GapRow) -> Json {
    Json::Obj(vec![
        ("avg_gap".into(), Json::Num(g.avg_gap)),
        ("bandwidth".into(), Json::Num(f64::from(g.bandwidth))),
        ("avg_bandwidth".into(), Json::Num(g.avg_bandwidth)),
        ("avg_log_gap".into(), Json::Num(g.avg_log_gap)),
    ])
}

fn gap_row_from(v: &Json, key: &str) -> Result<GapRow, OpError> {
    let g = v.get(key).ok_or_else(|| OpError::Parse(format!("report missing {key:?}")))?;
    let bandwidth = u32::try_from(get_u64(g, "bandwidth")?)
        .map_err(|_| OpError::Parse("\"bandwidth\" out of range".into()))?;
    Ok(GapRow {
        avg_gap: get_f64(g, "avg_gap")?,
        bandwidth,
        avg_bandwidth: get_f64(g, "avg_bandwidth")?,
        avg_log_gap: get_f64(g, "avg_log_gap")?,
    })
}

impl OpReport {
    /// The report's wire name (matches the request's `op_name`).
    pub fn op_name(&self) -> &'static str {
        match self {
            OpReport::Stats(_) => "stats",
            OpReport::Reorder(_) => "reorder",
            OpReport::Measure(_) => "measure",
            OpReport::Compression(_) => "compression",
            OpReport::Validate(_) => "validate",
            OpReport::Memsim(_) => "memsim",
        }
    }

    /// Wire form: an object whose `"report"` key selects the variant.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> =
            vec![("report".into(), Json::Str(self.op_name().into()))];
        match self {
            OpReport::Stats(s) => {
                pairs.push(("graph".into(), Json::Str(s.graph.clone())));
                pairs.push(("vertices".into(), Json::Num(usize_f64(s.vertices))));
                pairs.push(("edges".into(), Json::Num(usize_f64(s.edges))));
                pairs.push(("max_degree".into(), Json::Num(usize_f64(s.max_degree))));
                pairs.push(("mean_degree".into(), Json::Num(s.mean_degree)));
                pairs.push(("degree_std_dev".into(), Json::Num(s.degree_std_dev)));
                pairs.push(("triangles".into(), Json::Num(num_f64(s.triangles))));
                pairs.push(("clustering_coefficient".into(), Json::Num(s.clustering_coefficient)));
                pairs.push(("manifest".into(), s.manifest.to_json()));
            }
            OpReport::Reorder(r) => {
                pairs.push(("graph".into(), Json::Str(r.graph.clone())));
                pairs.push(("vertices".into(), Json::Num(usize_f64(r.vertices))));
                pairs.push(("edges".into(), Json::Num(usize_f64(r.edges))));
                pairs.push(("label".into(), Json::Str(r.label.clone())));
                pairs.push(("before".into(), gap_row_json(&r.before)));
                pairs.push(("after".into(), gap_row_json(&r.after)));
                pairs.push(("wall_s".into(), Json::Num(r.wall_s)));
                pairs.push(("cache_hit".into(), Json::Bool(r.cache_hit)));
                pairs.push(("manifest".into(), r.manifest.to_json()));
                if let Some(p) = &r.permutation {
                    pairs.push(("permutation".into(), Json::Str(p.clone())));
                }
            }
            OpReport::Measure(m) => {
                pairs.push(("graph".into(), Json::Str(m.graph.clone())));
                pairs.push(("vertices".into(), Json::Num(usize_f64(m.vertices))));
                pairs.push(("edges".into(), Json::Num(usize_f64(m.edges))));
                let rows = m
                    .rows
                    .iter()
                    .map(|row| {
                        Json::Obj(vec![
                            ("scheme".into(), Json::Str(row.scheme.clone())),
                            ("gaps".into(), gap_row_json(&row.gaps)),
                            ("manifest".into(), row.manifest.to_json()),
                        ])
                    })
                    .collect();
                pairs.push(("rows".into(), Json::Arr(rows)));
            }
            OpReport::Compression(c) => {
                pairs.push(("graph".into(), Json::Str(c.graph.clone())));
                pairs.push(("vertices".into(), Json::Num(usize_f64(c.vertices))));
                pairs.push(("edges".into(), Json::Num(usize_f64(c.edges))));
                pairs.push(("arcs".into(), Json::Num(usize_f64(c.arcs))));
                let rows = c
                    .rows
                    .iter()
                    .map(|row| {
                        Json::Obj(vec![
                            ("scheme".into(), Json::Str(row.scheme.clone())),
                            ("gap_bytes".into(), Json::Num(num_f64(row.gap_bytes))),
                            ("bits_per_edge".into(), Json::Num(row.bits_per_edge)),
                            ("avg_log_gap".into(), Json::Num(row.avg_log_gap)),
                            ("manifest".into(), row.manifest.to_json()),
                        ])
                    })
                    .collect();
                pairs.push(("rows".into(), Json::Arr(rows)));
            }
            OpReport::Validate(v) => {
                let files = v
                    .files
                    .iter()
                    .map(|f| {
                        let mut p = vec![
                            ("path".into(), Json::Str(f.path.clone())),
                            ("status".into(), Json::Str(f.status.clone())),
                        ];
                        if let Some(d) = &f.detail {
                            p.push(("detail".into(), Json::Str(d.clone())));
                        }
                        p.push(("vertices".into(), Json::Num(usize_f64(f.vertices))));
                        p.push(("edges".into(), Json::Num(usize_f64(f.edges))));
                        p.push(("manifest".into(), f.manifest.to_json()));
                        Json::Obj(p)
                    })
                    .collect();
                pairs.push(("files".into(), Json::Arr(files)));
            }
            OpReport::Memsim(m) => {
                pairs.push(("graph".into(), Json::Str(m.graph.clone())));
                pairs.push(("scheme".into(), Json::Str(m.scheme.clone())));
                pairs.push(("workload".into(), Json::Str(m.workload.clone())));
                pairs.push(("kernel".into(), Json::Str(m.kernel.clone())));
                pairs.push(("loads".into(), Json::Num(num_f64(m.loads))));
                pairs.push((
                    "level_hits".into(),
                    Json::Arr(m.level_hits.iter().map(|&h| Json::Num(num_f64(h))).collect()),
                ));
                pairs.push(("avg_latency".into(), Json::Num(m.avg_latency)));
                pairs.push((
                    "bound".into(),
                    Json::Arr(m.bound.iter().map(|&b| Json::Num(b)).collect()),
                ));
                pairs.push(("l1_hit_rate".into(), Json::Num(m.l1_hit_rate)));
            }
        }
        Json::Obj(pairs)
    }

    /// Decodes the wire form.
    ///
    /// # Errors
    ///
    /// [`OpError::Parse`] for any missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<OpReport, OpError> {
        let kind = v
            .get("report")
            .and_then(Json::as_str)
            .ok_or_else(|| OpError::Parse("response missing \"report\" kind".into()))?;
        match kind {
            "stats" => Ok(OpReport::Stats(StatsReport {
                graph: get_str(v, "graph")?,
                vertices: get_usize(v, "vertices")?,
                edges: get_usize(v, "edges")?,
                max_degree: get_usize(v, "max_degree")?,
                mean_degree: get_f64(v, "mean_degree")?,
                degree_std_dev: get_f64(v, "degree_std_dev")?,
                triangles: get_u64(v, "triangles")?,
                clustering_coefficient: get_f64(v, "clustering_coefficient")?,
                manifest: get_manifest(v, "manifest")?,
            })),
            "reorder" => Ok(OpReport::Reorder(ReorderReport {
                graph: get_str(v, "graph")?,
                vertices: get_usize(v, "vertices")?,
                edges: get_usize(v, "edges")?,
                label: get_str(v, "label")?,
                before: gap_row_from(v, "before")?,
                after: gap_row_from(v, "after")?,
                wall_s: get_f64(v, "wall_s")?,
                cache_hit: matches!(v.get("cache_hit"), Some(Json::Bool(true))),
                manifest: get_manifest(v, "manifest")?,
                permutation: v.get("permutation").and_then(Json::as_str).map(str::to_string),
            })),
            "measure" => {
                let rows = v
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| OpError::Parse("measure report missing \"rows\"".into()))?
                    .iter()
                    .map(|row| {
                        Ok(MeasureRow {
                            scheme: get_str(row, "scheme")?,
                            gaps: gap_row_from(row, "gaps")?,
                            manifest: get_manifest(row, "manifest")?,
                        })
                    })
                    .collect::<Result<Vec<_>, OpError>>()?;
                Ok(OpReport::Measure(MeasureReport {
                    graph: get_str(v, "graph")?,
                    vertices: get_usize(v, "vertices")?,
                    edges: get_usize(v, "edges")?,
                    rows,
                }))
            }
            "compression" => {
                let rows = v
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| OpError::Parse("compression report missing \"rows\"".into()))?
                    .iter()
                    .map(|row| {
                        Ok(CompressionRow {
                            scheme: get_str(row, "scheme")?,
                            gap_bytes: get_u64(row, "gap_bytes")?,
                            bits_per_edge: get_f64(row, "bits_per_edge")?,
                            avg_log_gap: get_f64(row, "avg_log_gap")?,
                            manifest: get_manifest(row, "manifest")?,
                        })
                    })
                    .collect::<Result<Vec<_>, OpError>>()?;
                Ok(OpReport::Compression(CompressionReport {
                    graph: get_str(v, "graph")?,
                    vertices: get_usize(v, "vertices")?,
                    edges: get_usize(v, "edges")?,
                    arcs: get_usize(v, "arcs")?,
                    rows,
                }))
            }
            "validate" => {
                let files = v
                    .get("files")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| OpError::Parse("validate report missing \"files\"".into()))?
                    .iter()
                    .map(|f| {
                        Ok(FileVerdict {
                            path: get_str(f, "path")?,
                            status: get_str(f, "status")?,
                            detail: f.get("detail").and_then(Json::as_str).map(str::to_string),
                            vertices: get_usize(f, "vertices")?,
                            edges: get_usize(f, "edges")?,
                            manifest: get_manifest(f, "manifest")?,
                        })
                    })
                    .collect::<Result<Vec<_>, OpError>>()?;
                Ok(OpReport::Validate(ValidateReport { files }))
            }
            "memsim" => {
                let nums = |key: &str| -> Result<Vec<u64>, OpError> {
                    v.get(key)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| OpError::Parse(format!("report missing array {key:?}")))?
                        .iter()
                        .map(|x| {
                            x.as_u64().ok_or_else(|| {
                                OpError::Parse(format!("{key:?} must hold integers"))
                            })
                        })
                        .collect()
                };
                let floats = |key: &str| -> Result<Vec<f64>, OpError> {
                    v.get(key)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| OpError::Parse(format!("report missing array {key:?}")))?
                        .iter()
                        .map(|x| {
                            x.as_f64()
                                .ok_or_else(|| OpError::Parse(format!("{key:?} must hold numbers")))
                        })
                        .collect()
                };
                Ok(OpReport::Memsim(MemsimReport {
                    graph: get_str(v, "graph")?,
                    scheme: get_str(v, "scheme")?,
                    workload: get_str(v, "workload")?,
                    kernel: get_str(v, "kernel")?,
                    loads: get_u64(v, "loads")?,
                    level_hits: nums("level_hits")?,
                    avg_latency: get_f64(v, "avg_latency")?,
                    bound: floats("bound")?,
                    l1_hit_rate: get_f64(v, "l1_hit_rate")?,
                }))
            }
            other => Err(OpError::Parse(format!("unknown report kind {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        let mut m = Manifest::new("stats", "g", 5, 4).with_seed(42).with_threads(2);
        m.push_measure("x", 1.5);
        m
    }

    fn sample_gaps() -> GapRow {
        GapRow { avg_gap: 3.25, bandwidth: 9, avg_bandwidth: 4.5, avg_log_gap: 1.125 }
    }

    #[test]
    fn stats_report_round_trips_and_renders() {
        let r = OpReport::Stats(StatsReport {
            graph: "g.mtx".into(),
            vertices: 5,
            edges: 4,
            max_degree: 3,
            mean_degree: 1.6,
            degree_std_dev: 0.8,
            triangles: 1,
            clustering_coefficient: 0.25,
            manifest: manifest(),
        });
        let text = r.to_json().to_line();
        let back = OpReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        if let OpReport::Stats(s) = &back {
            let rendered = s.render_text();
            assert!(rendered.starts_with("graph: g.mtx\n"));
            assert!(rendered.contains("  mean degree:            1.600"));
            assert!(rendered.ends_with("clustering coefficient: 0.2500"));
        }
    }

    #[test]
    fn reorder_and_measure_round_trip() {
        let r = OpReport::Reorder(ReorderReport {
            graph: "euroroad".into(),
            vertices: 1174,
            edges: 1417,
            label: "RCM".into(),
            before: sample_gaps(),
            after: GapRow { avg_gap: 1.0, bandwidth: 2, avg_bandwidth: 1.5, avg_log_gap: 0.5 },
            wall_s: 0.012,
            cache_hit: true,
            manifest: manifest(),
            permutation: Some("3\n0\n2\n1\n".into()),
        });
        let back = OpReport::from_json(&Json::parse(&r.to_json().to_line()).unwrap()).unwrap();
        assert_eq!(back, r);

        let m = OpReport::Measure(MeasureReport {
            graph: "g".into(),
            vertices: 5,
            edges: 4,
            rows: vec![MeasureRow {
                scheme: "RCM".into(),
                gaps: sample_gaps(),
                manifest: manifest(),
            }],
        });
        let back = OpReport::from_json(&Json::parse(&m.to_json().to_line()).unwrap()).unwrap();
        assert_eq!(back, m);
        if let OpReport::Measure(m) = &back {
            let text = m.render_text();
            assert!(text.starts_with("gap measures on g (|V|=5, |E|=4):\n"));
            assert!(text.contains("RCM "), "{text}");
            assert_eq!(m.render_jsonl().lines().count(), 1);
        }
    }

    #[test]
    fn compression_report_round_trips_and_renders() {
        let c = OpReport::Compression(CompressionReport {
            graph: "euroroad".into(),
            vertices: 1174,
            edges: 1417,
            arcs: 2834,
            rows: vec![
                CompressionRow {
                    scheme: "Natural".into(),
                    gap_bytes: 3101,
                    bits_per_edge: 8.754,
                    avg_log_gap: 5.5,
                    manifest: manifest(),
                },
                CompressionRow {
                    scheme: "RCM".into(),
                    gap_bytes: 2901,
                    bits_per_edge: 8.19,
                    avg_log_gap: 3.25,
                    manifest: manifest(),
                },
            ],
        });
        let back = OpReport::from_json(&Json::parse(&c.to_json().to_line()).unwrap()).unwrap();
        assert_eq!(back, c);
        if let OpReport::Compression(c) = &back {
            let text = c.render_text();
            assert!(
                text.starts_with(
                    "compression footprint on euroroad (|V|=1174, |E|=1417, arcs=2834):\n"
                ),
                "{text}"
            );
            assert!(text.contains("bits/edge"), "{text}");
            assert!(text.contains("RCM "), "{text}");
            assert_eq!(c.render_jsonl().lines().count(), 2);
        }
    }

    #[test]
    fn validate_and_memsim_round_trip() {
        let v = OpReport::Validate(ValidateReport {
            files: vec![
                FileVerdict {
                    path: "a.mtx".into(),
                    status: "ok".into(),
                    detail: None,
                    vertices: 5,
                    edges: 4,
                    manifest: manifest(),
                },
                FileVerdict {
                    path: "b.el".into(),
                    status: "malformed".into(),
                    detail: Some("parse error at line 3: bad arity".into()),
                    vertices: 0,
                    edges: 0,
                    manifest: manifest(),
                },
            ],
        });
        let back = OpReport::from_json(&Json::parse(&v.to_json().to_line()).unwrap()).unwrap();
        assert_eq!(back, v);
        if let OpReport::Validate(v) = &back {
            assert_eq!(v.files[0].verdict_line(), "a.mtx: ok (|V|=5, |E|=4)");
            assert_eq!(
                v.files[1].verdict_line(),
                "b.el: malformed: parse error at line 3: bad arity"
            );
            let err = v.overall().unwrap_err();
            assert_eq!(err.to_string(), "1 of 2 file(s) malformed");
            assert_eq!(err.exit_code(), 2);
        }

        let m = OpReport::Memsim(MemsimReport {
            graph: "g".into(),
            scheme: "Natural".into(),
            workload: "louvain".into(),
            kernel: "flat".into(),
            loads: 100,
            level_hits: vec![80, 10, 5, 5],
            avg_latency: 7.25,
            bound: vec![0.5, 0.25, 0.125, 0.125],
            l1_hit_rate: 0.8,
        });
        let back = OpReport::from_json(&Json::parse(&m.to_json().to_line()).unwrap()).unwrap();
        assert_eq!(back, m);
        if let OpReport::Memsim(m) = &back {
            let text = m.render_text();
            assert!(text.starts_with("memsim replay: louvain/flat on g (Natural layout)\n"));
            assert!(text.contains("L1   hits    80         (80.0%)"), "{text}");
            assert!(m.render_json().to_line().contains("scaled_cascade_lake"));
        }
    }

    #[test]
    fn large_counters_serialize_exactly() {
        assert_eq!(num_f64(0), 0.0);
        assert_eq!(num_f64(1 << 52), 4_503_599_627_370_496.0);
        assert_eq!(num_f64(123_456_789_012), 123_456_789_012.0);
    }
}
