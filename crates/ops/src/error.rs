//! The shared operation error taxonomy.
//!
//! Every frontend — the CLI binary, the serve daemon, the bench harness —
//! reports failures through [`OpError`], so the mapping from failure class
//! to process exit code (CLI) and to response status string (daemon) is
//! specified exactly once, here.

use reorderlab_core::SchemeError;
use std::fmt;

/// Why an operation failed.
///
/// The split mirrors the CLI's historical contract: *caller mistakes* the
/// invoker can fix by re-issuing the request (usage, bad scheme specs,
/// inputs diagnosed as malformed) versus *runtime failures* (I/O,
/// mid-command parse errors).
#[derive(Debug, Clone, PartialEq)]
pub enum OpError {
    /// The request itself is wrong: unknown command, missing required
    /// field, malformed flag value. Exit code 2 / status `"usage"`.
    Usage(String),
    /// A scheme spec was rejected by the registry. Exit code 2 / status
    /// `"scheme"`.
    Scheme(SchemeError),
    /// A file could not be opened, created, or written. Exit code 1 /
    /// status `"io"`.
    Io(String),
    /// An input opened but failed to parse. Exit code 1 / status
    /// `"parse"`.
    Parse(String),
    /// Validation diagnosed at least one input as malformed — a verdict,
    /// not a runtime failure. Exit code 2 / status `"malformed"`.
    Malformed(String),
}

impl OpError {
    /// The process exit code this error maps to: `2` for caller mistakes,
    /// `1` for runtime failures.
    pub fn exit_code(&self) -> u8 {
        match self {
            OpError::Usage(_) | OpError::Scheme(_) | OpError::Malformed(_) => 2,
            OpError::Io(_) | OpError::Parse(_) => 1,
        }
    }

    /// The stable status keyword the daemon reports in error responses.
    pub fn status(&self) -> &'static str {
        match self {
            OpError::Usage(_) => "usage",
            OpError::Scheme(_) => "scheme",
            OpError::Io(_) => "io",
            OpError::Parse(_) => "parse",
            OpError::Malformed(_) => "malformed",
        }
    }

    /// Reconstructs an error from its wire form (`status` keyword plus
    /// message), for clients that surface daemon errors with the same exit
    /// codes as local failures. Unknown keywords degrade to [`OpError::Io`]
    /// (a runtime failure) rather than being dropped.
    pub fn from_wire(status: &str, message: &str) -> OpError {
        match status {
            "usage" => OpError::Usage(message.to_string()),
            // Scheme errors lose their typed payload over the wire but keep
            // the exit-code class via Usage (both map to 2).
            "scheme" | "malformed" => OpError::Malformed(message.to_string()),
            "parse" => OpError::Parse(message.to_string()),
            _ => OpError::Io(message.to_string()),
        }
    }
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Usage(msg)
            | OpError::Io(msg)
            | OpError::Parse(msg)
            | OpError::Malformed(msg) => f.write_str(msg),
            OpError::Scheme(e) => write!(f, "{e}"),
        }
    }
}

impl From<SchemeError> for OpError {
    fn from(e: SchemeError) -> Self {
        OpError::Scheme(e)
    }
}

impl std::error::Error for OpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_split_caller_mistakes_from_runtime() {
        assert_eq!(OpError::Usage("x".into()).exit_code(), 2);
        assert_eq!(OpError::Scheme(SchemeError::UnknownScheme { name: "x".into() }).exit_code(), 2);
        assert_eq!(OpError::Malformed("x".into()).exit_code(), 2);
        assert_eq!(OpError::Io("x".into()).exit_code(), 1);
        assert_eq!(OpError::Parse("x".into()).exit_code(), 1);
    }

    #[test]
    fn status_keywords_are_stable() {
        assert_eq!(OpError::Usage("x".into()).status(), "usage");
        assert_eq!(
            OpError::Scheme(SchemeError::UnknownScheme { name: "x".into() }).status(),
            "scheme"
        );
        assert_eq!(OpError::Io("x".into()).status(), "io");
        assert_eq!(OpError::Parse("x".into()).status(), "parse");
        assert_eq!(OpError::Malformed("x".into()).status(), "malformed");
    }

    #[test]
    fn wire_round_trip_preserves_exit_code_class() {
        for e in [
            OpError::Usage("a".into()),
            OpError::Scheme(SchemeError::UnknownScheme { name: "x".into() }),
            OpError::Io("b".into()),
            OpError::Parse("c".into()),
            OpError::Malformed("d".into()),
        ] {
            let back = OpError::from_wire(e.status(), &e.to_string());
            assert_eq!(back.exit_code(), e.exit_code(), "{e:?}");
        }
    }
}
