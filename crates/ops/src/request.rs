//! The typed request surface: every operation a frontend can ask for.
//!
//! [`OpRequest`] is what the CLI builds from argv and what the serve
//! daemon decodes from the wire; both hand it to [`execute`]
//! (crate::exec::execute), so a request means exactly the same thing no
//! matter which frontend carried it.

use crate::error::OpError;
use crate::source::GraphSource;
use reorderlab_trace::Json;

/// One operation over a graph (or, for `validate`, over input files).
#[derive(Debug, Clone, PartialEq)]
pub enum OpRequest {
    /// Compute structural statistics (`reorderlab stats`).
    Stats {
        /// The graph to analyze.
        source: GraphSource,
    },
    /// Compute (or apply) one ordering and report gap measures before and
    /// after (`reorderlab reorder`).
    Reorder {
        /// The graph to reorder.
        source: GraphSource,
        /// Scheme spec (`rcm`, `metis:parts=16,seed=9`, …). Exactly one of
        /// `scheme` / `apply_perm` must be set.
        scheme: Option<String>,
        /// Path of a saved permutation to apply instead of computing one.
        /// Filesystem frontends only; the daemon rejects it.
        apply_perm: Option<String>,
        /// Include the permutation (text form) in the response.
        return_perm: bool,
    },
    /// Run a set of schemes and tabulate gap measures
    /// (`reorderlab measure`). An empty list means the paper's default
    /// evaluation suite.
    Measure {
        /// The graph to measure on.
        source: GraphSource,
        /// Scheme specs to run; empty selects `Scheme::evaluation_suite(42)`.
        schemes: Vec<String>,
    },
    /// Run a set of schemes and tabulate the compression footprint each
    /// ordering induces — exact gap-stream bytes and bits-per-edge
    /// (`reorderlab measure compression` / `reorderlab compression`). An
    /// empty list means the paper's default evaluation suite.
    Compression {
        /// The graph to compress.
        source: GraphSource,
        /// Scheme specs to run; empty selects `Scheme::evaluation_suite(42)`.
        schemes: Vec<String>,
    },
    /// Check input files against the ingestion contract
    /// (`reorderlab validate`). Filesystem frontends only; the daemon
    /// refuses it, like `apply_perm`.
    Validate {
        /// Paths to check.
        files: Vec<String>,
    },
    /// Replay a hot kernel's access stream through the simulated memory
    /// hierarchy (`reorderlab memsim`).
    Memsim {
        /// The graph to replay on.
        source: GraphSource,
        /// Optional layout pass before the replay.
        scheme: Option<String>,
        /// Workload: `louvain`, `rr`, or `pagerank`.
        workload: String,
        /// Kernel within the workload (`flat|blocked|packed|hashmap` for
        /// louvain, `classic|hubsplit` for rr); `None` takes the default.
        kernel: Option<String>,
    },
}

fn str_field(v: &Json, key: &str) -> Option<String> {
    v.get(key).and_then(Json::as_str).map(str::to_string)
}

fn str_list(v: &Json, key: &str) -> Result<Vec<String>, OpError> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(item) => item
            .as_arr()
            .ok_or_else(|| OpError::Parse(format!("{key:?} must be an array of strings")))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| OpError::Parse(format!("{key:?} must be an array of strings")))
            })
            .collect(),
    }
}

fn source_field(v: &Json) -> Result<GraphSource, OpError> {
    let src = v
        .get("source")
        .ok_or_else(|| OpError::Usage("request needs a \"source\" object".into()))?;
    GraphSource::from_json(src)
}

impl OpRequest {
    /// The operation's wire name (`stats`, `reorder`, …).
    pub fn op_name(&self) -> &'static str {
        match self {
            OpRequest::Stats { .. } => "stats",
            OpRequest::Reorder { .. } => "reorder",
            OpRequest::Measure { .. } => "measure",
            OpRequest::Compression { .. } => "compression",
            OpRequest::Validate { .. } => "validate",
            OpRequest::Memsim { .. } => "memsim",
        }
    }

    /// Wire form: an object whose `"op"` key selects the operation and
    /// whose remaining keys are that operation's fields.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![("op".into(), Json::Str(self.op_name().into()))];
        match self {
            OpRequest::Stats { source } => pairs.push(("source".into(), source.to_json())),
            OpRequest::Reorder { source, scheme, apply_perm, return_perm } => {
                pairs.push(("source".into(), source.to_json()));
                if let Some(s) = scheme {
                    pairs.push(("scheme".into(), Json::Str(s.clone())));
                }
                if let Some(p) = apply_perm {
                    pairs.push(("apply_perm".into(), Json::Str(p.clone())));
                }
                if *return_perm {
                    pairs.push(("return_perm".into(), Json::Bool(true)));
                }
            }
            OpRequest::Measure { source, schemes } => {
                pairs.push(("source".into(), source.to_json()));
                if !schemes.is_empty() {
                    pairs.push((
                        "schemes".into(),
                        Json::Arr(schemes.iter().map(|s| Json::Str(s.clone())).collect()),
                    ));
                }
            }
            OpRequest::Compression { source, schemes } => {
                pairs.push(("source".into(), source.to_json()));
                if !schemes.is_empty() {
                    pairs.push((
                        "schemes".into(),
                        Json::Arr(schemes.iter().map(|s| Json::Str(s.clone())).collect()),
                    ));
                }
            }
            OpRequest::Validate { files } => {
                pairs.push((
                    "files".into(),
                    Json::Arr(files.iter().map(|s| Json::Str(s.clone())).collect()),
                ));
            }
            OpRequest::Memsim { source, scheme, workload, kernel } => {
                pairs.push(("source".into(), source.to_json()));
                if let Some(s) = scheme {
                    pairs.push(("scheme".into(), Json::Str(s.clone())));
                }
                pairs.push(("workload".into(), Json::Str(workload.clone())));
                if let Some(k) = kernel {
                    pairs.push(("kernel".into(), Json::Str(k.clone())));
                }
            }
        }
        Json::Obj(pairs)
    }

    /// Decodes the wire form. Unknown extra keys (e.g. an envelope's
    /// `"threads"`) are ignored so the envelope can ride in the same
    /// object.
    ///
    /// # Errors
    ///
    /// [`OpError::Usage`] for a missing or unknown `"op"`,
    /// [`OpError::Parse`] for fields of the wrong shape.
    pub fn from_json(v: &Json) -> Result<OpRequest, OpError> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| OpError::Usage("request needs an \"op\" string".into()))?;
        match op {
            "stats" => Ok(OpRequest::Stats { source: source_field(v)? }),
            "reorder" => Ok(OpRequest::Reorder {
                source: source_field(v)?,
                scheme: str_field(v, "scheme"),
                apply_perm: str_field(v, "apply_perm"),
                return_perm: matches!(v.get("return_perm"), Some(Json::Bool(true))),
            }),
            "measure" => Ok(OpRequest::Measure {
                source: source_field(v)?,
                schemes: str_list(v, "schemes")?,
            }),
            "compression" => Ok(OpRequest::Compression {
                source: source_field(v)?,
                schemes: str_list(v, "schemes")?,
            }),
            "validate" => {
                let files = str_list(v, "files")?;
                if files.is_empty() {
                    return Err(OpError::Usage("validate needs a non-empty \"files\" list".into()));
                }
                Ok(OpRequest::Validate { files })
            }
            "memsim" => Ok(OpRequest::Memsim {
                source: source_field(v)?,
                scheme: str_field(v, "scheme"),
                workload: str_field(v, "workload").unwrap_or_else(|| "louvain".into()),
                kernel: str_field(v, "kernel"),
            }),
            other => Err(OpError::Usage(format!(
                "unknown op {other:?}; try stats|reorder|measure|compression|validate|memsim"
            ))),
        }
    }
}

/// A request plus transport-level options: the unit the daemon reads off
/// the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// The operation itself.
    pub request: OpRequest,
    /// Worker-thread bound for this request (`--threads` equivalent).
    /// Every kernel is thread-count invariant, so this only affects
    /// wall-clock time, never any output.
    pub threads: Option<usize>,
}

impl RequestEnvelope {
    /// Wraps a request with no thread bound.
    pub fn new(request: OpRequest) -> Self {
        RequestEnvelope { request, threads: None }
    }

    /// Wire form: the request object with an optional `"threads"` key.
    pub fn to_json(&self) -> Json {
        let mut json = self.request.to_json();
        if let (Json::Obj(pairs), Some(t)) = (&mut json, self.threads) {
            let t = u32::try_from(t).unwrap_or(u32::MAX);
            pairs.push(("threads".into(), Json::Num(f64::from(t))));
        }
        json
    }

    /// Decodes the wire form.
    ///
    /// # Errors
    ///
    /// As [`OpRequest::from_json`], plus [`OpError::Usage`] for a
    /// `"threads"` value that is not a positive integer.
    pub fn from_json(v: &Json) -> Result<RequestEnvelope, OpError> {
        let request = OpRequest::from_json(v)?;
        let threads = match v.get("threads") {
            None => None,
            Some(t) => {
                let t = t.as_u64().filter(|&t| t > 0).ok_or_else(|| {
                    OpError::Usage("\"threads\" must be a positive integer".into())
                })?;
                Some(usize::try_from(t).unwrap_or(usize::MAX))
            }
        };
        Ok(RequestEnvelope { request, threads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: OpRequest) {
        let j = req.to_json();
        let text = j.to_line();
        let back = OpRequest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(OpRequest::Stats { source: GraphSource::Instance("euroroad".into()) });
        round_trip(OpRequest::Reorder {
            source: GraphSource::Path("g.mtx".into()),
            scheme: Some("rcm".into()),
            apply_perm: None,
            return_perm: true,
        });
        round_trip(OpRequest::Reorder {
            source: GraphSource::Corpus("orkut".into()),
            scheme: None,
            apply_perm: Some("pi.txt".into()),
            return_perm: false,
        });
        round_trip(OpRequest::Measure {
            source: GraphSource::Instance("euroroad".into()),
            schemes: vec!["rcm".into(), "metis:parts=16,seed=9".into()],
        });
        round_trip(OpRequest::Measure {
            source: GraphSource::Instance("euroroad".into()),
            schemes: Vec::new(),
        });
        round_trip(OpRequest::Compression {
            source: GraphSource::Path("g.csrz".into()),
            schemes: vec!["natural".into(), "rcm".into()],
        });
        round_trip(OpRequest::Compression {
            source: GraphSource::Corpus("pgp".into()),
            schemes: Vec::new(),
        });
        round_trip(OpRequest::Validate { files: vec!["a.mtx".into(), "b.el".into()] });
        round_trip(OpRequest::Memsim {
            source: GraphSource::Instance("euroroad".into()),
            scheme: Some("dbg".into()),
            workload: "rr".into(),
            kernel: Some("hubsplit".into()),
        });
    }

    #[test]
    fn envelope_carries_threads() {
        let env = RequestEnvelope {
            request: OpRequest::Stats { source: GraphSource::Instance("euroroad".into()) },
            threads: Some(7),
        };
        let back = RequestEnvelope::from_json(&env.to_json()).unwrap();
        assert_eq!(back, env);
        assert_eq!(RequestEnvelope::new(env.request.clone()).threads, None);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        let bad = |text: &str| RequestEnvelope::from_json(&Json::parse(text).unwrap()).unwrap_err();
        assert_eq!(bad("{}").exit_code(), 2);
        assert_eq!(bad("{\"op\":\"frob\"}").exit_code(), 2);
        assert_eq!(bad("{\"op\":\"stats\"}").exit_code(), 2);
        assert_eq!(bad("{\"op\":\"validate\",\"files\":[]}").exit_code(), 2);
        let e = bad("{\"op\":\"stats\",\"source\":{\"instance\":\"x\"},\"threads\":0}");
        assert!(e.to_string().contains("threads"), "{e}");
    }
}
