//! Scheme-spec handling shared by every frontend.
//!
//! The grammar lives in [`Scheme::parse`]: `name[:key=val,...]` — e.g.
//! `rcm`, `random:7`, `metis:parts=64,seed=3`, `gorder:window=10`,
//! `slashburn:k_frac=0.01` — with single positional parameters accepted
//! for back-compatibility (`random:7`, `metis:64`). This module adds the
//! human help text, the [`OpError`] mapping, and the manifest-seed rule.

use crate::error::OpError;
use reorderlab_core::Scheme;

/// One-line help text listing every accepted scheme spelling.
pub fn scheme_help() -> String {
    [
        "  natural                   input order",
        "  random[:seed=S]           uniform shuffle",
        "  degree                    degree sort, decreasing",
        "  degree-asc                degree sort, increasing",
        "  hubsort                   hubs first, sorted [38]",
        "  hubcluster                hubs first, natural order [2]",
        "  slashburn[:k_frac=F]      iterative hub slashing [21] (default 0.005)",
        "  gorder[:window=W]         windowed Gscore greedy [37] (default 5)",
        "  rcm                       Reverse Cuthill-McKee [9]",
        "  cdfs                      Children-DFS (RCM without degree sort) [3]",
        "  nd[:seed=S]               nested dissection [15,23]",
        "  metis[:parts=P,seed=S]    partition-induced order [22] (default 32 parts)",
        "  grappolo[:threads=T]      community-contiguous (parallel Louvain) [28]",
        "  grappolo-rcm[:threads=T]  communities ordered by RCM (this paper)",
        "  rabbit                    incremental-aggregation communities [1]",
        "  dbg                       degree-based grouping, log2 buckets",
        "  hubsort-dbg               DBG with hubs degree-sorted in-bucket",
        "  hubcluster-dbg            DBG hot buckets + natural cold block",
        "  comm-bfs                  Louvain communities, BFS within each",
        "  comm-dfs                  Louvain communities, DFS within each",
        "  comm-degree               Louvain communities, degree-sorted within",
        "  adaptive                  picks a scheme from structural features",
        "",
        "  single positional values keep working: random:7, metis:64,",
        "  gorder:10, slashburn:0.01, nd:3",
    ]
    .join("\n")
}

/// Parses a scheme spec via [`Scheme::parse`], mapping failures onto
/// [`OpError::Scheme`] (exit code 2 / status `"scheme"`).
///
/// # Errors
///
/// [`OpError::Scheme`] wrapping the registry's typed
/// [`SchemeError`](reorderlab_core::SchemeError).
pub fn parse_scheme(spec: &str) -> Result<Scheme, OpError> {
    Scheme::parse(spec).map_err(OpError::from)
}

/// The seed a scheme's manifest should report: the scheme's own seed
/// parameter where it has one, otherwise the frontend-wide default of 42.
pub fn scheme_seed(scheme: &Scheme) -> u64 {
    match *scheme {
        Scheme::Random { seed }
        | Scheme::NestedDissection { seed }
        | Scheme::Metis { seed, .. } => seed,
        _ => 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_names_and_parameters() {
        assert_eq!(parse_scheme("rcm").unwrap(), Scheme::Rcm);
        assert_eq!(parse_scheme("random:7").unwrap(), Scheme::Random { seed: 7 });
        assert_eq!(
            parse_scheme("metis:parts=16,seed=9").unwrap(),
            Scheme::Metis { parts: 16, seed: 9 }
        );
    }

    #[test]
    fn failures_carry_exit_code_two_and_list_accepted_names() {
        let err = parse_scheme("nope").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("accepted schemes:"), "{msg}");
        for name in Scheme::ACCEPTED_NAMES {
            assert!(msg.contains(name), "error must list {name}: {msg}");
        }
    }

    #[test]
    fn help_mentions_every_scheme() {
        let help = scheme_help();
        for name in Scheme::ACCEPTED_NAMES {
            assert!(help.contains(name), "help missing {name}");
        }
    }

    #[test]
    fn seed_rule_matches_the_manifest_contract() {
        assert_eq!(scheme_seed(&Scheme::Rcm), 42);
        assert_eq!(scheme_seed(&Scheme::Random { seed: 7 }), 7);
        assert_eq!(scheme_seed(&Scheme::Metis { parts: 8, seed: 9 }), 9);
        assert_eq!(scheme_seed(&Scheme::NestedDissection { seed: 3 }), 3);
    }
}
