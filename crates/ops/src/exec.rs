//! Execution: turning an [`OpRequest`] into an [`OpReport`].
//!
//! `execute` is the single implementation behind both frontends; the CLI
//! calls it with the filesystem resolver and the compute-always
//! permutation source, the daemon injects its corpus resolver and its
//! permutation cache. Behavior (numbers, manifests, error strings) is
//! identical by construction.

use crate::error::OpError;
use crate::report::{
    CompressionReport, CompressionRow, FileVerdict, GapRow, MeasureReport, MeasureRow,
    MemsimReport, OpReport, ReorderReport, StatsReport, ValidateReport,
};
use crate::request::OpRequest;
use crate::schemes::{parse_scheme, scheme_seed};
use crate::source::{read_graph_auto, ResolveGraph, ResolvedGraph};
use reorderlab_core::measures::{gap_measures, try_compression_measures, GapMeasures};
use reorderlab_core::Scheme;
use reorderlab_graph::{Csr, GraphStats, Permutation};
use reorderlab_trace::{Manifest, Recorder, RunRecorder};
use std::fs::File;
use std::io::BufReader;
use std::sync::Arc;

/// Where `reorder`/`measure` orderings come from.
///
/// The CLI always computes ([`ComputePerm`]); the daemon consults its
/// permutation cache first and reports whether the request hit it.
pub trait PermSource {
    /// Produces the ordering `scheme` defines on `resolved`, together with
    /// whether it came from a cache.
    ///
    /// # Errors
    ///
    /// [`OpError::Scheme`] when the scheme rejects the graph.
    fn ordering(
        &mut self,
        resolved: &ResolvedGraph,
        scheme: &Scheme,
        rec: &mut RunRecorder,
    ) -> Result<(Arc<Permutation>, bool), OpError>;
}

/// The cache-free permutation source: always runs the scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct ComputePerm;

impl PermSource for ComputePerm {
    fn ordering(
        &mut self,
        resolved: &ResolvedGraph,
        scheme: &Scheme,
        rec: &mut RunRecorder,
    ) -> Result<(Arc<Permutation>, bool), OpError> {
        let pi = scheme.try_reorder_recorded(&resolved.graph, rec).map_err(OpError::Scheme)?;
        Ok((Arc::new(pi), false))
    }
}

/// An executed operation: the report plus the artifacts a frontend may
/// still need (the CLI writes `--out`/`--perm` files from these).
#[derive(Debug, Clone)]
pub struct OpOutcome {
    /// The typed result.
    pub report: OpReport,
    /// The ordering a `reorder` produced.
    pub permutation: Option<Arc<Permutation>>,
    /// The resolved input graph of a `reorder` (for writing the permuted
    /// graph out).
    pub graph: Option<Arc<Csr>>,
}

impl OpOutcome {
    fn report_only(report: OpReport) -> OpOutcome {
        OpOutcome { report, permutation: None, graph: None }
    }
}

/// Runs `f` under a worker-thread bound, like the CLI's global
/// `--threads N`. Every kernel is thread-count invariant, so the bound
/// only affects wall-clock time, never any output.
///
/// # Errors
///
/// [`OpError::Usage`] for a zero bound, [`OpError::Io`] when the pool
/// cannot be built, plus whatever `f` returns.
pub fn run_with_threads<T>(
    threads: Option<usize>,
    f: impl FnOnce() -> Result<T, OpError> + Send,
) -> Result<T, OpError>
where
    T: Send,
{
    match threads {
        None => f(),
        Some(0) => Err(OpError::Usage("--threads must be at least 1".into())),
        Some(t) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .map_err(|e| OpError::Io(format!("cannot build thread pool: {e}")))?;
            pool.install(f)
        }
    }
}

/// Executes `request`, computing orderings from scratch.
///
/// # Errors
///
/// Any [`OpError`] the operation produces (resolution, scheme, I/O).
pub fn execute(request: &OpRequest, resolver: &dyn ResolveGraph) -> Result<OpOutcome, OpError> {
    execute_with(request, resolver, &mut ComputePerm)
}

/// Executes `request` with an injected permutation source (the daemon's
/// cache).
///
/// # Errors
///
/// Any [`OpError`] the operation produces (resolution, scheme, I/O).
pub fn execute_with(
    request: &OpRequest,
    resolver: &dyn ResolveGraph,
    perms: &mut dyn PermSource,
) -> Result<OpOutcome, OpError> {
    match request {
        OpRequest::Stats { source } => {
            let resolved = resolver.resolve(source)?;
            Ok(OpOutcome::report_only(OpReport::Stats(exec_stats(&resolved))))
        }
        OpRequest::Reorder { source, scheme, apply_perm, return_perm } => {
            let resolved = resolver.resolve(source)?;
            exec_reorder(&resolved, scheme.as_deref(), apply_perm.as_deref(), *return_perm, perms)
        }
        OpRequest::Measure { source, schemes } => {
            let resolved = resolver.resolve(source)?;
            Ok(OpOutcome::report_only(OpReport::Measure(exec_measure(&resolved, schemes, perms)?)))
        }
        OpRequest::Compression { source, schemes } => {
            let resolved = resolver.resolve(source)?;
            Ok(OpOutcome::report_only(OpReport::Compression(exec_compression(
                &resolved, schemes, perms,
            )?)))
        }
        OpRequest::Validate { files } => {
            Ok(OpOutcome::report_only(OpReport::Validate(exec_validate(files))))
        }
        OpRequest::Memsim { source, scheme, workload, kernel } => {
            let resolved = resolver.resolve(source)?;
            Ok(OpOutcome::report_only(OpReport::Memsim(exec_memsim(
                &resolved,
                scheme.as_deref(),
                workload,
                kernel.as_deref(),
            )?)))
        }
    }
}

fn gap_row(m: &GapMeasures) -> GapRow {
    GapRow {
        avg_gap: m.avg_gap,
        bandwidth: m.bandwidth,
        avg_bandwidth: m.avg_bandwidth,
        avg_log_gap: m.avg_log_gap,
    }
}

fn exec_stats(resolved: &ResolvedGraph) -> StatsReport {
    let g = &resolved.graph;
    let mut rec = RunRecorder::new();
    rec.span_enter("stats");
    let s = GraphStats::compute(g);
    rec.span_exit("stats");
    let mut m = Manifest::new("stats", &resolved.id, g.num_vertices(), g.num_edges())
        .with_seed(42)
        .with_threads(rayon::current_num_threads());
    m.absorb(&rec);
    m.push_measure("max_degree", int_f64(s.max_degree));
    m.push_measure("mean_degree", s.mean_degree);
    m.push_measure("degree_std_dev", s.degree_std_dev);
    m.push_measure("triangles", u64_f64(s.triangles));
    m.push_measure("clustering_coefficient", s.clustering_coefficient);
    StatsReport {
        graph: resolved.id.clone(),
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        max_degree: s.max_degree,
        mean_degree: s.mean_degree,
        degree_std_dev: s.degree_std_dev,
        triangles: s.triangles,
        clustering_coefficient: s.clustering_coefficient,
        manifest: m,
    }
}

fn exec_reorder(
    resolved: &ResolvedGraph,
    scheme_spec: Option<&str>,
    apply_perm: Option<&str>,
    return_perm: bool,
    perms: &mut dyn PermSource,
) -> Result<OpOutcome, OpError> {
    let g = Arc::clone(&resolved.graph);
    let mut rec = RunRecorder::new();
    let t0 = std::time::Instant::now();
    // Either compute an ordering from a scheme, or apply a saved one.
    let (pi, label, scheme, cache_hit) = if let Some(path) = apply_perm {
        let file = File::open(path).map_err(|e| OpError::Io(format!("cannot open {path}: {e}")))?;
        let pi = Permutation::read_text(BufReader::new(file))
            .map_err(|e| OpError::Parse(format!("failed to parse {path}: {e}")))?;
        if pi.len() != g.num_vertices() {
            return Err(OpError::Parse(format!(
                "permutation covers {} vertices but the graph has {}",
                pi.len(),
                g.num_vertices()
            )));
        }
        (Arc::new(pi), format!("perm file {path}"), None, false)
    } else {
        let spec = scheme_spec.ok_or_else(|| {
            OpError::Usage("need --scheme NAME or --apply-perm FILE (see `reorderlab list`)".into())
        })?;
        let scheme = parse_scheme(spec)?;
        let (pi, hit) = perms.ordering(resolved, &scheme, &mut rec)?;
        (pi, scheme.name().to_string(), Some(scheme), hit)
    };
    let elapsed = t0.elapsed();
    rec.span_enter("measure");
    let before = gap_measures(&g, &Permutation::identity(g.num_vertices()));
    let after = gap_measures(&g, &pi);
    rec.span_exit("measure");
    let mut m = Manifest::new("reorder", &resolved.id, g.num_vertices(), g.num_edges())
        .with_seed(scheme.as_ref().map_or(42, scheme_seed))
        .with_threads(rayon::current_num_threads());
    if let Some(s) = &scheme {
        m = m.with_scheme(s.name(), &s.spec());
    } else {
        m.push_note("source", &label);
    }
    m.absorb(&rec);
    m.push_measure("reorder_wall_s", elapsed.as_secs_f64());
    m.push_measure("avg_gap_before", before.avg_gap);
    m.push_measure("avg_gap", after.avg_gap);
    m.push_measure("bandwidth_before", f64::from(before.bandwidth));
    m.push_measure("bandwidth", f64::from(after.bandwidth));
    m.push_measure("avg_bandwidth_before", before.avg_bandwidth);
    m.push_measure("avg_bandwidth", after.avg_bandwidth);
    m.push_measure("avg_log_gap", after.avg_log_gap);
    let permutation = if return_perm {
        let mut buf = Vec::new();
        pi.write_text(&mut buf).map_err(|e| OpError::Io(e.to_string()))?;
        Some(String::from_utf8(buf).map_err(|e| OpError::Io(e.to_string()))?)
    } else {
        None
    };
    let report = ReorderReport {
        graph: resolved.id.clone(),
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        label,
        before: gap_row(&before),
        after: gap_row(&after),
        wall_s: elapsed.as_secs_f64(),
        cache_hit,
        manifest: m,
        permutation,
    };
    Ok(OpOutcome { report: OpReport::Reorder(report), permutation: Some(pi), graph: Some(g) })
}

fn exec_measure(
    resolved: &ResolvedGraph,
    specs: &[String],
    perms: &mut dyn PermSource,
) -> Result<MeasureReport, OpError> {
    let g = &resolved.graph;
    // Parse every spec up front so a bad one fails the whole request
    // before any scheme runs (matching the CLI).
    let mut schemes: Vec<Scheme> = Vec::new();
    for s in specs {
        schemes.push(parse_scheme(s)?);
    }
    if schemes.is_empty() {
        schemes = Scheme::evaluation_suite(42);
    }
    let mut rows = Vec::with_capacity(schemes.len());
    for scheme in schemes {
        let mut rec = RunRecorder::new();
        let (pi, _) = perms.ordering(resolved, &scheme, &mut rec)?;
        rec.span_enter("measure");
        let m = gap_measures(g, &pi);
        rec.span_exit("measure");
        let mut man = Manifest::new("measure", &resolved.id, g.num_vertices(), g.num_edges())
            .with_scheme(scheme.name(), &scheme.spec())
            .with_seed(scheme_seed(&scheme))
            .with_threads(rayon::current_num_threads());
        man.absorb(&rec);
        man.push_measure("avg_gap", m.avg_gap);
        man.push_measure("bandwidth", f64::from(m.bandwidth));
        man.push_measure("avg_bandwidth", m.avg_bandwidth);
        man.push_measure("avg_log_gap", m.avg_log_gap);
        rows.push(MeasureRow {
            scheme: scheme.name().to_string(),
            gaps: gap_row(&m),
            manifest: man,
        });
    }
    Ok(MeasureReport {
        graph: resolved.id.clone(),
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        rows,
    })
}

fn exec_compression(
    resolved: &ResolvedGraph,
    specs: &[String],
    perms: &mut dyn PermSource,
) -> Result<CompressionReport, OpError> {
    let g = &resolved.graph;
    // Parse every spec up front so a bad one fails the whole request
    // before any scheme runs (matching `measure`).
    let mut schemes: Vec<Scheme> = Vec::new();
    for s in specs {
        schemes.push(parse_scheme(s)?);
    }
    if schemes.is_empty() {
        schemes = Scheme::evaluation_suite(42);
    }
    let mut rows = Vec::with_capacity(schemes.len());
    for scheme in schemes {
        let mut rec = RunRecorder::new();
        let (pi, _) = perms.ordering(resolved, &scheme, &mut rec)?;
        rec.span_enter("compress");
        // Unreachable in practice: the ordering was produced for this very
        // graph, so the lengths agree; keep the plumbing typed regardless.
        let comp = try_compression_measures(g, &pi)
            .map_err(|e| OpError::Parse(format!("{}: {e}", scheme.name())))?;
        let gaps = gap_measures(g, &pi);
        rec.span_exit("compress");
        let mut man = Manifest::new("compression", &resolved.id, g.num_vertices(), g.num_edges())
            .with_scheme(scheme.name(), &scheme.spec())
            .with_seed(scheme_seed(&scheme))
            .with_threads(rayon::current_num_threads());
        man.absorb(&rec);
        man.push_measure("gap_bytes", u64_f64(comp.gap_bytes));
        man.push_measure("bits_per_edge", comp.bits_per_edge);
        man.push_measure("avg_log_gap", gaps.avg_log_gap);
        rows.push(CompressionRow {
            scheme: scheme.name().to_string(),
            gap_bytes: comp.gap_bytes,
            bits_per_edge: comp.bits_per_edge,
            avg_log_gap: gaps.avg_log_gap,
            manifest: man,
        });
    }
    Ok(CompressionReport {
        graph: resolved.id.clone(),
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        arcs: g.num_arcs(),
        rows,
    })
}

/// The outcome of validating one input file.
enum Verdict {
    /// Parsed cleanly into a graph of this size.
    Clean { vertices: usize, edges: usize },
    /// The file could not be opened or read at all.
    Unreadable(String),
    /// The file opened but the reader rejected it; the message carries a
    /// 1-based line number (`parse error at line N: …`).
    Malformed(String),
}

/// Parses one file with the reader its extension selects (the same
/// dispatch as [`read_graph_auto`]), without building anything downstream.
fn validate_file(path: &str) -> Verdict {
    match read_graph_auto(path) {
        Ok(g) => Verdict::Clean { vertices: g.num_vertices(), edges: g.num_edges() },
        // `read_graph_auto` wraps messages with the path for command
        // errors; validate verdicts historically carry the bare reader
        // message, so strip the prefix it added.
        Err(OpError::Io(msg)) => {
            Verdict::Unreadable(strip_prefix(&msg, &format!("cannot open {path}: ")))
        }
        Err(e) => {
            Verdict::Malformed(strip_prefix(&e.to_string(), &format!("failed to parse {path}: ")))
        }
    }
}

fn strip_prefix(msg: &str, prefix: &str) -> String {
    msg.strip_prefix(prefix).unwrap_or(msg).to_string()
}

fn exec_validate(files: &[String]) -> ValidateReport {
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let verdict = validate_file(path);
        let (status, detail, vertices, edges) = match verdict {
            Verdict::Clean { vertices, edges } => ("ok", None, vertices, edges),
            Verdict::Unreadable(msg) => ("unreadable", Some(msg), 0, 0),
            Verdict::Malformed(msg) => ("malformed", Some(msg), 0, 0),
        };
        let mut m = Manifest::new("validate", path, vertices, edges)
            .with_seed(42)
            .with_threads(rayon::current_num_threads());
        m.push_note("status", status);
        if let Some(msg) = &detail {
            m.push_note("error", msg);
        }
        out.push(FileVerdict {
            path: path.clone(),
            status: status.to_string(),
            detail,
            vertices,
            edges,
            manifest: m,
        });
    }
    ValidateReport { files: out }
}

fn exec_memsim(
    resolved: &ResolvedGraph,
    scheme_spec: Option<&str>,
    workload: &str,
    kernel: Option<&str>,
) -> Result<MemsimReport, OpError> {
    use reorderlab_memsim::{
        replay_louvain_move, replay_pagerank_iteration, replay_rr_kernel, Hierarchy,
        HierarchyConfig, LouvainReplayKernel, RrReplayKernel,
    };

    let g = &resolved.graph;
    // Optional reordering pass first: replay the laid-out graph, keeping
    // the original vertex labels so every layout walks the same logical
    // traversal (matching the `bench snapshot` corpus semantics).
    let (g, scheme_name, labels) = match scheme_spec {
        Some(spec) => {
            let scheme = parse_scheme(spec)?;
            scheme
                .validate(g.num_vertices())
                .map_err(|e| OpError::Usage(format!("scheme {spec:?}: {e}")))?;
            let pi = scheme.reorder(g);
            let labels = pi.to_order();
            let laid_out = g
                .permuted(&pi)
                .map_err(|e| OpError::Parse(format!("permutation rejected: {e}")))?;
            (laid_out, scheme.name().to_string(), labels)
        }
        None => {
            let labels = (0..u32::try_from(g.num_vertices()).unwrap_or(u32::MAX)).collect();
            (Csr::clone(g), "Natural".to_string(), labels)
        }
    };

    let mut hier = Hierarchy::new(HierarchyConfig::scaled_cascade_lake());
    let kernel_name: String = match workload {
        "louvain" => {
            let k = match kernel.unwrap_or("flat") {
                "flat" => LouvainReplayKernel::FlatScatter,
                "blocked" => LouvainReplayKernel::Blocked,
                "packed" => LouvainReplayKernel::Packed,
                "hashmap" => LouvainReplayKernel::HashMap { map_slots: 4096 },
                other => {
                    return Err(OpError::Usage(format!(
                        "unknown louvain kernel {other:?}; try flat|blocked|packed|hashmap"
                    )))
                }
            };
            replay_louvain_move(&g, k, &mut hier);
            kernel.unwrap_or("flat").to_string()
        }
        "rr" => {
            let k = match kernel.unwrap_or("classic") {
                "classic" => RrReplayKernel::Classic,
                "hubsplit" => RrReplayKernel::HubSplit,
                other => {
                    return Err(OpError::Usage(format!(
                        "unknown rr kernel {other:?}; try classic|hubsplit"
                    )))
                }
            };
            // Snapshot-corpus parameters: p = 0.25, 64 sets, seed 7.
            replay_rr_kernel(&g, &labels, 0.25, 64, 7, k, &mut hier);
            kernel.unwrap_or("classic").to_string()
        }
        "pagerank" => {
            if let Some(other) = kernel {
                return Err(OpError::Usage(format!(
                    "pagerank has a single pull kernel, got --kernel {other:?}"
                )));
            }
            replay_pagerank_iteration(&g, &mut hier);
            "pull".to_string()
        }
        other => {
            return Err(OpError::Usage(format!(
                "unknown workload {other:?}; try louvain|rr|pagerank"
            )))
        }
    };

    let r = hier.report();
    Ok(MemsimReport {
        graph: resolved.id.clone(),
        scheme: scheme_name,
        workload: workload.to_string(),
        kernel: kernel_name,
        loads: r.loads,
        level_hits: r.level_hits.to_vec(),
        avg_latency: r.avg_latency,
        bound: r.bound.to_vec(),
        l1_hit_rate: r.l1_hit_rate(),
    })
}

/// `usize` → exact `f64` for manifest measures (counts stay below 2^53).
fn int_f64(x: usize) -> f64 {
    u64_f64(u64::try_from(x).unwrap_or(u64::MAX))
}

/// `u64` → exact `f64` without a lossy `as` cast.
fn u64_f64(x: u64) -> f64 {
    let high = u32::try_from(x >> 32).unwrap_or(u32::MAX);
    let low = u32::try_from(x & 0xFFFF_FFFF).unwrap_or(u32::MAX);
    f64::from(high) * 4_294_967_296.0 + f64::from(low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FsResolver, GraphSource};

    fn instance(name: &str) -> GraphSource {
        GraphSource::Instance(name.into())
    }

    #[test]
    fn stats_matches_direct_computation() {
        let req = OpRequest::Stats { source: instance("euroroad") };
        let out = execute(&req, &FsResolver).unwrap();
        let OpReport::Stats(s) = &out.report else { panic!("wrong report") };
        let g = reorderlab_datasets::by_name("euroroad").unwrap().generate();
        let direct = GraphStats::compute(&g);
        assert_eq!(s.vertices, direct.num_vertices);
        assert_eq!(s.edges, direct.num_edges);
        assert_eq!(s.max_degree, direct.max_degree);
        assert_eq!(s.triangles, direct.triangles);
        assert_eq!(s.manifest.command, "stats");
        assert_eq!(s.manifest.measure("triangles"), Some(u64_f64(direct.triangles)));
    }

    #[test]
    fn reorder_produces_permutation_and_manifest() {
        let req = OpRequest::Reorder {
            source: instance("euroroad"),
            scheme: Some("rcm".into()),
            apply_perm: None,
            return_perm: true,
        };
        let out = execute(&req, &FsResolver).unwrap();
        let OpReport::Reorder(r) = &out.report else { panic!("wrong report") };
        assert_eq!(r.label, "RCM");
        assert!(!r.cache_hit);
        assert!(r.after.bandwidth <= r.before.bandwidth);
        let pi = out.permutation.as_ref().unwrap();
        assert_eq!(pi.len(), r.vertices);
        // The returned text form round-trips to the same permutation.
        let text = r.permutation.as_ref().unwrap();
        let parsed = Permutation::read_text(text.as_bytes()).unwrap();
        assert_eq!(&parsed, pi.as_ref());
    }

    #[test]
    fn reorder_without_scheme_or_perm_is_usage() {
        let req = OpRequest::Reorder {
            source: instance("euroroad"),
            scheme: None,
            apply_perm: None,
            return_perm: false,
        };
        let err = execute(&req, &FsResolver).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--scheme"));
    }

    #[test]
    fn measure_defaults_to_the_evaluation_suite() {
        let req = OpRequest::Measure { source: instance("euroroad"), schemes: Vec::new() };
        let out = execute(&req, &FsResolver).unwrap();
        let OpReport::Measure(m) = &out.report else { panic!("wrong report") };
        assert_eq!(m.rows.len(), Scheme::evaluation_suite(42).len());
        for row in &m.rows {
            assert_eq!(row.manifest.command, "measure");
            assert_eq!(row.manifest.measure("avg_gap"), Some(row.gaps.avg_gap));
        }
    }

    #[test]
    fn compression_reports_exact_footprints() {
        use reorderlab_core::measures::try_compression_measures;
        let req = OpRequest::Compression {
            source: instance("euroroad"),
            schemes: vec!["natural".into(), "rcm".into()],
        };
        let out = execute(&req, &FsResolver).unwrap();
        let OpReport::Compression(c) = &out.report else { panic!("wrong report") };
        assert_eq!(c.rows.len(), 2);
        assert_eq!(c.arcs, 2 * c.edges);
        // The natural row must match the measure computed directly.
        let g = reorderlab_datasets::by_name("euroroad").unwrap().generate();
        let direct =
            try_compression_measures(&g, &Permutation::identity(g.num_vertices())).unwrap();
        assert_eq!(c.rows[0].gap_bytes, direct.gap_bytes);
        assert_eq!(c.rows[0].bits_per_edge, direct.bits_per_edge);
        for row in &c.rows {
            assert_eq!(row.manifest.command, "compression");
            assert_eq!(row.manifest.measure("gap_bytes"), Some(u64_f64(row.gap_bytes)));
            assert_eq!(row.manifest.measure("bits_per_edge"), Some(row.bits_per_edge));
            // Realized cost never beats its information-theoretic bound.
            assert!(row.avg_log_gap <= row.bits_per_edge, "{row:?}");
        }
        // RCM improves (or at worst matches) the natural footprint on this
        // locality-friendly road network.
        assert!(c.rows[1].gap_bytes <= c.rows[0].gap_bytes);
    }

    #[test]
    fn compression_defaults_to_the_evaluation_suite() {
        let req = OpRequest::Compression { source: instance("euroroad"), schemes: Vec::new() };
        let out = execute(&req, &FsResolver).unwrap();
        let OpReport::Compression(c) = &out.report else { panic!("wrong report") };
        assert_eq!(c.rows.len(), Scheme::evaluation_suite(42).len());
    }

    #[test]
    fn executions_are_deterministic() {
        let req = OpRequest::Measure {
            source: instance("euroroad"),
            schemes: vec!["rcm".into(), "dbg".into()],
        };
        let a = execute(&req, &FsResolver).unwrap();
        let b = execute(&req, &FsResolver).unwrap();
        let (OpReport::Measure(a), OpReport::Measure(b)) = (&a.report, &b.report) else {
            panic!("wrong reports")
        };
        assert_eq!(a.render_text(), b.render_text());
    }

    #[test]
    fn validate_reports_mixed_verdicts() {
        let dir = std::env::temp_dir();
        let ok = dir.join(format!("ops_exec_ok_{}.el", std::process::id()));
        std::fs::write(&ok, "0 1\n1 2\n").unwrap();
        let bad = dir.join(format!("ops_exec_bad_{}.mtx", std::process::id()));
        std::fs::write(&bad, "garbage\n").unwrap();
        let req = OpRequest::Validate {
            files: vec![
                ok.to_string_lossy().into_owned(),
                bad.to_string_lossy().into_owned(),
                "/nonexistent/x.el".into(),
            ],
        };
        let out = execute(&req, &FsResolver).unwrap();
        let OpReport::Validate(v) = &out.report else { panic!("wrong report") };
        assert_eq!(v.files[0].status, "ok");
        assert_eq!(v.files[1].status, "malformed");
        assert_eq!(v.files[2].status, "unreadable");
        // Malformed dominates unreadable in the overall verdict.
        assert_eq!(v.overall().unwrap_err().exit_code(), 2);
        let _ = std::fs::remove_file(&ok);
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn memsim_replays_deterministically() {
        let req = OpRequest::Memsim {
            source: instance("euroroad"),
            scheme: Some("dbg".into()),
            workload: "rr".into(),
            kernel: Some("classic".into()),
        };
        let a = execute(&req, &FsResolver).unwrap();
        let b = execute(&req, &FsResolver).unwrap();
        let (OpReport::Memsim(a), OpReport::Memsim(b)) = (&a.report, &b.report) else {
            panic!("wrong reports")
        };
        assert_eq!(a, b);
        assert!(a.loads > 0);
        assert_eq!(a.scheme, "DBG");
    }

    #[test]
    fn thread_bound_never_changes_results() {
        let req = OpRequest::Measure { source: instance("euroroad"), schemes: vec!["rcm".into()] };
        let base = execute(&req, &FsResolver).unwrap();
        let OpReport::Measure(base) = base.report else { panic!("wrong report") };
        for t in [1usize, 2, 7] {
            let out = run_with_threads(Some(t), || execute(&req, &FsResolver)).unwrap();
            let OpReport::Measure(m) = out.report else { panic!("wrong report") };
            assert_eq!(m.render_text(), base.render_text(), "threads={t}");
        }
        assert!(run_with_threads(Some(0), || Ok(())).is_err());
    }
}
