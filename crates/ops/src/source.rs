//! Graph resolution: where an operation's input graph comes from.
//!
//! [`GraphSource`] names a graph in one of three ways — a file path, a
//! named generator instance, or an entry of a preloaded corpus — and a
//! [`ResolveGraph`] implementation turns the name into an in-memory
//! [`Csr`]. The filesystem resolver here serves the CLI; the serve daemon
//! supplies its own corpus-backed resolver so graphs parse once per
//! process, not once per request.

use crate::error::OpError;
use reorderlab_datasets::by_name;
use reorderlab_graph::{
    read_binary_csr, read_compressed_csr, read_edge_list, read_matrix_market, read_metis,
    write_binary_csr, write_compressed_csr, write_edge_list, write_matrix_market, write_metis,
    CompressedCsr, Csr,
};
use reorderlab_trace::Json;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::sync::Arc;

/// Where an operation's input graph comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSource {
    /// A file on disk; the reader is selected by extension (`.mtx` Matrix
    /// Market, `.graph`/`.metis` METIS, `.csrbin` checksummed binary CSR,
    /// `.csrz` compressed CSR, `.el` edge list). Unrecognized extensions
    /// are a typed usage error, never a silent edge-list fallthrough.
    Path(String),
    /// A named instance of the generated evaluation suite
    /// (`reorderlab_datasets::by_name`).
    Instance(String),
    /// A named entry of a preloaded corpus (serve daemon only; the
    /// filesystem resolver rejects it).
    Corpus(String),
}

impl GraphSource {
    /// The display identity used in reports and manifests: the path,
    /// instance name, or corpus entry name.
    pub fn id(&self) -> &str {
        match self {
            GraphSource::Path(s) | GraphSource::Instance(s) | GraphSource::Corpus(s) => s,
        }
    }

    /// Wire form: `{"path": …}` / `{"instance": …}` / `{"corpus": …}`.
    pub fn to_json(&self) -> Json {
        let (key, value) = match self {
            GraphSource::Path(s) => ("path", s),
            GraphSource::Instance(s) => ("instance", s),
            GraphSource::Corpus(s) => ("corpus", s),
        };
        Json::Obj(vec![(key.to_string(), Json::Str(value.clone()))])
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// [`OpError::Parse`] unless the value is an object with exactly one of
    /// the three recognized keys mapping to a string.
    pub fn from_json(v: &Json) -> Result<GraphSource, OpError> {
        let take = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        match (take("path"), take("instance"), take("corpus")) {
            (Some(p), None, None) => Ok(GraphSource::Path(p)),
            (None, Some(i), None) => Ok(GraphSource::Instance(i)),
            (None, None, Some(c)) => Ok(GraphSource::Corpus(c)),
            _ => Err(OpError::Parse(
                "graph source must be exactly one of {\"path\"|\"instance\"|\"corpus\": name}"
                    .into(),
            )),
        }
    }
}

/// A resolved graph plus the identity metadata operations report with.
#[derive(Debug, Clone)]
pub struct ResolvedGraph {
    /// The graph itself, shared so resolvers can hand out corpus entries
    /// without copying.
    pub graph: Arc<Csr>,
    /// Display identity (path, instance, or corpus entry name).
    pub id: String,
    /// Content digest when the resolver knows it (corpus entries compute it
    /// at load time); `None` means "compute on demand if needed".
    pub digest: Option<u64>,
}

/// Turns a [`GraphSource`] into an in-memory graph.
pub trait ResolveGraph {
    /// Resolves `source`.
    ///
    /// # Errors
    ///
    /// [`OpError`] describing why the source cannot be resolved (missing
    /// file, unknown instance, unsupported source kind, parse failure).
    fn resolve(&self, source: &GraphSource) -> Result<ResolvedGraph, OpError>;
}

/// The CLI's resolver: paths from the filesystem, instances from the
/// generator registry, no corpus.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsResolver;

impl ResolveGraph for FsResolver {
    fn resolve(&self, source: &GraphSource) -> Result<ResolvedGraph, OpError> {
        match source {
            GraphSource::Path(path) => {
                let g = read_graph_auto(path)?;
                Ok(ResolvedGraph { graph: Arc::new(g), id: path.clone(), digest: None })
            }
            GraphSource::Instance(name) => {
                let spec = by_name(name).ok_or_else(|| {
                    OpError::Usage(format!("unknown instance {name:?}; see `reorderlab list`"))
                })?;
                Ok(ResolvedGraph {
                    graph: Arc::new(spec.generate()),
                    id: name.clone(),
                    digest: None,
                })
            }
            GraphSource::Corpus(name) => Err(OpError::Usage(format!(
                "corpus entry {name:?} requires a serving daemon; use --input or --instance"
            ))),
        }
    }
}

/// The on-disk graph format a path's extension selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiskFormat {
    /// `.mtx` — Matrix Market coordinate.
    MatrixMarket,
    /// `.graph` / `.metis` — METIS adjacency.
    Metis,
    /// `.csrbin` — checksummed flat binary CSR.
    BinCsr,
    /// `.csrz` — checksummed delta/varint compressed CSR.
    CompressedCsr,
    /// `.el` — whitespace edge list.
    EdgeList,
}

/// Maps a path to its [`DiskFormat`].
///
/// # Errors
///
/// [`OpError::Usage`] for an extension outside the accepted set. An
/// unrecognized extension used to fall through to the edge-list reader,
/// which turned typos like `g.mxt` into baffling parse errors (or, worse,
/// silently mis-ingested data); rejecting up front names every accepted
/// extension instead.
fn disk_format(path: &str) -> Result<DiskFormat, OpError> {
    if path.ends_with(".mtx") {
        Ok(DiskFormat::MatrixMarket)
    } else if path.ends_with(".graph") || path.ends_with(".metis") {
        Ok(DiskFormat::Metis)
    } else if path.ends_with(".csrbin") {
        Ok(DiskFormat::BinCsr)
    } else if path.ends_with(".csrz") {
        Ok(DiskFormat::CompressedCsr)
    } else if path.ends_with(".el") {
        Ok(DiskFormat::EdgeList)
    } else {
        Err(OpError::Usage(format!(
            "unrecognized graph extension in {path:?}; accepted: .mtx (Matrix Market), \
             .graph/.metis (METIS), .csrbin (binary CSR), .csrz (compressed CSR), \
             .el (edge list)"
        )))
    }
}

/// Reads a graph from `path`, selecting the format by extension: `.mtx`
/// Matrix Market, `.graph`/`.metis` METIS, `.csrbin` checksummed binary
/// CSR, `.csrz` checksummed compressed CSR (decoded to flat form), `.el`
/// whitespace edge list.
///
/// # Errors
///
/// [`OpError::Usage`] for an unrecognized extension, [`OpError::Io`] when
/// the file cannot be opened, [`OpError::Parse`] when it opens but is
/// rejected by the selected reader.
pub fn read_graph_auto(path: &str) -> Result<Csr, OpError> {
    let format = disk_format(path)?;
    let file = File::open(path).map_err(|e| OpError::Io(format!("cannot open {path}: {e}")))?;
    let mut reader = BufReader::new(file);
    let parsed = match format {
        DiskFormat::BinCsr => read_binary_csr(&mut reader).map_err(|e| e.to_string()),
        DiskFormat::CompressedCsr => {
            read_compressed_csr(&mut reader).map(|cz| cz.decode()).map_err(|e| e.to_string())
        }
        DiskFormat::MatrixMarket => read_matrix_market(reader).map_err(|e| e.to_string()),
        DiskFormat::Metis => read_metis(reader).map_err(|e| e.to_string()),
        DiskFormat::EdgeList => read_edge_list(reader).map_err(|e| e.to_string()),
    };
    parsed.map_err(|e| OpError::Parse(format!("failed to parse {path}: {e}")))
}

/// Writes `graph` to `path`, selecting the format by extension (same
/// dispatch as [`read_graph_auto`]).
///
/// # Errors
///
/// [`OpError::Usage`] for an unrecognized extension, [`OpError::Io`] when
/// the file cannot be created or written.
pub fn write_graph_auto(graph: &Csr, path: &str) -> Result<(), OpError> {
    let format = disk_format(path)?;
    let file = File::create(path).map_err(|e| OpError::Io(format!("cannot create {path}: {e}")))?;
    let mut writer = BufWriter::new(file);
    let written = match format {
        DiskFormat::BinCsr => write_binary_csr(graph, &mut writer).map_err(|e| e.to_string()),
        DiskFormat::CompressedCsr => CompressedCsr::from_csr(graph)
            .map_err(|e| e.to_string())
            .and_then(|cz| write_compressed_csr(&cz, &mut writer).map_err(|e| e.to_string())),
        DiskFormat::MatrixMarket => {
            write_matrix_market(graph, &mut writer).map_err(|e| e.to_string())
        }
        DiskFormat::Metis => write_metis(graph, &mut writer).map_err(|e| e.to_string()),
        DiskFormat::EdgeList => write_edge_list(graph, &mut writer).map_err(|e| e.to_string()),
    };
    written.map_err(|e| OpError::Io(format!("failed to write {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn source_json_round_trips() {
        for src in [
            GraphSource::Path("g.mtx".into()),
            GraphSource::Instance("euroroad".into()),
            GraphSource::Corpus("orkut".into()),
        ] {
            let j = src.to_json();
            assert_eq!(GraphSource::from_json(&j).unwrap(), src);
        }
        assert!(GraphSource::from_json(&Json::Obj(vec![])).is_err());
        assert!(GraphSource::from_json(&Json::Str("x".into())).is_err());
    }

    #[test]
    fn fs_resolver_rejects_corpus_sources() {
        let err = FsResolver.resolve(&GraphSource::Corpus("x".into())).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("daemon"));
    }

    #[test]
    fn extension_dispatch_round_trips_every_format() {
        let g = GraphBuilder::undirected(4).edges([(0u32, 1u32), (1, 2), (2, 3)]).build().unwrap();
        let dir = std::env::temp_dir();
        for name in ["ops_rt.mtx", "ops_rt.graph", "ops_rt.el", "ops_rt.csrbin", "ops_rt.csrz"] {
            let path = dir.join(format!("{}_{name}", std::process::id()));
            let path = path.to_string_lossy().to_string();
            write_graph_auto(&g, &path).unwrap();
            let h = read_graph_auto(&path).unwrap();
            assert_eq!(h.num_vertices(), 4, "{name}");
            assert_eq!(h.num_edges(), 3, "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn unknown_extension_is_a_typed_usage_error() {
        // Strict dispatch: a typo'd extension must not fall through to the
        // edge-list reader — even when the file exists and would parse.
        let path = std::env::temp_dir().join(format!("ops_typo_{}.mxt", std::process::id()));
        std::fs::write(&path, "0 1\n1 2\n").unwrap();
        let path = path.to_string_lossy().to_string();
        let err = read_graph_auto(&path).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        for listed in [".mtx", ".graph", ".metis", ".csrbin", ".csrz", ".el"] {
            assert!(err.to_string().contains(listed), "{err} should list {listed}");
        }
        let g = GraphBuilder::undirected(2).edges([(0u32, 1u32)]).build().unwrap();
        let err = write_graph_auto(&g, &path).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_and_garbage_is_parse() {
        assert_eq!(read_graph_auto("/nonexistent/g.mtx").unwrap_err().exit_code(), 1);
        let path = std::env::temp_dir().join(format!("ops_bad_{}.mtx", std::process::id()));
        std::fs::write(&path, "not a matrix market file\n").unwrap();
        let err = read_graph_auto(&path.to_string_lossy()).unwrap_err();
        assert!(matches!(err, OpError::Parse(_)), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }
}
