//! Differential guarantee of the observability layer: turning recording on
//! must never change any result. Every scheme is run twice per thread count
//! — once through `try_reorder` (NoopRecorder) and once through
//! `try_reorder_recorded` with a live `RunRecorder` — and the permutations
//! and downstream gap measures must be bit-identical, at 1, 2, and 7
//! threads.

use reorderlab_core::measures::gap_measures;
use reorderlab_core::Scheme;
use reorderlab_datasets::{barabasi_albert, clique_chain, grid2d};
use reorderlab_graph::Csr;
use reorderlab_trace::RunRecorder;

fn corpus() -> Vec<(&'static str, Csr)> {
    vec![
        ("clique_chain", clique_chain(6, 8)),
        ("grid2d", grid2d(9, 8)),
        ("barabasi_albert", barabasi_albert(160, 3, 7)),
    ]
}

/// Runs `f` inside a dedicated rayon pool of `threads` workers.
fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool builds").install(f)
}

#[test]
fn recording_never_changes_any_result_at_any_thread_count() {
    for (graph_name, g) in corpus() {
        for scheme in Scheme::all_schemes(42) {
            if scheme.validate(g.num_vertices()).is_err() {
                continue; // e.g. METIS parts > n on the tiny graphs
            }
            // The silent run at the default thread count is the reference.
            let silent = scheme.try_reorder(&g).expect("silent run succeeds");
            let silent_measures = gap_measures(&g, &silent);
            for threads in [1usize, 2, 7] {
                let (recorded, rec) = with_threads(threads, || {
                    let mut rec = RunRecorder::new();
                    let pi =
                        scheme.try_reorder_recorded(&g, &mut rec).expect("recorded run succeeds");
                    (pi, rec)
                });
                assert_eq!(
                    recorded.ranks(),
                    silent.ranks(),
                    "{} on {graph_name}: recorded permutation diverged at {threads} threads",
                    scheme.name()
                );
                let m = gap_measures(&g, &recorded);
                assert_eq!(
                    (m.avg_gap, m.bandwidth, m.avg_bandwidth, m.avg_log_gap),
                    (
                        silent_measures.avg_gap,
                        silent_measures.bandwidth,
                        silent_measures.avg_bandwidth,
                        silent_measures.avg_log_gap
                    ),
                    "{} on {graph_name}: measures diverged at {threads} threads",
                    scheme.name()
                );
                // The recorder closed every span it opened.
                assert_eq!(
                    rec.open_spans(),
                    0,
                    "{} on {graph_name}: unbalanced spans at {threads} threads",
                    scheme.name()
                );
                assert_eq!(
                    rec.spans().get("reorder").map(|s| s.count),
                    Some(1),
                    "{} on {graph_name}: missing outer reorder span",
                    scheme.name()
                );
            }
        }
    }
}

/// The recorder's counters are themselves deterministic: two recorded runs
/// of the same scheme must produce identical counter maps, and those maps
/// must agree across thread counts.
#[test]
fn recorded_counters_are_thread_invariant() {
    let g = clique_chain(6, 8);
    for scheme in [
        Scheme::Rcm,
        Scheme::Cdfs,
        Scheme::SlashBurn { k_frac: 0.05 },
        Scheme::Grappolo { threads: 0 },
        Scheme::GrappoloRcm { threads: 0 },
    ] {
        let fingerprint = |threads: usize| {
            with_threads(threads, || {
                let mut rec = RunRecorder::new();
                scheme.try_reorder_recorded(&g, &mut rec).expect("runs");
                format!("{:?}", rec.counters())
            })
        };
        let base = fingerprint(1);
        assert!(!base.is_empty());
        for threads in [2usize, 7] {
            assert_eq!(
                fingerprint(threads),
                base,
                "{}: counters diverged at {threads} threads",
                scheme.name()
            );
        }
    }
}
