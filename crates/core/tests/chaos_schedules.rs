//! Chaos-schedules tier: re-runs the scheme-contract and
//! recording-differential guarantees under adversarial rayon schedules.
//!
//! With `--features chaos` the rayon shim draws, per parallel call, uneven
//! chunk boundaries, a permuted spawn order, permuted yield pressure, and
//! swapped `join` arms from a seed (`REORDERLAB_CHAOS_SEED`, or the
//! in-process `rayon::chaos::set_seed` override used here). Eight seeds ×
//! {2, 7} threads must all reproduce the 1-thread result bit-for-bit — the
//! 1-thread path never engages the chaos scheduler, so it is the oracle.
//!
//! This file compiles to nothing without the feature; tier-1 `cargo test`
//! is unaffected. CI runs it in the dedicated `chaos-schedules` leg.
#![cfg(feature = "chaos")]

use reorderlab_core::measures::gap_measures;
use reorderlab_core::Scheme;
use reorderlab_datasets::{barabasi_albert, clique_chain, erdos_renyi_gnm, grid2d, tri_mesh};
use reorderlab_graph::{Csr, GraphBuilder, Permutation};
use reorderlab_trace::RunRecorder;

const SEEDS: std::ops::Range<u64> = 0..8;
const THREADS: [usize; 2] = [2, 7];

/// A slice of the scheme-contract corpus that still exercises every
/// parallel path (hubs for Gorder's gather, >512 vertices for Rabbit's
/// speculative batches, a disconnected graph for BFS frontiers) while
/// keeping 8 seeds × 2 thread counts × every scheme affordable.
fn corpus() -> Vec<(&'static str, Csr)> {
    vec![
        (
            "disconnected",
            GraphBuilder::undirected(12)
                .edges([(0, 1), (1, 2), (4, 5), (7, 8), (8, 9), (9, 7)])
                .build_expect(),
        ),
        ("random", erdos_renyi_gnm(60, 150, 7)),
        ("clique-chain", clique_chain(6, 8)),
        ("grid", grid2d(9, 8)),
        ("mesh", tri_mesh(8, 8, 0.3, 9)),
        ("powerlaw-multi-batch", barabasi_albert(700, 3, 21)),
    ]
}

/// Runs `f` inside a dedicated pool of `threads` workers.
fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    reorderlab_graph::build_pool(threads).install(f)
}

fn measure_bits(g: &Csr, pi: &Permutation) -> [u64; 4] {
    let m = gap_measures(g, pi);
    [
        m.avg_gap.to_bits(),
        u64::from(m.bandwidth),
        m.avg_bandwidth.to_bits(),
        m.avg_log_gap.to_bits(),
    ]
}

/// Scheme-contract guarantee under chaos: every scheme, on every corpus
/// graph, reproduces its 1-thread permutation and gap measures bit-for-bit
/// across all eight adversarial schedules at 2 and 7 threads.
#[test]
fn every_scheme_is_bit_identical_under_adversarial_schedules() {
    for (gname, g) in corpus() {
        for scheme in Scheme::all_schemes(42) {
            if scheme.validate(g.num_vertices()).is_err() {
                continue; // e.g. METIS parts > n on the tiny graphs
            }
            let oracle = with_threads(1, || scheme.reorder(&g));
            let oracle_bits = measure_bits(&g, &oracle);
            for seed in SEEDS {
                rayon::chaos::set_seed(seed);
                for threads in THREADS {
                    let pi = with_threads(threads, || scheme.reorder(&g));
                    assert_eq!(
                        pi,
                        oracle,
                        "{} on {gname}: permutation diverged at seed {seed}, {threads} threads",
                        scheme.name()
                    );
                    assert_eq!(
                        measure_bits(&g, &pi),
                        oracle_bits,
                        "{} on {gname}: measures diverged at seed {seed}, {threads} threads",
                        scheme.name()
                    );
                }
            }
        }
    }
}

/// Recording-differential guarantee under chaos: a recorded run under an
/// adversarial schedule still matches the silent 1-thread oracle, and the
/// recorder's span/counter books stay balanced and deterministic.
#[test]
fn recorded_runs_are_bit_identical_under_adversarial_schedules() {
    for (gname, g) in corpus() {
        for scheme in Scheme::all_schemes(42) {
            if scheme.validate(g.num_vertices()).is_err() {
                continue;
            }
            let (oracle, oracle_counters) = with_threads(1, || {
                let mut rec = RunRecorder::new();
                let pi = scheme.try_reorder_recorded(&g, &mut rec).expect("oracle run succeeds");
                (pi, format!("{:?}", rec.counters()))
            });
            for seed in SEEDS {
                rayon::chaos::set_seed(seed);
                for threads in THREADS {
                    let (pi, rec) = with_threads(threads, || {
                        let mut rec = RunRecorder::new();
                        let pi = scheme
                            .try_reorder_recorded(&g, &mut rec)
                            .expect("recorded run succeeds");
                        (pi, rec)
                    });
                    assert_eq!(
                        pi.ranks(),
                        oracle.ranks(),
                        "{} on {gname}: recorded permutation diverged at seed {seed}, {threads} threads",
                        scheme.name()
                    );
                    assert_eq!(
                        rec.open_spans(),
                        0,
                        "{} on {gname}: unbalanced spans at seed {seed}, {threads} threads",
                        scheme.name()
                    );
                    assert_eq!(
                        format!("{:?}", rec.counters()),
                        oracle_counters,
                        "{} on {gname}: counters diverged at seed {seed}, {threads} threads",
                        scheme.name()
                    );
                }
            }
        }
    }
}
