//! Chaos-schedules tier for the cache-conscious hot kernels.
//!
//! The blocked / packed Louvain scatter kernels and the hub/cold split RR
//! sampler reorder *memory accesses*, never results: each must reproduce
//! the 1-thread flat/classic oracle bit-for-bit even when the rayon shim's
//! seeded adversarial scheduler perturbs chunk boundaries, spawn order, and
//! join order. Eight seeds × {2, 7} worker threads, same contract as
//! `chaos_schedules.rs`.
//!
//! Compiles to nothing without `--features chaos`; tier-1 `cargo test` is
//! unaffected. CI runs it in the `chaos-schedules` leg.
#![cfg(feature = "chaos")]

use reorderlab_community::{louvain, CommunityResult, LouvainConfig, MoveKernel};
use reorderlab_datasets::{barabasi_albert, clique_chain, erdos_renyi_gnm, grid2d};
use reorderlab_graph::Csr;
use reorderlab_influence::{imm, ImmConfig, SampleKernel};

const SEEDS: std::ops::Range<u64> = 0..8;
const THREADS: [usize; 2] = [2, 7];

/// Small corpus with hubs (packed/hub-split stress), a mesh (blocked rows
/// spanning several cache lines), and community structure (multi-phase
/// Louvain), affordable under 8 seeds × 2 thread counts × every kernel.
fn corpus() -> Vec<(&'static str, Csr)> {
    vec![
        ("clique-chain", clique_chain(5, 6)),
        ("grid", grid2d(10, 10)),
        ("random", erdos_renyi_gnm(80, 240, 11)),
        ("powerlaw", barabasi_albert(150, 3, 5)),
    ]
}

/// Everything a Louvain run decides, down to per-iteration counters.
fn louvain_fingerprint(r: &CommunityResult) -> (Vec<u32>, usize, u64, Vec<(usize, u64, u64)>) {
    let iters = r
        .stats
        .phases
        .iter()
        .flat_map(|p| p.iterations.iter())
        .map(|it| (it.moves, it.modularity.to_bits(), it.loads))
        .collect();
    (r.assignment.clone(), r.num_communities, r.modularity.to_bits(), iters)
}

/// Every Louvain move kernel, on every corpus graph, reproduces the
/// 1-thread flat-scatter oracle bit-for-bit across all adversarial
/// schedules at 2 and 7 threads.
#[test]
fn louvain_kernels_bit_identical_under_adversarial_schedules() {
    for (gname, g) in corpus() {
        let oracle_cfg = LouvainConfig::default().threads(1).kernel(MoveKernel::FlatScatter);
        let oracle = louvain_fingerprint(&louvain(&g, &oracle_cfg));
        for kernel in MoveKernel::ALL {
            for seed in SEEDS {
                rayon::chaos::set_seed(seed);
                for threads in THREADS {
                    let cfg = LouvainConfig::default().threads(threads).kernel(kernel);
                    let got = louvain_fingerprint(&louvain(&g, &cfg));
                    assert_eq!(
                        got,
                        oracle,
                        "{} kernel on {gname}: diverged from 1-thread flat oracle at \
                         seed {seed}, {threads} threads",
                        kernel.name()
                    );
                }
            }
        }
    }
}

/// Both RR-set sampling kernels reproduce the 1-thread classic oracle —
/// seed set, influence estimate, and traversal counters — across all
/// adversarial schedules at 2 and 7 threads.
#[test]
fn rr_sampling_kernels_bit_identical_under_adversarial_schedules() {
    for (gname, g) in
        [("random", erdos_renyi_gnm(120, 420, 17)), ("powerlaw", barabasi_albert(150, 3, 5))]
    {
        let oracle_cfg = ImmConfig::new(3).seed(9).threads(1).kernel(SampleKernel::Classic);
        let oracle = imm(&g, &oracle_cfg);
        for kernel in SampleKernel::ALL {
            for seed in SEEDS {
                rayon::chaos::set_seed(seed);
                for threads in THREADS {
                    let cfg = ImmConfig::new(3).seed(9).threads(threads).kernel(kernel);
                    let got = imm(&g, &cfg);
                    assert_eq!(
                        (got.seeds.clone(), got.influence_estimate.to_bits()),
                        (oracle.seeds.clone(), oracle.influence_estimate.to_bits()),
                        "{} kernel on {gname}: seed set diverged at seed {seed}, {threads} threads",
                        kernel.name()
                    );
                    assert_eq!(
                        (got.stats.rr_sets, got.stats.edges_examined, got.stats.vertices_visited),
                        (
                            oracle.stats.rr_sets,
                            oracle.stats.edges_examined,
                            oracle.stats.vertices_visited
                        ),
                        "{} kernel on {gname}: traversal counters diverged at seed {seed}, \
                         {threads} threads",
                        kernel.name()
                    );
                }
            }
        }
    }
}
