//! Permutation-validity properties for the lightweight + adaptive family
//! (DBG / HubSortDBG / HubClusterDBG, CommBFS / CommDFS / CommDegree,
//! Adaptive): on randomized generator graphs each scheme must produce a
//! bijection on `0..n`, be deterministic across repeated runs and thread
//! counts, and match its retained serial oracle exactly. The chaos-seed
//! axis (8 seeds × {2, 7} threads) for the same family runs in
//! `chaos_schedules.rs` under `--features chaos`.

use proptest::prelude::*;
use reorderlab_core::schemes::{
    adaptive_order_serial, comm_order_serial, dbg_order_serial, hub_cluster_dbg_order_serial,
    hub_sort_dbg_order_serial, CommIntra,
};
use reorderlab_core::Scheme;
use reorderlab_datasets::{barabasi_albert, erdos_renyi_gnm, grid2d, stochastic_block_model};
use reorderlab_graph::{assert_thread_invariant, Csr, Permutation};

type Oracle = fn(&Csr) -> Permutation;

/// The seven schemes the family adds, paired with their serial oracles.
fn family() -> Vec<(Scheme, Oracle)> {
    vec![
        (Scheme::Dbg, dbg_order_serial),
        (Scheme::HubSortDbg, hub_sort_dbg_order_serial),
        (Scheme::HubClusterDbg, hub_cluster_dbg_order_serial),
        (Scheme::CommunityBfs, |g| comm_order_serial(g, CommIntra::Bfs)),
        (Scheme::CommunityDfs, |g| comm_order_serial(g, CommIntra::Dfs)),
        (Scheme::CommunityDegree, |g| comm_order_serial(g, CommIntra::Degree)),
        (Scheme::Adaptive, adaptive_order_serial),
    ]
}

/// Pick one of four structurally distinct generators from the drawn
/// parameters: Erdős–Rényi (flat), Barabási–Albert (skewed), SBM
/// (modular), 2-D grid (high diameter).
fn build_graph(family: usize, n: usize, density: usize, seed: u64) -> Csr {
    match family % 4 {
        0 => erdos_renyi_gnm(n, n * density, seed),
        1 => barabasi_albert(n, density.max(1), seed),
        2 => stochastic_block_model(n, 3, 0.3, 0.01, seed).graph,
        _ => grid2d(density.max(2), n / density.max(2) + 1),
    }
}

fn assert_family_contract(g: &Csr, ctx: &str) {
    let n = g.num_vertices();
    for (scheme, oracle) in family() {
        let label = format!("{scheme} on {ctx}");
        let pi = assert_thread_invariant(|| scheme.reorder(g));
        assert_eq!(pi.len(), n, "{label}: permutation length");
        assert!(
            Permutation::from_ranks(pi.ranks().to_vec()).is_ok(),
            "{label}: ranks are not a bijection on 0..{n}"
        );
        assert_eq!(pi, scheme.reorder(g), "{label}: repeated run diverged");
        assert_eq!(pi, oracle(g), "{label}: diverged from serial oracle");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn family_is_bijective_deterministic_and_oracle_equal(
        gen in 0usize..4,
        n in 8usize..120,
        density in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let g = build_graph(gen, n, density, seed);
        assert_family_contract(&g, &format!("generator {gen} (n={n}, d={density}, seed={seed})"));
    }
}

/// The same contract on the structured fixtures the proptest ranges can
/// miss: a hub-dominated star and a two-scale SBM.
#[test]
fn family_contract_on_structured_fixtures() {
    let fixtures = vec![
        ("star-100", reorderlab_datasets::star(100)),
        ("sbm-2scale", stochastic_block_model(90, 9, 0.6, 0.005, 23).graph),
    ];
    for (name, g) in fixtures {
        assert_family_contract(&g, name);
    }
}
