//! Spec-grammar round-trip property: `Scheme::parse(s.spec()) == s` for
//! every registry variant under randomized parameters, plus
//! case-insensitivity of the scheme name. Catches spec-grammar drift at the
//! registry level, before it can surface in CLI integration tests.

use proptest::prelude::*;
use reorderlab_core::schemes::DegreeDirection;
use reorderlab_core::Scheme;

/// One scheme per registry variant, parameterized from the generated
/// values. `slot` indexes the same 22-variant enumeration as
/// `Scheme::all_schemes`, so new variants extend the range (and the
/// `all_schemes_covers_every_variant` registry test keeps the count
/// honest).
fn scheme_from(
    slot: usize,
    seed: u64,
    window: usize,
    parts: usize,
    threads: usize,
    k_milli: u64,
) -> Scheme {
    match slot {
        0 => Scheme::Natural,
        1 => Scheme::Random { seed },
        2 => Scheme::DegreeSort { direction: DegreeDirection::Decreasing },
        3 => Scheme::DegreeSort { direction: DegreeDirection::Increasing },
        4 => Scheme::HubSort,
        5 => Scheme::HubCluster,
        6 => Scheme::SlashBurn { k_frac: k_milli as f64 / 1000.0 },
        7 => Scheme::Gorder { window },
        8 => Scheme::Rcm,
        9 => Scheme::Cdfs,
        10 => Scheme::NestedDissection { seed },
        11 => Scheme::Metis { parts, seed },
        12 => Scheme::Grappolo { threads },
        13 => Scheme::GrappoloRcm { threads },
        14 => Scheme::RabbitOrder,
        15 => Scheme::Dbg,
        16 => Scheme::HubSortDbg,
        17 => Scheme::HubClusterDbg,
        18 => Scheme::CommunityBfs,
        19 => Scheme::CommunityDfs,
        20 => Scheme::CommunityDegree,
        _ => Scheme::Adaptive,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn spec_round_trips_for_every_variant(
        slot in 0usize..22,
        seed in 0u64..1_000_000,
        window in 1usize..100,
        parts in 1usize..512,
        threads in 0usize..9,
        k_milli in 1u64..1001,
    ) {
        let scheme = scheme_from(slot, seed, window, parts, threads, k_milli);
        let spec = scheme.spec();
        let parsed = Scheme::parse(&spec);
        prop_assert!(parsed.is_ok(), "spec {:?} failed to parse: {:?}", spec, parsed);
        prop_assert_eq!(parsed.unwrap(), scheme.clone(), "spec {:?} did not round-trip", spec);

        // Scheme names are case-insensitive (parameter keys are not).
        let upper = match spec.split_once(':') {
            Some((name, params)) => format!("{}:{}", name.to_uppercase(), params),
            None => spec.to_uppercase(),
        };
        prop_assert_eq!(
            Scheme::parse(&upper).unwrap(),
            scheme,
            "uppercased name {:?} did not round-trip",
            upper
        );
    }
}

/// The non-randomized sweep: every suite parameterization round-trips, and
/// every canonical accepted name parses to a scheme whose spec starts with
/// that name.
#[test]
fn every_suite_scheme_and_accepted_name_round_trips() {
    for seed in [0, 7, 42] {
        for scheme in Scheme::all_schemes(seed) {
            let spec = scheme.spec();
            let parsed =
                Scheme::parse(&spec).unwrap_or_else(|e| panic!("{spec:?} failed to re-parse: {e}"));
            assert_eq!(parsed, scheme, "spec {spec:?} did not round-trip");
        }
    }
    for name in Scheme::ACCEPTED_NAMES {
        let scheme =
            Scheme::parse(name).unwrap_or_else(|e| panic!("accepted name {name:?} rejected: {e}"));
        let head = scheme.spec();
        let head = head.split(':').next().unwrap_or("");
        assert_eq!(head, name, "canonical name must be its own spec head");
    }
}
