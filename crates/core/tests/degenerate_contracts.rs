//! The degenerate-graph contract (DESIGN.md §"Degenerate-graph contract"):
//! every scheme × every measure × Louvain × IMM must be total over the
//! degenerate corpus — empty, single-vertex, zero-edge, all-self-loop,
//! disconnected, star, duplicate-heavy graphs — at 1, 2, and 7 threads,
//! producing valid permutations and finite, NaN-free metrics, or a typed
//! error; never a panic.
//!
//! A second group pins scheme parameter validation on tiny graphs:
//! SlashBurn `k_frac` rounding, Gorder windows larger than the graph,
//! METIS `parts > n`, RCM on disconnected inputs.

use reorderlab_community::{louvain, LouvainConfig};
use reorderlab_core::measures::{
    try_edge_gaps, try_gap_measures, try_packing_factor, try_vertex_bandwidths, GapDistribution,
};
use reorderlab_core::{Scheme, SchemeError};
use reorderlab_datasets::{degenerate_suite, star};
use reorderlab_graph::{assert_thread_invariant, Csr, GraphBuilder, Permutation};
use reorderlab_influence::{imm, DiffusionModel, ImmConfig};

fn assert_bijective(pi: &Permutation, n: usize, ctx: &str) {
    assert_eq!(pi.len(), n, "{ctx}: permutation length");
    assert!(
        Permutation::from_ranks(pi.ranks().to_vec()).is_ok(),
        "{ctx}: ranks are not a bijection"
    );
}

/// Every measure the paper evaluates, computed through the fallible entry
/// points; asserts every reported number is finite and returns the bundle
/// for thread-invariance comparison.
fn all_measures(g: &Csr, pi: &Permutation, ctx: &str) -> (Vec<f64>, Vec<u32>, Vec<u32>) {
    let m = try_gap_measures(g, pi).unwrap_or_else(|e| panic!("{ctx}: gap_measures: {e}"));
    for (name, v) in
        [("avg_gap", m.avg_gap), ("avg_bandwidth", m.avg_bandwidth), ("avg_log_gap", m.avg_log_gap)]
    {
        assert!(v.is_finite(), "{ctx}: {name} = {v} is not finite");
    }
    let gaps = try_edge_gaps(g, pi).unwrap_or_else(|e| panic!("{ctx}: edge_gaps: {e}"));
    assert_eq!(gaps.len(), g.num_edges(), "{ctx}: one gap per edge");
    let dist = GapDistribution::from_gaps(&gaps);
    assert!(dist.mean.is_finite(), "{ctx}: distribution mean {}", dist.mean);
    assert!(dist.median.is_finite(), "{ctx}: distribution median {}", dist.median);
    let bands =
        try_vertex_bandwidths(g, pi).unwrap_or_else(|e| panic!("{ctx}: vertex_bandwidths: {e}"));
    assert_eq!(bands.len(), g.num_vertices(), "{ctx}: one bandwidth per vertex");
    let p = try_packing_factor(g, pi, 4, 64).unwrap_or_else(|e| panic!("{ctx}: packing: {e}"));
    assert!(p.factor.is_finite(), "{ctx}: packing factor {}", p.factor);
    (vec![m.avg_gap, m.avg_bandwidth, m.avg_log_gap, dist.mean, dist.median, p.factor], gaps, bands)
}

/// The tentpole contract: every scheme × every measure over the degenerate
/// corpus, with results bit-identical at 1, 2, and 7 rayon threads.
#[test]
fn every_scheme_and_measure_is_total_and_finite_on_the_degenerate_corpus() {
    for case in degenerate_suite() {
        let g = &case.graph;
        let n = g.num_vertices();
        for scheme in Scheme::all_schemes(42) {
            let ctx = format!("{scheme} on {}", case.name);
            match scheme.try_reorder(g) {
                Ok(pi) => {
                    assert_bijective(&pi, n, &ctx);
                    // Scheme + every measure, invariant across 1/2/7 threads.
                    let bundle = assert_thread_invariant(|| {
                        let pi = scheme
                            .try_reorder(g)
                            .unwrap_or_else(|e| panic!("{ctx}: became fallible under pool: {e}"));
                        let measures = all_measures(g, &pi, &ctx);
                        (pi, measures)
                    });
                    assert_eq!(bundle.0, pi, "{ctx}: permutation differs under explicit pool");
                }
                Err(e) => {
                    // The corpus graphs are all small, so METIS's 32 parts
                    // are rightly rejected; any other refusal breaks the
                    // contract.
                    assert!(
                        matches!(e, SchemeError::PartsExceedVertices { .. }),
                        "{ctx}: unexpected error {e}"
                    );
                }
            }
        }
    }
}

/// Louvain must return finite modularity (and finite per-phase stats) on
/// every corpus graph at every thread count.
#[test]
fn louvain_is_finite_on_the_degenerate_corpus() {
    for case in degenerate_suite() {
        let g = &case.graph;
        for threads in [1usize, 2, 7] {
            let cfg = LouvainConfig { threads, ..LouvainConfig::default() };
            let r = louvain(g, &cfg);
            let ctx = format!("louvain on {} at {threads} threads", case.name);
            assert!(r.modularity.is_finite(), "{ctx}: modularity {}", r.modularity);
            assert_eq!(r.assignment.len(), g.num_vertices(), "{ctx}: one label per vertex");
            for phase in &r.stats.phases {
                assert!(phase.modularity.is_finite(), "{ctx}: phase modularity");
            }
        }
    }
}

/// IMM must return finite influence estimates and sampling statistics on
/// every corpus graph at every thread count.
#[test]
fn imm_is_finite_on_the_degenerate_corpus() {
    for case in degenerate_suite() {
        let g = &case.graph;
        let n = g.num_vertices();
        for threads in [1usize, 2, 7] {
            let cfg = ImmConfig::new(2)
                .epsilon(0.9)
                .model(DiffusionModel::IndependentCascade { probability: 0.3 })
                .seed(11)
                .threads(threads);
            let r = imm(g, &cfg);
            let ctx = format!("imm on {} at {threads} threads", case.name);
            assert!(r.influence_estimate.is_finite(), "{ctx}: estimate {}", r.influence_estimate);
            assert!(r.influence_estimate >= 0.0, "{ctx}: negative estimate");
            assert!(r.stats.throughput.is_finite(), "{ctx}: throughput {}", r.stats.throughput);
            assert!(r.stats.mean_rr_size.is_finite(), "{ctx}: mean RR size");
            assert!(r.seeds.len() <= 2.min(n), "{ctx}: too many seeds");
            for &s in &r.seeds {
                assert!((s as usize) < n, "{ctx}: seed {s} out of range");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scheme parameter validation on tiny graphs (satellite: never a panic —
// a valid permutation or a typed SchemeError).
// ---------------------------------------------------------------------------

fn tiny_graphs() -> Vec<(&'static str, Csr)> {
    vec![
        ("singleton", GraphBuilder::undirected(1).build().unwrap()),
        ("pair", GraphBuilder::undirected(2).edge(0, 1).build().unwrap()),
        ("triangle", GraphBuilder::undirected(3).edges([(0, 1), (1, 2), (2, 0)]).build().unwrap()),
        ("disconnected", GraphBuilder::undirected(5).edges([(0, 1), (3, 4)]).build().unwrap()),
    ]
}

#[test]
fn slashburn_k_frac_rounding_never_stalls_or_panics() {
    // Fractions whose per-round hub count rounds to < 1 on tiny graphs must
    // still terminate with a bijection; out-of-range fractions must be the
    // typed error.
    for (gname, g) in tiny_graphs() {
        for k_frac in [1e-9, 0.005, 0.5, 1.0] {
            let scheme = Scheme::SlashBurn { k_frac };
            let pi = scheme
                .try_reorder(&g)
                .unwrap_or_else(|e| panic!("SlashBurn({k_frac}) on {gname}: {e}"));
            assert_bijective(&pi, g.num_vertices(), &format!("SlashBurn({k_frac}) on {gname}"));
        }
        for k_frac in [0.0, -0.5, 1.5, f64::NAN] {
            let err = Scheme::SlashBurn { k_frac }.try_reorder(&g).unwrap_err();
            assert!(
                matches!(err, SchemeError::KFracOutOfRange { .. }),
                "SlashBurn({k_frac}) on {gname}: expected KFracOutOfRange, got {err}"
            );
        }
    }
}

#[test]
fn gorder_window_larger_than_graph_is_fine() {
    for (gname, g) in tiny_graphs() {
        for window in [1usize, 2, 100, 4096] {
            let scheme = Scheme::Gorder { window };
            let pi = scheme
                .try_reorder(&g)
                .unwrap_or_else(|e| panic!("Gorder(w={window}) on {gname}: {e}"));
            assert_bijective(&pi, g.num_vertices(), &format!("Gorder(w={window}) on {gname}"));
        }
        let err = Scheme::Gorder { window: 0 }.try_reorder(&g).unwrap_err();
        assert!(matches!(err, SchemeError::WindowTooSmall { .. }), "{gname}: {err}");
    }
}

#[test]
fn metis_parts_exceeding_vertices_is_a_typed_error() {
    for (gname, g) in tiny_graphs() {
        let n = g.num_vertices();
        let err = Scheme::Metis { parts: n + 1, seed: 1 }.try_reorder(&g).unwrap_err();
        assert!(
            matches!(err, SchemeError::PartsExceedVertices { parts, vertices }
                if parts == n + 1 && vertices == n),
            "METIS on {gname}: {err}"
        );
        // parts == n is the boundary and must succeed.
        let pi = Scheme::Metis { parts: n, seed: 1 }
            .try_reorder(&g)
            .unwrap_or_else(|e| panic!("METIS(parts={n}) on {gname}: {e}"));
        assert_bijective(&pi, n, &format!("METIS(parts={n}) on {gname}"));
        let err = Scheme::Metis { parts: 0, seed: 1 }.try_reorder(&g).unwrap_err();
        assert!(matches!(err, SchemeError::PartsTooSmall { .. }), "METIS(0) on {gname}: {err}");
    }
}

#[test]
fn rcm_and_cdfs_cover_disconnected_graphs() {
    let g = GraphBuilder::undirected(9)
        .edges([(0, 1), (1, 2), (4, 5), (6, 7), (7, 8), (8, 6)])
        .build()
        .unwrap();
    for scheme in [Scheme::Rcm, Scheme::Cdfs] {
        let pi = scheme.try_reorder(&g).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_bijective(&pi, 9, &format!("{scheme} on disconnected"));
    }
    // A star's RCM ordering must still be bijective with the hub anywhere.
    let s = star(6);
    let pi = Scheme::Rcm.try_reorder(&s).unwrap();
    assert_bijective(&pi, 6, "RCM on star");
}
