//! Scheme-contract suite: every registered scheme must produce a valid,
//! bijective, deterministic permutation on every generator family —
//! including degenerate graphs (empty, singleton, disconnected, self-loops)
//! — and the result must be bit-identical at 1, 2, and 7 rayon threads.
//!
//! A second group of differential tests pins each parallelized kernel
//! exactly equal to its retained serial oracle.

use reorderlab_core::schemes::{
    adaptive_order, adaptive_order_serial, cdfs_order, cdfs_order_serial, comm_order,
    comm_order_serial, dbg_order, dbg_order_serial, gorder, gorder_serial, hub_cluster_dbg_order,
    hub_cluster_dbg_order_serial, hub_sort_dbg_order, hub_sort_dbg_order_serial, rabbit_order,
    rabbit_order_serial, rcm_order, rcm_order_serial, slashburn_order, slashburn_order_serial,
    CommIntra,
};
use reorderlab_core::{Scheme, SchemeError};
use reorderlab_datasets::{
    barabasi_albert, clique_chain, erdos_renyi_gnm, grid2d, star, stochastic_block_model, tri_mesh,
    watts_strogatz,
};
use reorderlab_graph::{assert_thread_invariant, Csr, GraphBuilder, Permutation, SelfLoopPolicy};

/// One instance per generator family from `reorderlab-datasets`
/// (random / sbm / powerlaw / mesh) plus the degenerate corner cases the
/// schemes must survive: the empty graph, a single vertex, an edgeless
/// graph, a disconnected graph, and a graph with self-loops.
fn contract_corpus() -> Vec<(&'static str, Csr)> {
    vec![
        ("empty", GraphBuilder::undirected(0).build().unwrap()),
        ("singleton", GraphBuilder::undirected(1).build().unwrap()),
        ("edgeless", GraphBuilder::undirected(6).build().unwrap()),
        (
            "disconnected",
            GraphBuilder::undirected(12)
                .edges([(0, 1), (1, 2), (4, 5), (7, 8), (8, 9), (9, 7)])
                .build()
                .unwrap(),
        ),
        (
            "self-loops",
            GraphBuilder::undirected(8)
                .self_loops(SelfLoopPolicy::Keep)
                .edges([(0, 0), (0, 1), (1, 2), (3, 3), (4, 5), (5, 6), (6, 4), (2, 2)])
                .build()
                .unwrap(),
        ),
        ("random", erdos_renyi_gnm(60, 150, 7)),
        ("small-world", watts_strogatz(48, 4, 0.2, 11)),
        ("sbm", stochastic_block_model(60, 3, 0.4, 0.02, 3).graph),
        ("powerlaw", barabasi_albert(80, 2, 5)),
        ("mesh", tri_mesh(8, 8, 0.3, 9)),
    ]
}

fn assert_bijective(pi: &Permutation, n: usize, ctx: &str) {
    assert_eq!(pi.len(), n, "{ctx}: permutation length");
    assert!(
        Permutation::from_ranks(pi.ranks().to_vec()).is_ok(),
        "{ctx}: ranks are not a bijection"
    );
}

/// Every scheme in the extended suite × every corpus graph: bijective,
/// stable across repeated runs, and thread-count invariant.
#[test]
fn every_scheme_on_every_generator_is_a_thread_invariant_bijection() {
    for (gname, g) in contract_corpus() {
        for scheme in Scheme::all_schemes(42) {
            let ctx = format!("{scheme} on {gname}");
            if let Err(e) = scheme.validate(g.num_vertices()) {
                // The degenerate corpus graphs have fewer than 32 vertices,
                // so METIS's 32 parts are rightly rejected — any other
                // refusal would be a contract break. The rejection itself
                // must be consistent between validate and try_reorder.
                assert!(
                    matches!(e, SchemeError::PartsExceedVertices { .. }),
                    "{ctx}: unexpected validation error {e}"
                );
                assert_eq!(scheme.try_reorder(&g).unwrap_err(), e, "{ctx}");
                continue;
            }
            let pi = assert_thread_invariant(|| scheme.reorder(&g));
            assert_bijective(&pi, g.num_vertices(), &ctx);
            assert_eq!(pi, scheme.reorder(&g), "{ctx}: repeated run diverged");
        }
    }
}

/// The degenerate cases once more for the schemes with non-default
/// parameters that the suites don't cover (aggressive SlashBurn fraction,
/// tiny Gorder window).
#[test]
fn parameter_extremes_survive_degenerate_graphs() {
    for (gname, g) in contract_corpus() {
        let n = g.num_vertices();
        assert_bijective(&slashburn_order(&g, 1.0), n, &format!("SlashBurn(1.0) on {gname}"));
        assert_bijective(&gorder(&g, 1, 4096), n, &format!("Gorder(w=1) on {gname}"));
    }
}

// ---------------------------------------------------------------------------
// Differential tests: parallel kernel == serial oracle, at 1/2/7 threads.
// ---------------------------------------------------------------------------

fn assert_matches_oracle<F, S>(name: &str, parallel: F, serial: S)
where
    F: Fn(&Csr) -> Permutation,
    S: Fn(&Csr) -> Permutation,
{
    for (gname, g) in contract_corpus() {
        let expected = serial(&g);
        let got = assert_thread_invariant(|| parallel(&g));
        assert_eq!(got, expected, "{name} diverged from serial oracle on {gname}");
    }
}

#[test]
fn rcm_matches_serial_oracle() {
    assert_matches_oracle("rcm_order", rcm_order, rcm_order_serial);
}

#[test]
fn cdfs_matches_serial_oracle() {
    assert_matches_oracle("cdfs_order", cdfs_order, cdfs_order_serial);
}

#[test]
fn slashburn_matches_serial_oracle() {
    assert_matches_oracle(
        "slashburn_order",
        |g| slashburn_order(g, 0.05),
        |g| slashburn_order_serial(g, 0.05),
    );
}

#[test]
fn gorder_matches_serial_oracle() {
    assert_matches_oracle("gorder", |g| gorder(g, 5, 4096), |g| gorder_serial(g, 5, 4096));
}

#[test]
fn rabbit_matches_serial_oracle() {
    assert_matches_oracle("rabbit_order", rabbit_order, rabbit_order_serial);
}

#[test]
fn dbg_family_matches_serial_oracle() {
    assert_matches_oracle("dbg_order", dbg_order, dbg_order_serial);
    assert_matches_oracle("hub_sort_dbg_order", hub_sort_dbg_order, hub_sort_dbg_order_serial);
    assert_matches_oracle(
        "hub_cluster_dbg_order",
        hub_cluster_dbg_order,
        hub_cluster_dbg_order_serial,
    );
}

#[test]
fn community_traversal_matches_serial_oracle() {
    for intra in [CommIntra::Bfs, CommIntra::Dfs, CommIntra::Degree] {
        assert_matches_oracle(
            &format!("comm_order({intra:?})"),
            |g| comm_order(g, intra),
            |g| comm_order_serial(g, intra),
        );
    }
}

#[test]
fn adaptive_matches_serial_oracle() {
    assert_matches_oracle("adaptive_order", adaptive_order, adaptive_order_serial);
}

/// Gorder's parallel two-hop gather only engages for vertices with degree
/// ≥ 32 when more than one thread is installed — exercise it explicitly
/// with hub-heavy graphs so the differential test covers the parallel path,
/// not just the serial fallback.
#[test]
fn gorder_parallel_gather_path_matches_oracle_on_hub_graphs() {
    let hubs = vec![
        ("star", star(200)),
        ("dense-powerlaw", barabasi_albert(300, 16, 13)),
        ("clique-chain", clique_chain(4, 40)),
    ];
    for (gname, g) in hubs {
        let expected = gorder_serial(&g, 5, 4096);
        let got = assert_thread_invariant(|| gorder(&g, 5, 4096));
        assert_eq!(got, expected, "gorder parallel path diverged on {gname}");
    }
}

/// Rabbit's speculative batches only interleave once the scan spans more
/// than one batch (512 vertices); pin a multi-batch instance to the oracle.
#[test]
fn rabbit_speculative_batches_match_oracle_on_multi_batch_graphs() {
    let big = vec![
        ("powerlaw-1300", barabasi_albert(1300, 3, 21)),
        ("sbm-1200", stochastic_block_model(1200, 3, 0.05, 0.002, 17).graph),
        ("grid-1350", grid2d(27, 50)),
    ];
    for (gname, g) in big {
        let expected = rabbit_order_serial(&g);
        let got = assert_thread_invariant(|| rabbit_order(&g));
        assert_eq!(got, expected, "rabbit speculative scan diverged on {gname}");
    }
}
