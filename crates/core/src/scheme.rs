//! The scheme registry: a closed enumeration of every reordering scheme the
//! paper evaluates, with uniform dispatch. Harness code sweeps
//! [`Scheme::evaluation_suite`] to reproduce the 11-scheme comparisons of
//! §V.
//!
//! The registry offers three dispatch entry points:
//!
//! - [`Scheme::try_reorder`] — validates parameters against the graph and
//!   returns a typed [`SchemeError`] instead of panicking;
//! - [`Scheme::reorder`] — thin wrapper that panics with the error's
//!   message, for callers that treat bad parameters as bugs;
//! - [`Scheme::reorder_recorded`] — same computation, with per-phase spans
//!   and counters folded into a [`Recorder`](reorderlab_trace::Recorder).
//!   Recording only observes: outputs are bit-identical with any recorder
//!   at any thread count.
//!
//! Specs round-trip through [`Scheme::parse`] / [`Scheme::spec`] using the
//! grammar `name[:key=val,...]` (e.g. `slashburn:k_frac=0.005`,
//! `metis:parts=32,seed=42`), with single positional parameters accepted
//! for back-compatibility (`random:7`, `metis:64`).

use crate::error::SchemeError;
use crate::schemes::{
    adaptive_order_recorded, cdfs_order_recorded, comm_order_recorded, dbg_order_recorded,
    degree_sort, gorder, grappolo_order_recorded, grappolo_rcm_order_recorded, hub_cluster,
    hub_cluster_dbg_order_recorded, hub_sort, hub_sort_dbg_order_recorded, metis_order,
    natural_order, nd_order, rabbit_order, random_order, rcm_order_recorded,
    slashburn_order_recorded, CommIntra, DegreeDirection,
};
use reorderlab_community::LouvainConfig;
use reorderlab_graph::{Csr, Permutation};
use reorderlab_trace::{NoopRecorder, Recorder};

/// A vertex reordering scheme, parameterized where the paper parameterizes
/// it (Random's seed, METIS's part count, Gorder's window, SlashBurn's hub
/// fraction).
///
/// # Examples
///
/// ```
/// use reorderlab_core::Scheme;
/// use reorderlab_datasets::grid2d;
///
/// let g = grid2d(8, 8);
/// for scheme in Scheme::evaluation_suite(7) {
///     let pi = scheme.reorder(&g);
///     assert_eq!(pi.len(), 64, "{} must order every vertex", scheme.name());
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Scheme {
    /// The input order (identity).
    Natural,
    /// Uniform random shuffle.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Sort by degree.
    DegreeSort {
        /// Sort direction.
        direction: DegreeDirection,
    },
    /// Hubs first, sorted by degree \[38\].
    HubSort,
    /// Hubs first, natural order within \[2\].
    HubCluster,
    /// Iterative hub slashing \[21\].
    SlashBurn {
        /// Fraction of remaining vertices slashed per round.
        k_frac: f64,
    },
    /// Window-based Gscore greedy \[37\].
    Gorder {
        /// Window size.
        window: usize,
    },
    /// Reverse Cuthill–McKee \[9\].
    Rcm,
    /// Children Depth-First Search \[3\]: RCM without the per-level degree
    /// sort (the paper's footnote 1).
    Cdfs,
    /// Nested dissection \[15, 23\].
    NestedDissection {
        /// Partitioner seed.
        seed: u64,
    },
    /// Partition-induced ordering (METIS-style) \[22\].
    Metis {
        /// Number of parts.
        parts: usize,
        /// Partitioner seed.
        seed: u64,
    },
    /// Community-contiguous ordering from parallel Louvain \[28\].
    Grappolo {
        /// Worker threads (0 = rayon default).
        threads: usize,
    },
    /// Communities ordered by RCM on the coarsened graph (this paper).
    GrappoloRcm {
        /// Worker threads (0 = rayon default).
        threads: usize,
    },
    /// Incremental-aggregation community ordering \[1\].
    RabbitOrder,
    /// Degree-Based Grouping: power-of-two degree buckets, hottest first,
    /// natural order within (Faldu et al.).
    Dbg,
    /// DBG with each bucket's hubs degree-sorted to its front.
    HubSortDbg,
    /// Hub/cold split with DBG bucket grouping of the hubs only.
    HubClusterDbg,
    /// Louvain communities cluster-major, BFS inside each community.
    CommunityBfs,
    /// Louvain communities cluster-major, DFS inside each community.
    CommunityDfs,
    /// Louvain communities cluster-major, degree-sorted inside each.
    CommunityDegree,
    /// Feature-driven selection among the lightweight schemes, with a
    /// recorded decision trail (see
    /// [`adaptive_decide`](crate::schemes::adaptive_decide)).
    Adaptive,
}

impl Scheme {
    /// Stable display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Natural => "Natural",
            Scheme::Random { .. } => "Random",
            Scheme::DegreeSort { direction: DegreeDirection::Decreasing } => "DegreeSort",
            Scheme::DegreeSort { direction: DegreeDirection::Increasing } => "DegreeSortAsc",
            Scheme::HubSort => "HubSort",
            Scheme::HubCluster => "HubCluster",
            Scheme::SlashBurn { .. } => "SlashBurn",
            Scheme::Gorder { .. } => "Gorder",
            Scheme::Rcm => "RCM",
            Scheme::Cdfs => "CDFS",
            Scheme::NestedDissection { .. } => "ND",
            Scheme::Metis { .. } => "METIS",
            Scheme::Grappolo { .. } => "Grappolo",
            Scheme::GrappoloRcm { .. } => "Grappolo-RCM",
            Scheme::RabbitOrder => "Rabbit",
            Scheme::Dbg => "DBG",
            Scheme::HubSortDbg => "HubSortDBG",
            Scheme::HubClusterDbg => "HubClusterDBG",
            Scheme::CommunityBfs => "CommBFS",
            Scheme::CommunityDfs => "CommDFS",
            Scheme::CommunityDegree => "CommDegree",
            Scheme::Adaptive => "Adaptive",
        }
    }

    /// Checks this scheme's parameters against a graph of `vertices`
    /// vertices: `k_frac ∈ (0, 1]` (NaN rejected), `window ≥ 1`,
    /// `parts ≥ 1`, and `parts ≤ vertices`.
    ///
    /// # Errors
    ///
    /// The [`SchemeError`] variant naming the violated constraint.
    pub fn validate(&self, vertices: usize) -> Result<(), SchemeError> {
        match *self {
            Scheme::SlashBurn { k_frac } if !(k_frac > 0.0 && k_frac <= 1.0) => {
                Err(SchemeError::KFracOutOfRange { k_frac })
            }
            Scheme::Gorder { window: 0 } => Err(SchemeError::WindowTooSmall { window: 0 }),
            Scheme::Metis { parts: 0, .. } => Err(SchemeError::PartsTooSmall { parts: 0 }),
            Scheme::Metis { parts, .. } if parts > vertices => {
                Err(SchemeError::PartsExceedVertices { parts, vertices })
            }
            _ => Ok(()),
        }
    }

    /// Computes this scheme's permutation for `graph`, validating
    /// parameters first.
    ///
    /// # Errors
    ///
    /// Returns the [`SchemeError`] from [`Scheme::validate`]; the
    /// computation itself is infallible.
    ///
    /// # Examples
    ///
    /// ```
    /// use reorderlab_core::{Scheme, SchemeError};
    /// use reorderlab_datasets::grid2d;
    ///
    /// let g = grid2d(3, 3); // 9 vertices
    /// let err = Scheme::Metis { parts: 32, seed: 0 }.try_reorder(&g).unwrap_err();
    /// assert_eq!(err, SchemeError::PartsExceedVertices { parts: 32, vertices: 9 });
    /// ```
    pub fn try_reorder(&self, graph: &Csr) -> Result<Permutation, SchemeError> {
        self.try_reorder_recorded(graph, &mut NoopRecorder)
    }

    /// Computes this scheme's permutation for `graph`.
    ///
    /// # Panics
    ///
    /// Panics with the [`SchemeError`] message when
    /// [`Scheme::validate`] rejects the parameters; use
    /// [`Scheme::try_reorder`] to handle that as a value.
    pub fn reorder(&self, graph: &Csr) -> Permutation {
        // SAFETY: documented panicking twin over `try_reorder` (# Panics
        // in the doc above).
        self.try_reorder(graph).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Scheme::try_reorder`] with instrumentation: the whole computation
    /// runs under a `"reorder"` span, and the recorded kernels (RCM/CDFS
    /// component BFS, SlashBurn rounds, Louvain phases, coarsening) fold
    /// their per-phase timings and counters into `rec`.
    ///
    /// The recorder only observes — the returned permutation is
    /// bit-identical to [`Scheme::try_reorder`]'s at any thread count.
    ///
    /// # Errors
    ///
    /// Returns the [`SchemeError`] from [`Scheme::validate`]; nothing is
    /// recorded on error.
    pub fn try_reorder_recorded(
        &self,
        graph: &Csr,
        rec: &mut dyn Recorder,
    ) -> Result<Permutation, SchemeError> {
        self.validate(graph.num_vertices())?;
        rec.span_enter("reorder");
        let pi = match *self {
            Scheme::Natural => natural_order(graph),
            Scheme::Random { seed } => random_order(graph, seed),
            Scheme::DegreeSort { direction } => degree_sort(graph, direction),
            Scheme::HubSort => hub_sort(graph),
            Scheme::HubCluster => hub_cluster(graph),
            Scheme::SlashBurn { k_frac } => slashburn_order_recorded(graph, k_frac, rec),
            Scheme::Gorder { window } => gorder(graph, window, 4096),
            Scheme::Rcm => rcm_order_recorded(graph, rec),
            Scheme::Cdfs => cdfs_order_recorded(graph, rec),
            Scheme::NestedDissection { seed } => nd_order(graph, seed),
            Scheme::Metis { parts, seed } => metis_order(graph, parts, seed),
            Scheme::Grappolo { threads } => {
                grappolo_order_recorded(graph, &LouvainConfig::default().threads(threads), rec)
            }
            Scheme::GrappoloRcm { threads } => {
                grappolo_rcm_order_recorded(graph, &LouvainConfig::default().threads(threads), rec)
            }
            Scheme::RabbitOrder => rabbit_order(graph),
            Scheme::Dbg => dbg_order_recorded(graph, rec),
            Scheme::HubSortDbg => hub_sort_dbg_order_recorded(graph, rec),
            Scheme::HubClusterDbg => hub_cluster_dbg_order_recorded(graph, rec),
            Scheme::CommunityBfs => comm_order_recorded(graph, CommIntra::Bfs, rec),
            Scheme::CommunityDfs => comm_order_recorded(graph, CommIntra::Dfs, rec),
            Scheme::CommunityDegree => comm_order_recorded(graph, CommIntra::Degree, rec),
            Scheme::Adaptive => adaptive_order_recorded(graph, rec),
        };
        rec.span_exit("reorder");
        Ok(pi)
    }

    /// [`Scheme::reorder`] with instrumentation — the panicking wrapper
    /// around [`Scheme::try_reorder_recorded`].
    ///
    /// # Panics
    ///
    /// Panics with the [`SchemeError`] message when validation fails.
    pub fn reorder_recorded(&self, graph: &Csr, rec: &mut dyn Recorder) -> Permutation {
        // SAFETY: documented panicking twin over `try_reorder_recorded`
        // (# Panics in the doc above).
        self.try_reorder_recorded(graph, rec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Parses a scheme spec: `name[:key=val,...]`, or a single positional
    /// parameter for the schemes that take one (`random:7` ≡
    /// `random:seed=7`, `metis:64` ≡ `metis:parts=64`, `gorder:10`,
    /// `slashburn:0.01`, `nd:3`). Names are case-insensitive; `degreesort`,
    /// `nested-dissection`, `grappolorcm`, and `rabbit-order` are accepted
    /// aliases.
    ///
    /// Parameter ranges that do not depend on the graph (`k_frac`,
    /// `window`, `parts ≥ 1`) are validated here; `parts ≤ n` is checked
    /// by [`Scheme::try_reorder`].
    ///
    /// # Errors
    ///
    /// [`SchemeError::UnknownScheme`], [`SchemeError::UnknownParameter`],
    /// [`SchemeError::InvalidValue`], [`SchemeError::UnexpectedParameter`],
    /// or a range variant.
    ///
    /// # Examples
    ///
    /// ```
    /// use reorderlab_core::Scheme;
    ///
    /// let s = Scheme::parse("slashburn:k_frac=0.005").unwrap();
    /// assert_eq!(s, Scheme::SlashBurn { k_frac: 0.005 });
    /// assert_eq!(Scheme::parse(&s.spec()).unwrap(), s);
    /// ```
    pub fn parse(spec: &str) -> Result<Scheme, SchemeError> {
        Self::parse_impl(spec)
    }

    /// Normalizes any accepted spec spelling into the canonical
    /// round-trippable form: `canonical_spec("RCM")` is `"rcm"`,
    /// `canonical_spec("metis:64")` is `"metis:parts=64,seed=42"`.
    ///
    /// Two specs canonicalize equal iff they denote the same scheme, which
    /// makes the canonical form a sound cache key: the serve layer keys its
    /// permutation cache by `(graph digest, canonical spec)` so that
    /// alias/default/ordering variations of one spec share a cache entry.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Scheme::parse`].
    pub fn canonical_spec(spec: &str) -> Result<String, SchemeError> {
        Ok(Scheme::parse(spec)?.spec())
    }

    fn parse_impl(spec: &str) -> Result<Scheme, SchemeError> {
        let (name, mut params) = match spec.split_once(':') {
            Some((n, p)) => (n, Params::parse(p)?),
            None => (spec, Params::default()),
        };
        let scheme = match name.to_ascii_lowercase().as_str() {
            "natural" => Scheme::Natural,
            "random" => Scheme::Random { seed: params.take_u64("seed", 42)? },
            "degree" | "degreesort" => {
                Scheme::DegreeSort { direction: DegreeDirection::Decreasing }
            }
            "degree-asc" => Scheme::DegreeSort { direction: DegreeDirection::Increasing },
            "hubsort" => Scheme::HubSort,
            "hubcluster" => Scheme::HubCluster,
            "slashburn" => Scheme::SlashBurn { k_frac: params.take_f64("k_frac", 0.005)? },
            "gorder" => Scheme::Gorder { window: params.take_usize("window", 5)? },
            "rcm" => Scheme::Rcm,
            "cdfs" => Scheme::Cdfs,
            "nd" | "nested-dissection" => {
                Scheme::NestedDissection { seed: params.take_u64("seed", 42)? }
            }
            "metis" => {
                // Positional `metis:64` sets parts; `seed` is key-only.
                let parts = params.take_usize("parts", 32)?;
                let seed = params.take_u64("seed", 42)?;
                Scheme::Metis { parts, seed }
            }
            "grappolo" => Scheme::Grappolo { threads: params.take_usize("threads", 0)? },
            "grappolo-rcm" | "grappolorcm" => {
                Scheme::GrappoloRcm { threads: params.take_usize("threads", 0)? }
            }
            "rabbit" | "rabbit-order" => Scheme::RabbitOrder,
            "dbg" => Scheme::Dbg,
            "hubsort-dbg" | "hubsortdbg" => Scheme::HubSortDbg,
            "hubcluster-dbg" | "hubclusterdbg" => Scheme::HubClusterDbg,
            "comm-bfs" | "commbfs" => Scheme::CommunityBfs,
            "comm-dfs" | "commdfs" => Scheme::CommunityDfs,
            "comm-degree" | "commdegree" => Scheme::CommunityDegree,
            "adaptive" => Scheme::Adaptive,
            other => return Err(SchemeError::UnknownScheme { name: other.to_string() }),
        };
        params.finish(&scheme)?;
        // Graph-independent ranges are rejected at parse time; `usize::MAX`
        // stands in for "any graph" so only `parts ≤ n` is deferred.
        scheme.validate(usize::MAX)?;
        Ok(scheme)
    }

    /// The canonical, round-trippable spec of this scheme: bare names for
    /// parameterless schemes, `name:key=val[,...]` otherwise
    /// (`Grappolo { threads: 0 }` — the rayon default — prints bare).
    /// `Scheme::parse(&s.spec())` reconstructs `s` exactly.
    pub fn spec(&self) -> String {
        match *self {
            Scheme::Natural => "natural".into(),
            Scheme::Random { seed } => format!("random:seed={seed}"),
            Scheme::DegreeSort { direction: DegreeDirection::Decreasing } => "degree".into(),
            Scheme::DegreeSort { direction: DegreeDirection::Increasing } => "degree-asc".into(),
            Scheme::HubSort => "hubsort".into(),
            Scheme::HubCluster => "hubcluster".into(),
            Scheme::SlashBurn { k_frac } => format!("slashburn:k_frac={k_frac}"),
            Scheme::Gorder { window } => format!("gorder:window={window}"),
            Scheme::Rcm => "rcm".into(),
            Scheme::Cdfs => "cdfs".into(),
            Scheme::NestedDissection { seed } => format!("nd:seed={seed}"),
            Scheme::Metis { parts, seed } => format!("metis:parts={parts},seed={seed}"),
            Scheme::Grappolo { threads: 0 } => "grappolo".into(),
            Scheme::Grappolo { threads } => format!("grappolo:threads={threads}"),
            Scheme::GrappoloRcm { threads: 0 } => "grappolo-rcm".into(),
            Scheme::GrappoloRcm { threads } => format!("grappolo-rcm:threads={threads}"),
            Scheme::RabbitOrder => "rabbit".into(),
            Scheme::Dbg => "dbg".into(),
            Scheme::HubSortDbg => "hubsort-dbg".into(),
            Scheme::HubClusterDbg => "hubcluster-dbg".into(),
            Scheme::CommunityBfs => "comm-bfs".into(),
            Scheme::CommunityDfs => "comm-dfs".into(),
            Scheme::CommunityDegree => "comm-degree".into(),
            Scheme::Adaptive => "adaptive".into(),
        }
    }

    /// The 11 schemes of the paper's qualitative study (§V): Natural,
    /// Random, Degree Sort, SlashBurn, Gorder, Rabbit Order, Grappolo,
    /// Grappolo-RCM, METIS (32 parts), RCM, and ND — with the paper's
    /// parameter choices.
    pub fn evaluation_suite(seed: u64) -> Vec<Scheme> {
        vec![
            Scheme::Natural,
            Scheme::Random { seed },
            Scheme::DegreeSort { direction: DegreeDirection::Decreasing },
            Scheme::SlashBurn { k_frac: 0.005 },
            Scheme::Gorder { window: 5 },
            Scheme::RabbitOrder,
            Scheme::Grappolo { threads: 1 },
            Scheme::GrappoloRcm { threads: 1 },
            Scheme::Metis { parts: 32, seed },
            Scheme::Rcm,
            Scheme::NestedDissection { seed },
        ]
    }

    /// Every scheme in the crate — the 11-scheme evaluation suite plus the
    /// extensions (Hub Sort, Hub Clustering, ascending Degree Sort, CDFS) —
    /// for exhaustive sweeps.
    pub fn extended_suite(seed: u64) -> Vec<Scheme> {
        let mut all = Scheme::evaluation_suite(seed);
        all.push(Scheme::HubSort);
        all.push(Scheme::HubCluster);
        all.push(Scheme::DegreeSort { direction: DegreeDirection::Increasing });
        all.push(Scheme::Cdfs);
        all
    }

    /// Every canonical spec name [`Scheme::parse`] accepts (aliases and
    /// parameter forms excluded), in the order schemes are listed by the
    /// suites. [`SchemeError::UnknownScheme`] messages enumerate this list.
    pub const ACCEPTED_NAMES: [&'static str; 22] = [
        "natural",
        "random",
        "degree",
        "degree-asc",
        "hubsort",
        "hubcluster",
        "slashburn",
        "gorder",
        "rcm",
        "cdfs",
        "nd",
        "metis",
        "grappolo",
        "grappolo-rcm",
        "rabbit",
        "dbg",
        "hubsort-dbg",
        "hubcluster-dbg",
        "comm-bfs",
        "comm-dfs",
        "comm-degree",
        "adaptive",
    ];

    /// Every scheme in the registry with its suite parameterization: the
    /// extended suite plus the lightweight + adaptive family. This is the
    /// canonical enumeration the contract, degenerate, chaos, and recording
    /// test matrices sweep — a scheme absent here escapes every gate, so
    /// the registry's own tests assert each enum variant appears.
    pub fn all_schemes(seed: u64) -> Vec<Scheme> {
        let mut all = Scheme::extended_suite(seed);
        all.extend([
            Scheme::Dbg,
            Scheme::HubSortDbg,
            Scheme::HubClusterDbg,
            Scheme::CommunityBfs,
            Scheme::CommunityDfs,
            Scheme::CommunityDegree,
            Scheme::Adaptive,
        ]);
        all
    }

    /// The four schemes of the application study (§VI): Grappolo, RCM,
    /// Natural, and Degree Sort.
    pub fn application_suite() -> Vec<Scheme> {
        vec![
            Scheme::Grappolo { threads: 0 },
            Scheme::Rcm,
            Scheme::Natural,
            Scheme::DegreeSort { direction: DegreeDirection::Decreasing },
        ]
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Scheme {
    type Err = SchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::parse(s)
    }
}

/// Parsed `key=val` pairs (or one positional value) from the text after
/// `name:`. Each key may be consumed once; leftovers are reported by
/// [`Params::finish`].
#[derive(Default)]
struct Params {
    /// `(key, value)` pairs; the positional form is stored under `""`.
    pairs: Vec<(String, String)>,
    taken: Vec<bool>,
    /// True when the spec used the positional form, which parameterless
    /// schemes report as [`SchemeError::UnexpectedParameter`].
    positional: bool,
}

impl Params {
    fn parse(text: &str) -> Result<Params, SchemeError> {
        let mut pairs = Vec::new();
        let mut positional = false;
        if text.contains('=') {
            for item in text.split(',') {
                let (k, v) = item.split_once('=').ok_or_else(|| SchemeError::InvalidValue {
                    key: "parameter".into(),
                    value: item.to_string(),
                })?;
                pairs.push((k.trim().to_string(), v.trim().to_string()));
            }
        } else {
            // Positional back-compat: a single bare value for the scheme's
            // primary parameter.
            pairs.push((String::new(), text.to_string()));
            positional = true;
        }
        let taken = vec![false; pairs.len()];
        Ok(Params { pairs, taken, positional })
    }

    /// Consumes `key` (or the positional value), parsing it as `T`.
    fn take<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, SchemeError> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if !self.taken[i] && (k == key || (k.is_empty() && !self.taken.iter().any(|&t| t))) {
                self.taken[i] = true;
                return v.parse().map_err(|_| SchemeError::InvalidValue {
                    key: key.to_string(),
                    value: v.clone(),
                });
            }
        }
        Ok(default)
    }

    fn take_u64(&mut self, key: &str, default: u64) -> Result<u64, SchemeError> {
        self.take(key, default)
    }

    fn take_usize(&mut self, key: &str, default: usize) -> Result<usize, SchemeError> {
        self.take(key, default)
    }

    fn take_f64(&mut self, key: &str, default: f64) -> Result<f64, SchemeError> {
        self.take(key, default)
    }

    /// Reports any parameter no `take` call consumed.
    fn finish(&self, scheme: &Scheme) -> Result<(), SchemeError> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if !self.taken[i] {
                return Err(if self.positional {
                    SchemeError::UnexpectedParameter { scheme: scheme.name(), param: v.clone() }
                } else {
                    SchemeError::UnknownParameter { scheme: scheme.name(), key: k.clone() }
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{clique_chain, grid2d};
    use reorderlab_trace::RunRecorder;

    #[test]
    fn evaluation_suite_has_eleven_schemes() {
        let suite = Scheme::evaluation_suite(0);
        assert_eq!(suite.len(), 11);
        let names: std::collections::HashSet<&str> = suite.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 11, "scheme names must be unique");
        assert!(names.contains("METIS"));
        assert!(names.contains("Grappolo-RCM"));
    }

    #[test]
    fn application_suite_matches_figure9_columns() {
        let names: Vec<&str> = Scheme::application_suite().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["Grappolo", "RCM", "Natural", "DegreeSort"]);
    }

    #[test]
    fn every_scheme_produces_valid_permutation() {
        let g = grid2d(7, 7);
        for scheme in Scheme::evaluation_suite(3) {
            let pi = scheme.reorder(&g);
            assert_eq!(pi.len(), 49, "{scheme}");
            assert!(
                Permutation::from_ranks(pi.ranks().to_vec()).is_ok(),
                "{scheme} produced an invalid permutation"
            );
        }
    }

    #[test]
    fn every_scheme_handles_communities_graph() {
        // 4 cliques of 8 = 32 vertices, the minimum for METIS's 32 parts.
        let g = clique_chain(4, 8);
        for scheme in Scheme::evaluation_suite(1) {
            assert_eq!(scheme.reorder(&g).len(), 32, "{scheme}");
        }
    }

    #[test]
    fn extended_suite_is_superset_with_unique_names() {
        let ext = Scheme::extended_suite(1);
        assert_eq!(ext.len(), 15);
        let names: std::collections::HashSet<&str> = ext.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 15);
        assert!(names.contains("HubSort"));
        assert!(names.contains("CDFS"));
        let g = grid2d(6, 6);
        for s in &ext {
            assert_eq!(s.reorder(&g).len(), 36, "{s}");
        }
    }

    #[test]
    fn cdfs_variant_dispatches() {
        let g = grid2d(6, 6);
        let pi = Scheme::Cdfs.reorder(&g);
        assert_eq!(pi.len(), 36);
        assert_eq!(Scheme::Cdfs.name(), "CDFS");
        // CDFS is the no-sort relaxation of RCM, not part of the paper's
        // 11-scheme evaluation suite.
        assert!(Scheme::evaluation_suite(0).iter().all(|s| s.name() != "CDFS"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Scheme::Rcm.to_string(), "RCM");
        assert_eq!(Scheme::Metis { parts: 32, seed: 0 }.to_string(), "METIS");
    }

    #[test]
    fn validate_rejects_each_bad_parameter() {
        assert_eq!(
            Scheme::SlashBurn { k_frac: 0.0 }.validate(10),
            Err(SchemeError::KFracOutOfRange { k_frac: 0.0 })
        );
        assert_eq!(
            Scheme::Gorder { window: 0 }.validate(10),
            Err(SchemeError::WindowTooSmall { window: 0 })
        );
        assert_eq!(
            Scheme::Metis { parts: 0, seed: 0 }.validate(10),
            Err(SchemeError::PartsTooSmall { parts: 0 })
        );
        assert_eq!(
            Scheme::Metis { parts: 11, seed: 0 }.validate(10),
            Err(SchemeError::PartsExceedVertices { parts: 11, vertices: 10 })
        );
        assert_eq!(Scheme::Metis { parts: 10, seed: 0 }.validate(10), Ok(()));
        assert_eq!(Scheme::SlashBurn { k_frac: 1.0 }.validate(10), Ok(()));
    }

    #[test]
    fn validate_rejects_nan_k_frac() {
        // Derived PartialEq compares f64 by `==`, which NaN fails, so this
        // case needs a structural match rather than assert_eq.
        match (Scheme::SlashBurn { k_frac: f64::NAN }).validate(5) {
            Err(SchemeError::KFracOutOfRange { k_frac }) => assert!(k_frac.is_nan()),
            other => panic!("expected KFracOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn try_reorder_surfaces_typed_errors() {
        let g = grid2d(3, 3);
        let err = Scheme::Metis { parts: 32, seed: 1 }.try_reorder(&g).unwrap_err();
        assert_eq!(err, SchemeError::PartsExceedVertices { parts: 32, vertices: 9 });
        let err = Scheme::SlashBurn { k_frac: -0.5 }.try_reorder(&g).unwrap_err();
        assert_eq!(err, SchemeError::KFracOutOfRange { k_frac: -0.5 });
        assert!(Scheme::Rcm.try_reorder(&g).is_ok());
    }

    #[test]
    #[should_panic(expected = "metis parts 32 exceed the graph's 9 vertices")]
    fn reorder_panics_with_typed_message() {
        let g = grid2d(3, 3);
        Scheme::Metis { parts: 32, seed: 1 }.reorder(&g);
    }

    /// One slot per enum variant. The `match` has no wildcard arm, so
    /// adding a `Scheme` variant fails to compile until it is listed here —
    /// and the `all_schemes_covers_every_variant` test then fails until the
    /// variant joins [`Scheme::all_schemes`], keeping every test matrix
    /// exhaustive by construction.
    fn variant_slot(s: &Scheme) -> usize {
        match s {
            Scheme::Natural => 0,
            Scheme::Random { .. } => 1,
            Scheme::DegreeSort { direction: DegreeDirection::Decreasing } => 2,
            Scheme::DegreeSort { direction: DegreeDirection::Increasing } => 3,
            Scheme::HubSort => 4,
            Scheme::HubCluster => 5,
            Scheme::SlashBurn { .. } => 6,
            Scheme::Gorder { .. } => 7,
            Scheme::Rcm => 8,
            Scheme::Cdfs => 9,
            Scheme::NestedDissection { .. } => 10,
            Scheme::Metis { .. } => 11,
            Scheme::Grappolo { .. } => 12,
            Scheme::GrappoloRcm { .. } => 13,
            Scheme::RabbitOrder => 14,
            Scheme::Dbg => 15,
            Scheme::HubSortDbg => 16,
            Scheme::HubClusterDbg => 17,
            Scheme::CommunityBfs => 18,
            Scheme::CommunityDfs => 19,
            Scheme::CommunityDegree => 20,
            Scheme::Adaptive => 21,
        }
    }

    #[test]
    fn all_schemes_covers_every_variant() {
        let all = Scheme::all_schemes(42);
        assert_eq!(all.len(), 22);
        let mut seen = [false; 22];
        for s in &all {
            seen[variant_slot(s)] = true;
        }
        assert!(seen.iter().all(|&hit| hit), "a Scheme variant is missing from all_schemes");
        let names: std::collections::HashSet<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 22, "scheme names must be unique");
    }

    #[test]
    fn accepted_names_parse_and_cover_all_schemes() {
        for name in Scheme::ACCEPTED_NAMES {
            Scheme::parse(name).unwrap_or_else(|e| panic!("accepted name {name:?} rejected: {e}"));
        }
        for scheme in Scheme::all_schemes(3) {
            let spec = scheme.spec();
            let head = spec.split(':').next().unwrap_or(&spec);
            assert!(
                Scheme::ACCEPTED_NAMES.contains(&head),
                "spec head {head:?} missing from ACCEPTED_NAMES"
            );
        }
    }

    #[test]
    fn lightweight_family_dispatches() {
        let g = clique_chain(4, 8);
        for scheme in [
            Scheme::Dbg,
            Scheme::HubSortDbg,
            Scheme::HubClusterDbg,
            Scheme::CommunityBfs,
            Scheme::CommunityDfs,
            Scheme::CommunityDegree,
            Scheme::Adaptive,
        ] {
            assert_eq!(scheme.reorder(&g).len(), 32, "{scheme}");
            assert_eq!(scheme.validate(0), Ok(()), "{scheme} takes no parameters");
        }
    }

    #[test]
    fn parse_spec_round_trips_every_suite_scheme() {
        for scheme in Scheme::all_schemes(7) {
            let spec = scheme.spec();
            let parsed =
                Scheme::parse(&spec).unwrap_or_else(|e| panic!("{spec:?} failed to re-parse: {e}"));
            assert_eq!(parsed, scheme, "spec {spec:?} did not round-trip");
        }
        // Non-default threads round-trip through the key=val form.
        let s = Scheme::Grappolo { threads: 4 };
        assert_eq!(s.spec(), "grappolo:threads=4");
        assert_eq!(Scheme::parse(&s.spec()).unwrap(), s);
    }

    #[test]
    fn parse_accepts_key_value_and_positional_forms() {
        assert_eq!(Scheme::parse("random:7").unwrap(), Scheme::Random { seed: 7 });
        assert_eq!(Scheme::parse("random:seed=7").unwrap(), Scheme::Random { seed: 7 });
        assert_eq!(Scheme::parse("metis:64").unwrap(), Scheme::Metis { parts: 64, seed: 42 });
        assert_eq!(
            Scheme::parse("metis:parts=64,seed=3").unwrap(),
            Scheme::Metis { parts: 64, seed: 3 }
        );
        assert_eq!(
            Scheme::parse("slashburn:k_frac=0.01").unwrap(),
            Scheme::SlashBurn { k_frac: 0.01 }
        );
        assert_eq!(Scheme::parse("gorder:window=10").unwrap(), Scheme::Gorder { window: 10 });
        assert_eq!("rcm".parse::<Scheme>().unwrap(), Scheme::Rcm);
    }

    #[test]
    fn parse_rejects_bad_specs_with_typed_errors() {
        assert!(matches!(
            Scheme::parse("nope"),
            Err(SchemeError::UnknownScheme { name }) if name == "nope"
        ));
        assert!(matches!(
            Scheme::parse("rcm:5"),
            Err(SchemeError::UnexpectedParameter { scheme: "RCM", .. })
        ));
        assert!(matches!(
            Scheme::parse("metis:parts=8,window=2"),
            Err(SchemeError::UnknownParameter { scheme: "METIS", key }) if key == "window"
        ));
        assert!(matches!(Scheme::parse("gorder:x"), Err(SchemeError::InvalidValue { .. })));
        assert_eq!(
            Scheme::parse("gorder:window=0"),
            Err(SchemeError::WindowTooSmall { window: 0 })
        );
        assert_eq!(
            Scheme::parse("slashburn:2.0"),
            Err(SchemeError::KFracOutOfRange { k_frac: 2.0 })
        );
        assert_eq!(Scheme::parse("metis:0"), Err(SchemeError::PartsTooSmall { parts: 0 }));
    }

    #[test]
    fn recorded_reorder_is_bit_identical_and_times_the_run() {
        let g = clique_chain(4, 8);
        for scheme in Scheme::extended_suite(5) {
            let plain = scheme.reorder(&g);
            let mut rec = RunRecorder::new();
            let recorded = scheme.reorder_recorded(&g, &mut rec);
            assert_eq!(plain, recorded, "{scheme}: recording perturbed the permutation");
            assert_eq!(rec.spans()["reorder"].count, 1, "{scheme}");
            assert_eq!(rec.open_spans(), 0, "{scheme}: unbalanced spans");
        }
    }
}
