//! The scheme registry: a closed enumeration of every reordering scheme the
//! paper evaluates, with uniform dispatch. Harness code sweeps
//! [`Scheme::evaluation_suite`] to reproduce the 11-scheme comparisons of
//! §V.

use crate::schemes::{
    cdfs_order, degree_sort, gorder, grappolo_order_with, grappolo_rcm_order_with, hub_cluster,
    hub_sort, metis_order, natural_order, nd_order, rabbit_order, random_order, rcm_order,
    slashburn_order, DegreeDirection,
};
use reorderlab_community::LouvainConfig;
use reorderlab_graph::{Csr, Permutation};

/// A vertex reordering scheme, parameterized where the paper parameterizes
/// it (Random's seed, METIS's part count, Gorder's window, SlashBurn's hub
/// fraction).
///
/// # Examples
///
/// ```
/// use reorderlab_core::Scheme;
/// use reorderlab_datasets::grid2d;
///
/// let g = grid2d(8, 8);
/// for scheme in Scheme::evaluation_suite(7) {
///     let pi = scheme.reorder(&g);
///     assert_eq!(pi.len(), 64, "{} must order every vertex", scheme.name());
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Scheme {
    /// The input order (identity).
    Natural,
    /// Uniform random shuffle.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Sort by degree.
    DegreeSort {
        /// Sort direction.
        direction: DegreeDirection,
    },
    /// Hubs first, sorted by degree \[38\].
    HubSort,
    /// Hubs first, natural order within \[2\].
    HubCluster,
    /// Iterative hub slashing \[21\].
    SlashBurn {
        /// Fraction of remaining vertices slashed per round.
        k_frac: f64,
    },
    /// Window-based Gscore greedy \[37\].
    Gorder {
        /// Window size.
        window: usize,
    },
    /// Reverse Cuthill–McKee \[9\].
    Rcm,
    /// Children Depth-First Search \[3\]: RCM without the per-level degree
    /// sort (the paper's footnote 1).
    Cdfs,
    /// Nested dissection \[15, 23\].
    NestedDissection {
        /// Partitioner seed.
        seed: u64,
    },
    /// Partition-induced ordering (METIS-style) \[22\].
    Metis {
        /// Number of parts.
        parts: usize,
        /// Partitioner seed.
        seed: u64,
    },
    /// Community-contiguous ordering from parallel Louvain \[28\].
    Grappolo {
        /// Worker threads (0 = rayon default).
        threads: usize,
    },
    /// Communities ordered by RCM on the coarsened graph (this paper).
    GrappoloRcm {
        /// Worker threads (0 = rayon default).
        threads: usize,
    },
    /// Incremental-aggregation community ordering \[1\].
    RabbitOrder,
}

impl Scheme {
    /// Stable display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Natural => "Natural",
            Scheme::Random { .. } => "Random",
            Scheme::DegreeSort { direction: DegreeDirection::Decreasing } => "DegreeSort",
            Scheme::DegreeSort { direction: DegreeDirection::Increasing } => "DegreeSortAsc",
            Scheme::HubSort => "HubSort",
            Scheme::HubCluster => "HubCluster",
            Scheme::SlashBurn { .. } => "SlashBurn",
            Scheme::Gorder { .. } => "Gorder",
            Scheme::Rcm => "RCM",
            Scheme::Cdfs => "CDFS",
            Scheme::NestedDissection { .. } => "ND",
            Scheme::Metis { .. } => "METIS",
            Scheme::Grappolo { .. } => "Grappolo",
            Scheme::GrappoloRcm { .. } => "Grappolo-RCM",
            Scheme::RabbitOrder => "Rabbit",
        }
    }

    /// Computes this scheme's permutation for `graph`.
    pub fn reorder(&self, graph: &Csr) -> Permutation {
        match *self {
            Scheme::Natural => natural_order(graph),
            Scheme::Random { seed } => random_order(graph, seed),
            Scheme::DegreeSort { direction } => degree_sort(graph, direction),
            Scheme::HubSort => hub_sort(graph),
            Scheme::HubCluster => hub_cluster(graph),
            Scheme::SlashBurn { k_frac } => slashburn_order(graph, k_frac),
            Scheme::Gorder { window } => gorder(graph, window, 4096),
            Scheme::Rcm => rcm_order(graph),
            Scheme::Cdfs => cdfs_order(graph),
            Scheme::NestedDissection { seed } => nd_order(graph, seed),
            Scheme::Metis { parts, seed } => metis_order(graph, parts, seed),
            Scheme::Grappolo { threads } => {
                grappolo_order_with(graph, &LouvainConfig::default().threads(threads))
            }
            Scheme::GrappoloRcm { threads } => {
                grappolo_rcm_order_with(graph, &LouvainConfig::default().threads(threads))
            }
            Scheme::RabbitOrder => rabbit_order(graph),
        }
    }

    /// The 11 schemes of the paper's qualitative study (§V): Natural,
    /// Random, Degree Sort, SlashBurn, Gorder, Rabbit Order, Grappolo,
    /// Grappolo-RCM, METIS (32 parts), RCM, and ND — with the paper's
    /// parameter choices.
    pub fn evaluation_suite(seed: u64) -> Vec<Scheme> {
        vec![
            Scheme::Natural,
            Scheme::Random { seed },
            Scheme::DegreeSort { direction: DegreeDirection::Decreasing },
            Scheme::SlashBurn { k_frac: 0.005 },
            Scheme::Gorder { window: 5 },
            Scheme::RabbitOrder,
            Scheme::Grappolo { threads: 1 },
            Scheme::GrappoloRcm { threads: 1 },
            Scheme::Metis { parts: 32, seed },
            Scheme::Rcm,
            Scheme::NestedDissection { seed },
        ]
    }

    /// Every scheme in the crate — the 11-scheme evaluation suite plus the
    /// extensions (Hub Sort, Hub Clustering, ascending Degree Sort, CDFS) —
    /// for exhaustive sweeps.
    pub fn extended_suite(seed: u64) -> Vec<Scheme> {
        let mut all = Scheme::evaluation_suite(seed);
        all.push(Scheme::HubSort);
        all.push(Scheme::HubCluster);
        all.push(Scheme::DegreeSort { direction: DegreeDirection::Increasing });
        all.push(Scheme::Cdfs);
        all
    }

    /// The four schemes of the application study (§VI): Grappolo, RCM,
    /// Natural, and Degree Sort.
    pub fn application_suite() -> Vec<Scheme> {
        vec![
            Scheme::Grappolo { threads: 0 },
            Scheme::Rcm,
            Scheme::Natural,
            Scheme::DegreeSort { direction: DegreeDirection::Decreasing },
        ]
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{clique_chain, grid2d};

    #[test]
    fn evaluation_suite_has_eleven_schemes() {
        let suite = Scheme::evaluation_suite(0);
        assert_eq!(suite.len(), 11);
        let names: std::collections::HashSet<&str> = suite.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 11, "scheme names must be unique");
        assert!(names.contains("METIS"));
        assert!(names.contains("Grappolo-RCM"));
    }

    #[test]
    fn application_suite_matches_figure9_columns() {
        let names: Vec<&str> = Scheme::application_suite().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["Grappolo", "RCM", "Natural", "DegreeSort"]);
    }

    #[test]
    fn every_scheme_produces_valid_permutation() {
        let g = grid2d(7, 7);
        for scheme in Scheme::evaluation_suite(3) {
            let pi = scheme.reorder(&g);
            assert_eq!(pi.len(), 49, "{scheme}");
            assert!(
                Permutation::from_ranks(pi.ranks().to_vec()).is_ok(),
                "{scheme} produced an invalid permutation"
            );
        }
    }

    #[test]
    fn every_scheme_handles_communities_graph() {
        let g = clique_chain(3, 5);
        for scheme in Scheme::evaluation_suite(1) {
            assert_eq!(scheme.reorder(&g).len(), 15, "{scheme}");
        }
    }

    #[test]
    fn extended_suite_is_superset_with_unique_names() {
        let ext = Scheme::extended_suite(1);
        assert_eq!(ext.len(), 15);
        let names: std::collections::HashSet<&str> = ext.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 15);
        assert!(names.contains("HubSort"));
        assert!(names.contains("CDFS"));
        let g = grid2d(5, 5);
        for s in &ext {
            assert_eq!(s.reorder(&g).len(), 25, "{s}");
        }
    }

    #[test]
    fn cdfs_variant_dispatches() {
        let g = grid2d(6, 6);
        let pi = Scheme::Cdfs.reorder(&g);
        assert_eq!(pi.len(), 36);
        assert_eq!(Scheme::Cdfs.name(), "CDFS");
        // CDFS is the no-sort relaxation of RCM, not part of the paper's
        // 11-scheme evaluation suite.
        assert!(Scheme::evaluation_suite(0).iter().all(|s| s.name() != "CDFS"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Scheme::Rcm.to_string(), "RCM");
        assert_eq!(Scheme::Metis { parts: 32, seed: 0 }.to_string(), "METIS");
    }
}
