//! Packing factor — the hub-locality diagnostic from the lightweight-
//! reordering literature the paper cites (Balaji & Lucia \[2\]: lightweight
//! techniques help "provided the input graph is amenable to Degree Sort
//! reordering (satisfies certain characteristics like 'Packing Factor')").
//!
//! Intuition: frequently-accessed *hot* (high-degree) vertices have
//! per-vertex data (ranks, scores, labels) laid out by vertex id. If the
//! hot vertices occupy few cache lines, their data stays resident; if they
//! are scattered, every hot access risks a miss. The packing factor is the
//! ratio of cache lines actually touched by hot-vertex data to the minimum
//! number of lines that could hold it — `1.0` is perfect packing, larger is
//! worse.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use crate::error::MeasureError;
use reorderlab_graph::{Csr, Permutation};

/// Packing diagnostics for one ordering of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackingFactor {
    /// Number of hot vertices (degree strictly above the mean).
    pub hot_vertices: usize,
    /// Cache lines actually containing at least one hot vertex's datum.
    pub lines_touched: usize,
    /// Minimum lines needed if the hot vertices were contiguous.
    pub lines_needed: usize,
    /// `lines_touched / lines_needed` (≥ 1, or 0 when there are no hot
    /// vertices).
    pub factor: f64,
}

/// Computes the packing factor of `pi` on `graph`, modelling `entry_bytes`
/// of per-vertex data (4 for a `u32` rank/label array) and `line_bytes`
/// cache lines (64 on the paper's platform).
///
/// Hot vertices are those with degree strictly above the mean degree — the
/// same threshold [`hub_sort`](crate::schemes::hub_sort) uses.
///
/// # Panics
///
/// Panics if `pi` does not cover the graph, `entry_bytes` is 0, or
/// `line_bytes < entry_bytes`.
///
/// # Examples
///
/// ```
/// use reorderlab_core::measures::packing_factor;
/// use reorderlab_core::schemes::{hub_cluster, random_order};
/// use reorderlab_datasets::barabasi_albert;
///
/// let g = barabasi_albert(2_000, 2, 7);
/// let packed = packing_factor(&g, &hub_cluster(&g), 4, 64);
/// let scattered = packing_factor(&g, &random_order(&g, 3), 4, 64);
/// assert!(packed.factor <= scattered.factor);
/// assert!((packed.factor - 1.0).abs() < 1e-9, "hub clustering packs perfectly");
/// ```
pub fn packing_factor(
    graph: &Csr,
    pi: &Permutation,
    entry_bytes: usize,
    line_bytes: usize,
) -> PackingFactor {
    // SAFETY: documented panicking twin over `try_packing_factor`
    // (# Panics in the doc above).
    try_packing_factor(graph, pi, entry_bytes, line_bytes).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`packing_factor`]: returns a typed error instead of panicking
/// on a mismatched permutation or impossible cache geometry.
///
/// Degenerate graphs are well-defined, not errors: `n == 0` or a graph with
/// no hot vertices yields `factor: 0.0` with zeroed counts.
///
/// # Errors
///
/// - [`MeasureError::PermutationMismatch`] when `pi.len() != n`.
/// - [`MeasureError::ZeroEntryBytes`] when `entry_bytes == 0`.
/// - [`MeasureError::LineTooSmall`] when `line_bytes < entry_bytes`.
pub fn try_packing_factor(
    graph: &Csr,
    pi: &Permutation,
    entry_bytes: usize,
    line_bytes: usize,
) -> Result<PackingFactor, MeasureError> {
    let n = graph.num_vertices();
    if pi.len() != n {
        return Err(MeasureError::PermutationMismatch {
            permutation_len: pi.len(),
            num_vertices: n,
        });
    }
    if entry_bytes == 0 {
        return Err(MeasureError::ZeroEntryBytes);
    }
    if line_bytes < entry_bytes {
        return Err(MeasureError::LineTooSmall { entry_bytes, line_bytes });
    }
    if n == 0 {
        return Ok(PackingFactor {
            hot_vertices: 0,
            lines_touched: 0,
            lines_needed: 0,
            factor: 0.0,
        });
    }
    let per_line = line_bytes / entry_bytes;
    let mean = graph.num_arcs() as f64 / n as f64;
    let hot_ranks: Vec<u32> =
        (0..n as u32).filter(|&v| graph.degree(v) as f64 > mean).map(|v| pi.rank(v)).collect();
    let hot = hot_ranks.len();
    if hot == 0 {
        return Ok(PackingFactor {
            hot_vertices: 0,
            lines_touched: 0,
            lines_needed: 0,
            factor: 0.0,
        });
    }
    let mut lines: Vec<u32> = hot_ranks.iter().map(|&r| r / per_line as u32).collect();
    lines.sort_unstable();
    lines.dedup();
    let touched = lines.len();
    let needed = hot.div_ceil(per_line);
    Ok(PackingFactor {
        hot_vertices: hot,
        lines_touched: touched,
        lines_needed: needed,
        factor: touched as f64 / needed as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{degree_sort, hub_cluster, hub_sort, random_order, DegreeDirection};
    use reorderlab_datasets::{barabasi_albert, cycle, star};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn hub_schemes_pack_perfectly() {
        let g = barabasi_albert(1_000, 2, 5);
        for pi in [hub_cluster(&g), hub_sort(&g), degree_sort(&g, DegreeDirection::Decreasing)] {
            let p = packing_factor(&g, &pi, 4, 64);
            assert!(p.hot_vertices > 0);
            assert!((p.factor - 1.0).abs() < 1e-9, "hot prefix must pack into minimal lines");
        }
    }

    #[test]
    fn random_order_scatters_hot_vertices() {
        let g = barabasi_albert(2_000, 2, 9);
        let p = packing_factor(&g, &random_order(&g, 1), 4, 64);
        assert!(p.factor > 2.0, "random layout should scatter hubs, factor {}", p.factor);
        assert!(p.lines_touched > p.lines_needed);
    }

    #[test]
    fn regular_graph_has_no_hot_vertices() {
        let g = cycle(32);
        let p = packing_factor(&g, &Permutation::identity(32), 4, 64);
        assert_eq!(p.hot_vertices, 0);
        assert_eq!(p.factor, 0.0);
    }

    #[test]
    fn star_single_hub_always_one_line() {
        let g = star(100);
        let p = packing_factor(&g, &random_order(&g, 3), 4, 64);
        assert_eq!(p.hot_vertices, 1);
        assert_eq!(p.lines_touched, 1);
        assert_eq!(p.factor, 1.0);
    }

    #[test]
    fn factor_bounded_by_entries_per_line() {
        // At most `per_line` hot entries can share a line, so the factor
        // can never exceed min(per_line, lines available / lines needed).
        let g = barabasi_albert(1_000, 2, 2);
        for (entry, line) in [(4usize, 8usize), (4, 64), (4, 256)] {
            let p = packing_factor(&g, &random_order(&g, 5), entry, line);
            let per_line = (line / entry) as f64;
            assert!(p.factor >= 1.0 - 1e-9, "factor {} below 1", p.factor);
            assert!(
                p.factor <= per_line + 1e-9,
                "factor {} exceeds per-line bound {per_line}",
                p.factor
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(0).build().unwrap();
        let p = packing_factor(&g, &Permutation::identity(0), 4, 64);
        assert_eq!(p.factor, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_bad_geometry() {
        let g = star(4);
        let _ = packing_factor(&g, &Permutation::identity(4), 64, 4);
    }

    #[test]
    fn try_variant_reports_typed_errors() {
        let g = star(4);
        let pi = Permutation::identity(4);
        assert_eq!(
            try_packing_factor(&g, &Permutation::identity(2), 4, 64),
            Err(MeasureError::PermutationMismatch { permutation_len: 2, num_vertices: 4 })
        );
        assert_eq!(try_packing_factor(&g, &pi, 0, 64), Err(MeasureError::ZeroEntryBytes));
        assert_eq!(
            try_packing_factor(&g, &pi, 64, 4),
            Err(MeasureError::LineTooSmall { entry_bytes: 64, line_bytes: 4 })
        );
        assert!(try_packing_factor(&g, &pi, 4, 64).is_ok());
    }

    #[test]
    fn try_variant_is_total_on_degenerate_graphs() {
        let empty = GraphBuilder::undirected(0).build().unwrap();
        let p = try_packing_factor(&empty, &Permutation::identity(0), 4, 64).unwrap();
        assert_eq!(p.factor, 0.0);
        assert!(p.factor.is_finite());
        let regular = cycle(6);
        let p = try_packing_factor(&regular, &Permutation::identity(6), 4, 64).unwrap();
        assert_eq!(p.hot_vertices, 0);
        assert!(p.factor.is_finite());
    }
}
