//! Bits-per-edge: the storage cost a vertex ordering actually buys.
//!
//! The gap measures (§II-A) are motivated partly by compression — small
//! gaps varint-encode in fewer bytes (MinLogA, §III-A) — but they only
//! *bound* the cost. This module reports the realized cost: the exact
//! byte size of the delta/varint gap stream
//! (`reorderlab_graph::CompressedCsr`) the ordering induces, normalized
//! per stored arc. It sits next to ξ̂ and β̂ in the measure tables, and
//! `avg_log_gap` is its information-theoretic lower bound.
//!
//! Only the gap stream is counted: offsets and weights are
//! order-invariant, so including them would just add a constant that
//! dilutes the comparison between schemes.

use crate::error::MeasureError;
use reorderlab_graph::{permuted_gap_bytes, Csr, Permutation};

/// The compression footprint of one ordering of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionMeasures {
    /// Exact size in bytes of the LEB128 gap stream under the ordering
    /// (first target, then deltas, per sorted row).
    pub gap_bytes: u64,
    /// `8 · gap_bytes / max(arcs, 1)` — bits of gap stream per stored
    /// arc. Lower is better; 8.0 is the varint floor (every arc costs at
    /// least one byte), so values near 8 mean the ordering has squeezed
    /// almost every gap into a single byte.
    pub bits_per_edge: f64,
}

/// Computes the compression footprint of `graph` relabeled by `pi`,
/// without materializing the permuted graph.
///
/// Exactly equals compressing the permuted graph: the result matches
/// `CompressedCsr::from_csr(&graph.permuted(pi)?)` →
/// [`reorderlab_graph::CompressedCsr::gap_bytes`] /
/// [`reorderlab_graph::CompressedCsr::bits_per_edge`] bit for bit.
///
/// Unlike the gap measures there is no panicking twin: this measure is
/// only reached through `Result`-plumbed pipelines (the `measure
/// compression` op), so the fallible form is the whole API.
///
/// # Errors
///
/// [`MeasureError::PermutationMismatch`] when `pi.len() != n`.
///
/// # Examples
///
/// ```
/// use reorderlab_core::measures::try_compression_measures;
/// use reorderlab_graph::{GraphBuilder, Permutation};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A path in natural order: every gap fits one varint byte.
/// let g = GraphBuilder::undirected(64)
///     .edges((0..63).map(|i| (i, i + 1)))
///     .build()?;
/// let natural = try_compression_measures(&g, &Permutation::identity(64))?;
/// let reversed = try_compression_measures(&g, &Permutation::identity(64).reversed())?;
/// // Reversal preserves locality, so both orders price every arc at ~1 byte.
/// assert_eq!(natural.gap_bytes, reversed.gap_bytes);
/// assert!(natural.bits_per_edge <= 9.0);
/// # Ok(())
/// # }
/// ```
pub fn try_compression_measures(
    graph: &Csr,
    pi: &Permutation,
) -> Result<CompressionMeasures, MeasureError> {
    let gap_bytes = permuted_gap_bytes(graph, pi).ok_or(MeasureError::PermutationMismatch {
        permutation_len: pi.len(),
        num_vertices: graph.num_vertices(),
    })?;
    let arcs = graph.num_arcs().max(1);
    Ok(CompressionMeasures { gap_bytes, bits_per_edge: 8.0 * gap_bytes as f64 / arcs as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::try_gap_measures;
    use reorderlab_graph::{CompressedCsr, GraphBuilder};

    fn sample() -> Csr {
        GraphBuilder::undirected(7)
            .edges([(0, 3), (0, 4), (0, 5), (1, 4), (1, 6), (2, 4), (2, 5), (2, 6), (3, 5), (5, 6)])
            .build()
            .unwrap()
    }

    #[test]
    fn matches_materialized_compression() {
        let g = sample();
        for pi in [
            Permutation::identity(7),
            Permutation::from_ranks(vec![4, 0, 2, 6, 1, 5, 3]).unwrap(),
            Permutation::identity(7).reversed(),
        ] {
            let m = try_compression_measures(&g, &pi).unwrap();
            let h = g.permuted(&pi).unwrap();
            let cz = CompressedCsr::from_csr(&h).unwrap();
            assert_eq!(m.gap_bytes, cz.gap_bytes() as u64);
            assert_eq!(m.bits_per_edge, cz.bits_per_edge());
        }
    }

    #[test]
    fn avg_log_gap_lower_bounds_bits_per_edge() {
        let g = sample();
        for pi in [Permutation::identity(7), Permutation::identity(7).reversed()] {
            let gaps = try_gap_measures(&g, &pi).unwrap();
            let comp = try_compression_measures(&g, &pi).unwrap();
            assert!(
                gaps.avg_log_gap <= comp.bits_per_edge,
                "log bound {} must not exceed realized {}",
                gaps.avg_log_gap,
                comp.bits_per_edge
            );
        }
    }

    #[test]
    fn mismatched_permutation_is_a_typed_error() {
        let g = sample();
        let err = try_compression_measures(&g, &Permutation::identity(6)).unwrap_err();
        assert!(matches!(err, MeasureError::PermutationMismatch { .. }), "{err}");
    }

    #[test]
    fn empty_graph_prices_at_zero() {
        let g = GraphBuilder::undirected(0).build().unwrap();
        let m = try_compression_measures(&g, &Permutation::identity(0)).unwrap();
        assert_eq!(m.gap_bytes, 0);
        assert_eq!(m.bits_per_edge, 0.0);
    }
}
