//! Gap-distribution summaries — the data behind the paper's violin plots
//! (Figure 8).
//!
//! The paper notes that gap distributions are heavily skewed ("long tails
//! characteristic of lognormal distribution"), so the summary works on a
//! logarithmic axis: decade buckets plus the usual five-number summary.

use rayon::prelude::*;

/// Fixed chunk size for the parallel histogram/mean reduction. The size is
/// a constant (not derived from the worker count) so chunk boundaries — and
/// therefore any f64 fold order — are identical at every thread count.
const REDUCE_CHUNK: usize = 4096;

/// A distribution summary of edge gaps under one ordering: quantiles, mean,
/// and a logarithmic histogram suitable for rendering a violin/density plot.
#[derive(Debug, Clone, PartialEq)]
pub struct GapDistribution {
    /// Number of samples (edges).
    pub count: usize,
    /// Minimum gap.
    pub min: u32,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum gap.
    pub max: u32,
    /// Arithmetic mean (this is exactly the average gap profile ξ̂).
    pub mean: f64,
    /// Log-decade histogram: `buckets[d]` counts gaps in
    /// `[10^d, 10^(d+1))`, with bucket 0 also holding gaps of 0 and 1.
    pub log_buckets: Vec<usize>,
}

impl GapDistribution {
    /// Summarizes a gap sample (need not be sorted). Returns a zeroed
    /// summary for an empty sample.
    pub fn from_gaps(gaps: &[u32]) -> Self {
        if gaps.is_empty() {
            return GapDistribution {
                count: 0,
                min: 0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0,
                mean: 0.0,
                log_buckets: Vec::new(),
            };
        }
        let mut sorted = gaps.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        // SAFETY: the empty-input case returned early above, so `sorted`
        // holds at least one gap.
        let max = *sorted.last().expect("non-empty");
        let decades = if max < 10 { 1 } else { (max as f64).log10().floor() as usize + 1 };
        // Parallel reduction over fixed-size chunks: each yields an exact
        // integer gap sum and a decade-bucket count vector, merged in chunk
        // order. Both accumulators are integers, so the merge is order-free
        // and the result matches the serial scan exactly.
        let chunks = count.div_ceil(REDUCE_CHUNK);
        let sorted_ref: &[u32] = &sorted;
        let partials: Vec<(u64, Vec<usize>)> = (0..chunks)
            .into_par_iter()
            .map(|ci| {
                let chunk = &sorted_ref[ci * REDUCE_CHUNK..count.min((ci + 1) * REDUCE_CHUNK)];
                let mut sum = 0u64;
                let mut buckets = vec![0usize; decades];
                for &g in chunk {
                    sum += g as u64;
                    let d = if g < 10 { 0 } else { (g as f64).log10().floor() as usize };
                    buckets[d] += 1;
                }
                (sum, buckets)
            })
            .collect();
        let mut gap_sum = 0u64;
        let mut log_buckets = vec![0usize; decades];
        for (s, b) in &partials {
            gap_sum += s;
            for (dst, src) in log_buckets.iter_mut().zip(b) {
                *dst += src;
            }
        }
        let mean = gap_sum as f64 / count as f64;
        GapDistribution {
            count,
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max,
            mean,
            log_buckets,
        }
    }

    /// Fraction of gaps that are "short" (at most `threshold`). The paper
    /// reads violin width at the bottom as exactly this quantity ("a larger
    /// fraction of the gaps are small — between one and ten").
    pub fn fraction_at_most(&self, threshold: u32, gaps: &[u32]) -> f64 {
        if gaps.is_empty() {
            return 0.0;
        }
        gaps.iter().filter(|&&g| g <= threshold).count() as f64 / gaps.len() as f64
    }
}

/// Linear-interpolated quantile of a sorted sample.
fn quantile(sorted: &[u32], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0] as f64;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let d = GapDistribution::from_gaps(&[1, 2, 3, 4, 5]);
        assert_eq!(d.count, 5);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 5);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.q1, 2.0);
        assert_eq!(d.q3, 4.0);
        assert_eq!(d.mean, 3.0);
    }

    #[test]
    fn interpolated_quantiles() {
        let d = GapDistribution::from_gaps(&[0, 10]);
        assert_eq!(d.median, 5.0);
        assert_eq!(d.q1, 2.5);
        assert_eq!(d.q3, 7.5);
    }

    #[test]
    fn log_buckets_by_decade() {
        let d = GapDistribution::from_gaps(&[0, 1, 5, 9, 10, 99, 100, 1000]);
        // bucket 0: 0..9 -> 4, bucket 1: 10..99 -> 2, bucket 2: 100..999 -> 1,
        // bucket 3: 1000..9999 -> 1
        assert_eq!(d.log_buckets, vec![4, 2, 1, 1]);
    }

    #[test]
    fn empty_sample() {
        let d = GapDistribution::from_gaps(&[]);
        assert_eq!(d.count, 0);
        assert!(d.log_buckets.is_empty());
        assert_eq!(d.fraction_at_most(10, &[]), 0.0);
    }

    #[test]
    fn single_sample() {
        let d = GapDistribution::from_gaps(&[7]);
        assert_eq!(d.median, 7.0);
        assert_eq!(d.q1, 7.0);
        assert_eq!(d.min, 7);
        assert_eq!(d.max, 7);
    }

    #[test]
    fn fraction_at_most_counts() {
        let gaps = [1u32, 2, 3, 100, 200];
        let d = GapDistribution::from_gaps(&gaps);
        assert_eq!(d.fraction_at_most(10, &gaps), 3.0 / 5.0);
        assert_eq!(d.fraction_at_most(0, &gaps), 0.0);
        assert_eq!(d.fraction_at_most(1000, &gaps), 1.0);
    }

    #[test]
    fn bucket_count_matches_total() {
        let gaps: Vec<u32> = (0..1000).map(|i| (i * 37) % 5000).collect();
        let d = GapDistribution::from_gaps(&gaps);
        assert_eq!(d.log_buckets.iter().sum::<usize>(), 1000);
    }
}
