//! Linear-arrangement gap measures (paper §II-A).
//!
//! Given an ordering Π, the *gap* of edge `(i, j)` is `ξ_Π(i,j) = |Π(i) −
//! Π(j)|`. From it the paper derives: the average gap profile ξ̂ (mean over
//! edges), the vertex bandwidth β_i (max gap at a vertex), the graph
//! bandwidth β (max over all edges), and the average graph bandwidth β̂
//! (mean vertex bandwidth).

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use crate::error::MeasureError;
use rayon::prelude::*;
use reorderlab_graph::{Csr, Permutation};

/// Checks that `pi` covers exactly the graph's vertices.
fn check_cover(graph: &Csr, pi: &Permutation) -> Result<(), MeasureError> {
    if pi.len() != graph.num_vertices() {
        return Err(MeasureError::PermutationMismatch {
            permutation_len: pi.len(),
            num_vertices: graph.num_vertices(),
        });
    }
    Ok(())
}

/// The four global gap measures the paper evaluates orderings on (§V).
///
/// `avg_log_gap` is also a storage bound: it lower-bounds the realized
/// varint cost per arc that [`crate::measures::try_compression_measures`]
/// reports as `bits_per_edge` (a gap `ξ` needs at least `log2(1 + ξ)`
/// bits under any prefix-free gap code).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapMeasures {
    /// Average gap profile ξ̂: mean `|Π(i) − Π(j)|` over edges (0 for an
    /// edgeless graph).
    pub avg_gap: f64,
    /// Graph bandwidth β: maximum gap over all edges (0 for an edgeless
    /// graph).
    pub bandwidth: u32,
    /// Average graph bandwidth β̂: mean vertex bandwidth over all vertices.
    pub avg_bandwidth: f64,
    /// Average log gap: mean `log2(1 + ξ)` over edges — the objective of
    /// the MinLogA problem (§III-A), relevant to graph compression \[5, 7\].
    pub avg_log_gap: f64,
}

/// Computes all four gap measures of `graph` under `pi`.
///
/// Self loops have gap 0 and participate like any other edge.
///
/// # Panics
///
/// Panics if `pi` does not cover exactly the graph's vertices.
///
/// # Examples
///
/// An analogue of the paper's Figure 2: a 7-vertex graph whose natural order
/// scores β = 5, β̂ ≈ 4.43, improved by the paper's reordering
/// Π = \[5,1,3,7,2,6,4\] (1-based) to β = 3, β̂ ≈ 2.86.
///
/// ```
/// use reorderlab_core::measures::gap_measures;
/// use reorderlab_graph::{GraphBuilder, Permutation};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = GraphBuilder::undirected(7)
///     .edges([(0, 3), (0, 4), (0, 5), (1, 4), (1, 6), (2, 4), (2, 5), (2, 6), (3, 5), (5, 6)])
///     .build()?;
/// let natural = gap_measures(&g, &Permutation::identity(7));
/// assert_eq!(natural.bandwidth, 5);
/// let pi = Permutation::from_ranks(vec![4, 0, 2, 6, 1, 5, 3])?; // 0-based Figure 2
/// let reordered = gap_measures(&g, &pi);
/// assert_eq!(reordered.bandwidth, 3);
/// assert!(reordered.avg_gap < natural.avg_gap);
/// # Ok(())
/// # }
/// ```
pub fn gap_measures(graph: &Csr, pi: &Permutation) -> GapMeasures {
    // SAFETY: documented panicking twin over `try_gap_measures` (# Panics
    // in the doc above); the error carries the validation message.
    try_gap_measures(graph, pi).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`gap_measures`]: returns a typed error instead of panicking
/// when `pi` does not cover exactly the graph's vertices.
///
/// Every field of the result is finite for every graph, including the
/// degenerate ones (empty, single-vertex, zero-edge): means over empty
/// edge or vertex sets are defined as 0.
///
/// # Errors
///
/// [`MeasureError::PermutationMismatch`] when `pi.len() != n`.
pub fn try_gap_measures(graph: &Csr, pi: &Permutation) -> Result<GapMeasures, MeasureError> {
    check_cover(graph, pi)?;
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(GapMeasures {
            avg_gap: 0.0,
            bandwidth: 0,
            avg_bandwidth: 0.0,
            avg_log_gap: 0.0,
        });
    }
    // Parallel reduction over CSR rows. Integer accumulators are order-free;
    // the f64 log-gap partials are produced per vertex and folded in index
    // order below, so results never depend on worker count or chunking.
    let partials: Vec<RowPartial> =
        (0..n as u32).into_par_iter().map(|u| row_partial(graph, pi, u)).collect();

    let mut sum = 0u64;
    let mut log_sum = 0.0f64;
    let mut count = 0u64;
    let mut bandwidth = 0u32;
    let mut band_sum = 0.0f64;
    for p in &partials {
        sum += p.sum;
        log_sum += p.log_sum;
        count += p.count;
        bandwidth = bandwidth.max(p.edge_band);
    }
    // A directed row only sees its out-arcs; fold in-arc contributions to
    // the target's vertex bandwidth serially, as the serial reference did.
    if graph.is_directed() {
        let mut vertex_band: Vec<u32> = partials.iter().map(|p| p.row_band).collect();
        for (u, v, _) in graph.edges() {
            let gap = pi.rank(u).abs_diff(pi.rank(v));
            vertex_band[v as usize] = vertex_band[v as usize].max(gap);
        }
        for &b in &vertex_band {
            band_sum += b as f64;
        }
    } else {
        for p in &partials {
            band_sum += p.row_band as f64;
        }
    }

    let avg_gap = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
    let avg_log_gap = if count == 0 { 0.0 } else { log_sum / count as f64 };
    let avg_bandwidth = band_sum / n as f64;
    Ok(GapMeasures { avg_gap, bandwidth, avg_bandwidth, avg_log_gap })
}

/// Per-row partial reduction of [`gap_measures`].
struct RowPartial {
    /// Sum of gaps over this row's *logical* edges.
    sum: u64,
    /// Sum of `log2(1 + gap)` over this row's logical edges, accumulated in
    /// arc order.
    log_sum: f64,
    /// Logical edges owned by this row.
    count: u64,
    /// Max gap over this row's logical edges.
    edge_band: u32,
    /// Max gap over *all* arcs of this row — for an undirected graph the
    /// mirror arcs make this exactly the vertex bandwidth `β_u`.
    row_band: u32,
}

fn row_partial(graph: &Csr, pi: &Permutation, u: u32) -> RowPartial {
    let ru = pi.rank(u);
    let directed = graph.is_directed();
    let mut p = RowPartial { sum: 0, log_sum: 0.0, count: 0, edge_band: 0, row_band: 0 };
    for &v in graph.neighbors(u) {
        let gap = ru.abs_diff(pi.rank(v));
        p.row_band = p.row_band.max(gap);
        if !directed && v < u {
            continue; // mirror arc; the (v, u) row owns this undirected edge
        }
        p.sum += gap as u64;
        p.log_sum += (1.0 + gap as f64).log2();
        p.count += 1;
        p.edge_band = p.edge_band.max(gap);
    }
    p
}

/// Returns the gap `ξ_Π(i,j)` of every (logical) edge, in edge-iteration
/// order — the raw *gap profile* behind the paper's violin plots (Fig. 8).
///
/// # Panics
///
/// Panics if `pi` does not cover exactly the graph's vertices.
pub fn edge_gaps(graph: &Csr, pi: &Permutation) -> Vec<u32> {
    // SAFETY: documented panicking twin over `try_edge_gaps` (# Panics
    // in the doc above).
    try_edge_gaps(graph, pi).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`edge_gaps`]: returns a typed error instead of panicking when
/// `pi` does not cover exactly the graph's vertices.
///
/// # Errors
///
/// [`MeasureError::PermutationMismatch`] when `pi.len() != n`.
pub fn try_edge_gaps(graph: &Csr, pi: &Permutation) -> Result<Vec<u32>, MeasureError> {
    check_cover(graph, pi)?;
    let n = graph.num_vertices();
    let directed = graph.is_directed();
    // Gap rows are independent; computing them in parallel and flattening in
    // row order reproduces edge-iteration order exactly.
    let rows: Vec<Vec<u32>> = (0..n as u32)
        .into_par_iter()
        .map(|u| {
            let ru = pi.rank(u);
            graph
                .neighbors(u)
                .iter()
                .filter(|&&v| directed || v >= u)
                .map(|&v| ru.abs_diff(pi.rank(v)))
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(graph.num_edges());
    for row in rows {
        out.extend(row);
    }
    Ok(out)
}

/// Returns the bandwidth `β_v` of every vertex: the maximum gap between `v`
/// and any neighbor (0 for isolated vertices).
///
/// # Panics
///
/// Panics if `pi` does not cover exactly the graph's vertices.
pub fn vertex_bandwidths(graph: &Csr, pi: &Permutation) -> Vec<u32> {
    // SAFETY: documented panicking twin over `try_vertex_bandwidths`
    // (# Panics in the doc above).
    try_vertex_bandwidths(graph, pi).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`vertex_bandwidths`]: returns a typed error instead of
/// panicking when `pi` does not cover exactly the graph's vertices.
///
/// # Errors
///
/// [`MeasureError::PermutationMismatch`] when `pi.len() != n`.
pub fn try_vertex_bandwidths(graph: &Csr, pi: &Permutation) -> Result<Vec<u32>, MeasureError> {
    check_cover(graph, pi)?;
    let n = graph.num_vertices();
    Ok((0..n as u32)
        .into_par_iter()
        .map(|v| {
            let rv = pi.rank(v);
            graph.neighbors(v).iter().fold(0u32, |b, &u| b.max(rv.abs_diff(pi.rank(u))))
        })
        .collect())
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use reorderlab_graph::GraphBuilder;

    /// The serial reference the parallel implementation must reproduce —
    /// the original single-threaded edge-iteration scan.
    fn serial_gap_measures(graph: &Csr, pi: &Permutation) -> GapMeasures {
        let n = graph.num_vertices();
        let mut sum = 0u64;
        let mut log_sum = 0.0f64;
        let mut count = 0u64;
        let mut bandwidth = 0u32;
        let mut vertex_band = vec![0u32; n];
        for (u, v, _) in graph.edges() {
            let gap = pi.rank(u).abs_diff(pi.rank(v));
            sum += gap as u64;
            log_sum += (1.0 + gap as f64).log2();
            count += 1;
            bandwidth = bandwidth.max(gap);
            let (ui, vi) = (u as usize, v as usize);
            vertex_band[ui] = vertex_band[ui].max(gap);
            vertex_band[vi] = vertex_band[vi].max(gap);
        }
        let avg_gap = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
        let avg_log_gap = if count == 0 { 0.0 } else { log_sum / count as f64 };
        let avg_bandwidth = if n == 0 {
            0.0
        } else {
            vertex_band.iter().map(|&b| b as f64).sum::<f64>() / n as f64
        };
        GapMeasures { avg_gap, bandwidth, avg_bandwidth, avg_log_gap }
    }

    fn serial_edge_gaps(graph: &Csr, pi: &Permutation) -> Vec<u32> {
        graph.edges().map(|(u, v, _)| pi.rank(u).abs_diff(pi.rank(v))).collect()
    }

    fn serial_vertex_bandwidths(graph: &Csr, pi: &Permutation) -> Vec<u32> {
        let n = graph.num_vertices();
        let mut band = vec![0u32; n];
        for v in 0..n as u32 {
            let rv = pi.rank(v);
            for &u in graph.neighbors(v) {
                band[v as usize] = band[v as usize].max(rv.abs_diff(pi.rank(u)));
            }
        }
        band
    }

    /// Deterministic Fisher–Yates permutation from a SplitMix64 stream.
    fn random_perm(n: usize, seed: u64) -> Permutation {
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        Permutation::from_order(&order).unwrap()
    }

    fn build(n: usize, edges: Vec<(u32, u32)>, directed: bool) -> Csr {
        let edges: Vec<(u32, u32)> =
            edges.into_iter().map(|(u, v)| (u % n as u32, v % n as u32)).collect();
        let b = if directed { GraphBuilder::directed(n) } else { GraphBuilder::undirected(n) };
        b.edges(edges).build().unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn parallel_gap_measures_match_serial(
            n in 1usize..48,
            edges in proptest::collection::vec((0u32..48, 0u32..48), 0..160),
            seed in any::<u64>(),
            directed in any::<bool>(),
        ) {
            let g = build(n, edges, directed);
            let pi = random_perm(n, seed);
            let par = gap_measures(&g, &pi);
            let ser = serial_gap_measures(&g, &pi);
            prop_assert_eq!(par.bandwidth, ser.bandwidth);
            // Integer-derived quantities are exact.
            prop_assert_eq!(par.avg_gap.to_bits(), ser.avg_gap.to_bits());
            prop_assert_eq!(par.avg_bandwidth.to_bits(), ser.avg_bandwidth.to_bits());
            // The log-gap accumulates per-vertex partials in index order —
            // deterministic, but grouped differently than the flat serial
            // scan, so it agrees to rounding error rather than bit-for-bit.
            prop_assert!(
                (par.avg_log_gap - ser.avg_log_gap).abs() <= 1e-12 * (1.0 + ser.avg_log_gap.abs()),
                "avg_log_gap {} vs {}", par.avg_log_gap, ser.avg_log_gap
            );
        }

        #[test]
        fn parallel_edge_gaps_match_serial(
            n in 1usize..48,
            edges in proptest::collection::vec((0u32..48, 0u32..48), 0..160),
            seed in any::<u64>(),
            directed in any::<bool>(),
        ) {
            let g = build(n, edges, directed);
            let pi = random_perm(n, seed);
            prop_assert_eq!(edge_gaps(&g, &pi), serial_edge_gaps(&g, &pi));
        }

        #[test]
        fn parallel_vertex_bandwidths_match_serial(
            n in 1usize..48,
            edges in proptest::collection::vec((0u32..48, 0u32..48), 0..160),
            seed in any::<u64>(),
            directed in any::<bool>(),
        ) {
            let g = build(n, edges, directed);
            let pi = random_perm(n, seed);
            prop_assert_eq!(vertex_bandwidths(&g, &pi), serial_vertex_bandwidths(&g, &pi));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_graph::GraphBuilder;

    fn fig2_graph() -> Csr {
        // An analogue of the paper's Figure 2 (whose exact edge list is not
        // given): 7 vertices, 10 edges, natural measures ξ̂=3.2, β=5,
        // β̂=4.43; under the paper's Π = [5,1,3,7,2,6,4] (1-based) they drop
        // to ξ̂=1.8, β=3, β̂=2.86 — matching Figure 2's β̂ exactly.
        GraphBuilder::undirected(7)
            .edges([(0, 3), (0, 4), (0, 5), (1, 4), (1, 6), (2, 4), (2, 5), (2, 6), (3, 5), (5, 6)])
            .build()
            .unwrap()
    }

    #[test]
    fn figure2_natural_order() {
        let g = fig2_graph();
        let m = gap_measures(&g, &Permutation::identity(7));
        assert_eq!(m.bandwidth, 5);
        assert!((m.avg_gap - 3.2).abs() < 1e-12, "ξ̂ = 3.2, got {}", m.avg_gap);
        assert!((m.avg_bandwidth - 31.0 / 7.0).abs() < 1e-12, "β̂ ≈ 4.43 as in Figure 2");
    }

    #[test]
    fn figure2_reordering_improves() {
        let g = fig2_graph();
        let natural = gap_measures(&g, &Permutation::identity(7));
        let pi = Permutation::from_ranks(vec![4, 0, 2, 6, 1, 5, 3]).unwrap();
        let re = gap_measures(&g, &pi);
        assert_eq!(re.bandwidth, 3);
        assert!(re.avg_gap < natural.avg_gap);
        assert!((re.avg_bandwidth - 20.0 / 7.0).abs() < 1e-12, "β̂ ≈ 2.86 as in Figure 2");
    }

    #[test]
    fn path_natural_order_is_optimal() {
        let g =
            GraphBuilder::undirected(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build().unwrap();
        let m = gap_measures(&g, &Permutation::identity(5));
        assert_eq!(m.avg_gap, 1.0);
        assert_eq!(m.bandwidth, 1);
        assert_eq!(m.avg_bandwidth, 1.0);
    }

    #[test]
    fn path_reversal_is_equivalent() {
        let g =
            GraphBuilder::undirected(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build().unwrap();
        let rev = Permutation::identity(5).reversed();
        let m = gap_measures(&g, &rev);
        assert_eq!(m.bandwidth, 1);
        assert_eq!(m.avg_gap, 1.0);
    }

    #[test]
    fn edgeless_graph_measures_zero() {
        let g = GraphBuilder::undirected(4).build().unwrap();
        let m = gap_measures(&g, &Permutation::identity(4));
        assert_eq!(m.avg_gap, 0.0);
        assert_eq!(m.bandwidth, 0);
        assert_eq!(m.avg_bandwidth, 0.0);
        assert_eq!(m.avg_log_gap, 0.0);
    }

    #[test]
    fn log_gap_on_path() {
        // All gaps are 1, so avg log gap = log2(2) = 1.
        let g = GraphBuilder::undirected(4).edges([(0, 1), (1, 2), (2, 3)]).build().unwrap();
        let m = gap_measures(&g, &Permutation::identity(4));
        assert!((m.avg_log_gap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_gap_compresses_large_gaps() {
        // The MinLogA objective is less sensitive to a single huge gap than
        // ξ̂: doubling one gap adds ~1 to its log term, not its magnitude.
        let g = GraphBuilder::undirected(64).edge(0, 63).edge(0, 1).build().unwrap();
        let m = gap_measures(&g, &Permutation::identity(64));
        assert_eq!(m.avg_gap, 32.0);
        assert!(m.avg_log_gap < 4.0, "log measure {} stays small", m.avg_log_gap);
    }

    #[test]
    fn edge_gaps_match_measures() {
        let g = fig2_graph();
        let pi = Permutation::from_ranks(vec![4, 0, 2, 6, 1, 5, 3]).unwrap();
        let gaps = edge_gaps(&g, &pi);
        assert_eq!(gaps.len(), g.num_edges());
        let m = gap_measures(&g, &pi);
        assert_eq!(*gaps.iter().max().unwrap(), m.bandwidth);
        let avg = gaps.iter().map(|&g| g as f64).sum::<f64>() / gaps.len() as f64;
        assert!((avg - m.avg_gap).abs() < 1e-12);
    }

    #[test]
    fn vertex_bandwidths_match_avg() {
        let g = fig2_graph();
        let pi = Permutation::identity(7);
        let bands = vertex_bandwidths(&g, &pi);
        let m = gap_measures(&g, &pi);
        let avg = bands.iter().map(|&b| b as f64).sum::<f64>() / 7.0;
        assert!((avg - m.avg_bandwidth).abs() < 1e-12);
        assert_eq!(*bands.iter().max().unwrap(), m.bandwidth);
    }

    #[test]
    fn isolated_vertices_have_zero_bandwidth() {
        let g = GraphBuilder::undirected(3).edge(0, 1).build().unwrap();
        let bands = vertex_bandwidths(&g, &Permutation::identity(3));
        assert_eq!(bands[2], 0);
    }

    #[test]
    #[should_panic(expected = "permutation must cover")]
    fn rejects_wrong_length() {
        let g = GraphBuilder::undirected(3).edge(0, 1).build().unwrap();
        let _ = gap_measures(&g, &Permutation::identity(2));
    }

    #[test]
    fn try_variants_report_typed_mismatch() {
        let g = GraphBuilder::undirected(3).edge(0, 1).build().unwrap();
        let short = Permutation::identity(2);
        let err = MeasureError::PermutationMismatch { permutation_len: 2, num_vertices: 3 };
        assert_eq!(try_gap_measures(&g, &short), Err(err.clone()));
        assert_eq!(try_edge_gaps(&g, &short), Err(err.clone()));
        assert_eq!(try_vertex_bandwidths(&g, &short), Err(err));
    }

    #[test]
    fn try_gap_measures_is_finite_on_degenerate_graphs() {
        for g in [
            GraphBuilder::undirected(0).build().unwrap(),
            GraphBuilder::undirected(1).build().unwrap(),
            GraphBuilder::undirected(4).build().unwrap(),
            GraphBuilder::undirected(2).edge(0, 0).edge(1, 1).build().unwrap(),
        ] {
            let pi = Permutation::identity(g.num_vertices());
            let m = try_gap_measures(&g, &pi).unwrap();
            assert!(m.avg_gap.is_finite());
            assert!(m.avg_bandwidth.is_finite());
            assert!(m.avg_log_gap.is_finite());
        }
    }
}
