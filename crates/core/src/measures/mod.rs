//! Gap measures and their presentation summaries (paper §II-A and §V).

mod distribution;
mod gap;
mod packing;
mod profile;

pub use distribution::GapDistribution;
pub use gap::{edge_gaps, gap_measures, vertex_bandwidths, GapMeasures};
pub use packing::{packing_factor, PackingFactor};
pub use profile::PerformanceProfile;
