//! Gap measures and their presentation summaries (paper §II-A and §V).

mod compression;
mod distribution;
mod gap;
mod packing;
mod profile;

pub use compression::{try_compression_measures, CompressionMeasures};
pub use distribution::GapDistribution;
pub use gap::{
    edge_gaps, gap_measures, try_edge_gaps, try_gap_measures, try_vertex_bandwidths,
    vertex_bandwidths, GapMeasures,
};
pub use packing::{packing_factor, try_packing_factor, PackingFactor};
pub use profile::PerformanceProfile;
