//! Performance profiles (Dolan–Moré style), the presentation device used by
//! the paper's Figures 1, 4, 5, 6, and 7.
//!
//! Given a set of methods evaluated on a set of problem instances with a
//! lower-is-better metric, a performance profile plots, for each method, the
//! fraction of instances on which that method is within a factor τ of the
//! best method — as τ sweeps from 1 upward. "The closer a curve is aligned
//! to the Y-axis, the better its relative performance."

use crate::error::MeasureError;

/// A computed performance profile over a fixed method and instance set.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceProfile {
    /// Method names, in input order.
    pub methods: Vec<String>,
    /// The τ sample points (factors relative to best, ≥ 1).
    pub taus: Vec<f64>,
    /// `curves[m][t]` = fraction of instances where method `m` is within
    /// `taus[t]` × best.
    pub curves: Vec<Vec<f64>>,
    /// Per-method performance ratios on each instance (`f64::INFINITY`
    /// where the method failed to be comparable, e.g. best was 0 and the
    /// method was not).
    pub ratios: Vec<Vec<f64>>,
}

impl PerformanceProfile {
    /// Builds a profile from raw scores.
    ///
    /// `scores[m][i]` is method `m`'s metric on instance `i` (lower is
    /// better, must be finite and ≥ 0). `taus` are the factor sample points;
    /// they are sorted and deduplicated internally and must all be ≥ 1.
    ///
    /// When an instance's best score is 0, any method also scoring 0 has
    /// ratio 1 and every other method has ratio ∞.
    ///
    /// # Panics
    ///
    /// Panics if the score matrix is ragged or empty, contains a negative or
    /// non-finite value, or any τ < 1 — with the message of the
    /// [`MeasureError`] that [`try_new`](Self::try_new) would have returned.
    pub fn new<S: Into<String> + Clone>(methods: &[S], scores: &[Vec<f64>], taus: &[f64]) -> Self {
        // SAFETY: documented panicking twin over `try_new` (# Panics in
        // the doc above).
        Self::try_new(methods, scores, taus).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`new`](Self::new): validates the score matrix and τ sample
    /// points, returning a typed [`MeasureError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// - [`MeasureError::MethodCountMismatch`] when `methods.len() != scores.len()`.
    /// - [`MeasureError::NoMethods`] / [`MeasureError::NoInstances`] /
    ///   [`MeasureError::NoTaus`] on empty inputs.
    /// - [`MeasureError::RaggedScores`] when rows differ in length.
    /// - [`MeasureError::InvalidScore`] on a negative, NaN, or infinite score.
    /// - [`MeasureError::TauOutOfRange`] when any τ < 1 (or NaN).
    pub fn try_new<S: Into<String> + Clone>(
        methods: &[S],
        scores: &[Vec<f64>],
        taus: &[f64],
    ) -> Result<Self, MeasureError> {
        if methods.len() != scores.len() {
            return Err(MeasureError::MethodCountMismatch {
                methods: methods.len(),
                rows: scores.len(),
            });
        }
        if scores.is_empty() {
            return Err(MeasureError::NoMethods);
        }
        let num_instances = scores[0].len();
        if num_instances == 0 {
            return Err(MeasureError::NoInstances);
        }
        for (m, row) in scores.iter().enumerate() {
            if row.len() != num_instances {
                return Err(MeasureError::RaggedScores {
                    row: m,
                    len: row.len(),
                    expected: num_instances,
                });
            }
            for (i, &s) in row.iter().enumerate() {
                if !(s.is_finite() && s >= 0.0) {
                    return Err(MeasureError::InvalidScore { method: m, instance: i, value: s });
                }
            }
        }
        let mut taus: Vec<f64> = taus.to_vec();
        taus.sort_by(f64::total_cmp);
        taus.dedup();
        if taus.is_empty() {
            return Err(MeasureError::NoTaus);
        }
        if let Some(&bad) = taus.iter().find(|&&t| t < 1.0 || t.is_nan()) {
            return Err(MeasureError::TauOutOfRange { tau: bad });
        }

        // Best per instance.
        let best: Vec<f64> = (0..num_instances)
            .map(|i| scores.iter().map(|row| row[i]).fold(f64::INFINITY, f64::min))
            .collect();

        let ratios: Vec<Vec<f64>> = scores
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&best)
                    .map(|(&s, &b)| {
                        if b == 0.0 {
                            if s == 0.0 {
                                1.0
                            } else {
                                f64::INFINITY
                            }
                        } else {
                            s / b
                        }
                    })
                    .collect()
            })
            .collect();

        let curves: Vec<Vec<f64>> = ratios
            .iter()
            .map(|row| {
                taus.iter()
                    .map(|&t| {
                        row.iter().filter(|&&r| r <= t + 1e-12).count() as f64
                            / num_instances as f64
                    })
                    .collect()
            })
            .collect();

        Ok(PerformanceProfile {
            methods: methods.iter().cloned().map(Into::into).collect(),
            taus,
            curves,
            ratios,
        })
    }

    /// Default τ sample points used across the paper-style figures:
    /// 1, 1.5, 2, 3, 4, 5, 8, 10, 15, 20, 25, 30, 40, 50, 100.
    pub fn default_taus() -> Vec<f64> {
        vec![1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 8.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0, 100.0]
    }

    /// Number of instances the profile covers.
    pub fn num_instances(&self) -> usize {
        self.ratios[0].len()
    }

    /// Area-under-curve summary per method (higher is better); a cheap
    /// scalar for ranking methods by overall profile dominance.
    pub fn auc(&self) -> Vec<f64> {
        self.curves
            .iter()
            .map(|curve| {
                let mut area = 0.0;
                for t in 1..self.taus.len() {
                    let width = self.taus[t] - self.taus[t - 1];
                    area += width * (curve[t] + curve[t - 1]) / 2.0;
                }
                let span = match (self.taus.first(), self.taus.last()) {
                    (Some(&first), Some(&last)) => last - first,
                    _ => 0.0,
                };
                if span > 0.0 {
                    area / span
                } else {
                    curve[0]
                }
            })
            .collect()
    }

    /// Fraction of instances on which each method is strictly best
    /// (within a 1e-12 tolerance, ties count for all tied methods).
    pub fn win_fraction(&self) -> Vec<f64> {
        let n = self.num_instances();
        self.ratios
            .iter()
            .map(|row| row.iter().filter(|&&r| r <= 1.0 + 1e-12).count() as f64 / n as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_method_hugs_y_axis() {
        // Method A is best everywhere; B is 2x worse everywhere.
        let p = PerformanceProfile::new(
            &["A", "B"],
            &[vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]],
            &[1.0, 2.0, 4.0],
        );
        assert_eq!(p.curves[0], vec![1.0, 1.0, 1.0]);
        assert_eq!(p.curves[1], vec![0.0, 1.0, 1.0]);
        assert_eq!(p.win_fraction(), vec![1.0, 0.0]);
        let auc = p.auc();
        assert!(auc[0] > auc[1]);
    }

    #[test]
    fn curves_are_monotone_in_tau() {
        let p = PerformanceProfile::new(
            &["A", "B", "C"],
            &[vec![1.0, 5.0], vec![2.0, 1.0], vec![10.0, 10.0]],
            &PerformanceProfile::default_taus(),
        );
        for curve in &p.curves {
            for w in curve.windows(2) {
                assert!(w[1] >= w[0], "profile curves must be non-decreasing");
            }
        }
    }

    #[test]
    fn num_instances_counts_columns() {
        let p = PerformanceProfile::new(&["A"], &[vec![1.0, 2.0, 3.0]], &[1.0]);
        assert_eq!(p.num_instances(), 3);
    }

    #[test]
    fn ties_count_for_both() {
        let p = PerformanceProfile::new(&["A", "B"], &[vec![1.0], vec![1.0]], &[1.0]);
        assert_eq!(p.win_fraction(), vec![1.0, 1.0]);
    }

    #[test]
    fn zero_best_handled() {
        let p = PerformanceProfile::new(&["A", "B"], &[vec![0.0], vec![5.0]], &[1.0, 1000.0]);
        assert_eq!(p.ratios[0][0], 1.0);
        assert!(p.ratios[1][0].is_infinite());
        assert_eq!(p.curves[1], vec![0.0, 0.0]);
    }

    #[test]
    fn taus_sorted_and_deduped() {
        let p = PerformanceProfile::new(&["A"], &[vec![1.0]], &[5.0, 1.0, 5.0, 2.0]);
        assert_eq!(p.taus, vec![1.0, 2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn rejects_ragged_scores() {
        let _ = PerformanceProfile::new(&["A", "B"], &[vec![1.0, 2.0], vec![1.0]], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_tau_below_one() {
        let _ = PerformanceProfile::new(&["A"], &[vec![1.0]], &[0.5]);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            PerformanceProfile::try_new(&["A", "B"], &[vec![1.0]], &[1.0]),
            Err(MeasureError::MethodCountMismatch { methods: 2, rows: 1 })
        );
        assert_eq!(
            PerformanceProfile::try_new::<&str>(&[], &[], &[1.0]),
            Err(MeasureError::NoMethods)
        );
        assert_eq!(
            PerformanceProfile::try_new(&["A"], &[vec![]], &[1.0]),
            Err(MeasureError::NoInstances)
        );
        assert_eq!(
            PerformanceProfile::try_new(&["A", "B"], &[vec![1.0, 2.0], vec![1.0]], &[1.0]),
            Err(MeasureError::RaggedScores { row: 1, len: 1, expected: 2 })
        );
        assert!(matches!(
            PerformanceProfile::try_new(&["A"], &[vec![f64::NAN]], &[1.0]),
            Err(MeasureError::InvalidScore { method: 0, instance: 0, .. })
        ));
        assert_eq!(
            PerformanceProfile::try_new(&["A"], &[vec![1.0]], &[0.5]),
            Err(MeasureError::TauOutOfRange { tau: 0.5 })
        );
        assert_eq!(
            PerformanceProfile::try_new(&["A"], &[vec![1.0]], &[]),
            Err(MeasureError::NoTaus)
        );
        assert!(matches!(
            PerformanceProfile::try_new(&["A"], &[vec![1.0]], &[f64::NAN]),
            Err(MeasureError::TauOutOfRange { tau }) if tau.is_nan()
        ));
    }

    #[test]
    fn ratio_factors_match_paper_reading() {
        // "Gorder produces an average gap that is 5x worse than the best on
        // 50% of the inputs" — i.e. its curve reaches 0.5 only at tau = 5.
        let p = PerformanceProfile::new(
            &["best", "gorder"],
            &[vec![1.0, 1.0, 1.0, 1.0], vec![1.2, 4.9, 5.0, 8.0]],
            &[1.0, 2.0, 5.0, 10.0],
        );
        let gorder = &p.curves[1];
        assert_eq!(gorder[1], 0.25); // within 2x on 1/4
        assert_eq!(gorder[2], 0.75); // within 5x on 3/4
        assert_eq!(gorder[3], 1.0);
    }
}
