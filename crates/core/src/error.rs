//! Typed errors for scheme validation, spec parsing, and measures.
//!
//! [`SchemeError`](crate::SchemeError) replaces the panics and stringly
//! errors that previously guarded scheme parameters: construction-time
//! ranges (`k_frac ∈ (0, 1]`, `window ≥ 1`, `parts ≥ 1`), graph-dependent
//! constraints (`parts ≤ n`), and the `name[:key=val,...]` spec grammar of
//! [`Scheme::parse`](crate::Scheme::parse).
//!
//! [`MeasureError`](crate::MeasureError) does the same for the measure
//! layer: every `assert!` that used to guard gap measures, packing factors,
//! and performance-profile construction is now a typed error the `try_*`
//! entry points return, so harness code can degrade gracefully on
//! degenerate inputs instead of aborting.

use std::fmt;

/// Why a [`Scheme`](crate::Scheme) could not be validated, parsed, or run.
///
/// Returned by [`Scheme::parse`](crate::Scheme::parse),
/// [`Scheme::validate`](crate::Scheme::validate), and
/// [`Scheme::try_reorder`](crate::Scheme::try_reorder);
/// [`Scheme::reorder`](crate::Scheme::reorder) panics with the same
/// message via [`Display`](std::fmt::Display).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchemeError {
    /// SlashBurn's hub fraction was outside `(0, 1]` (or NaN).
    KFracOutOfRange {
        /// The rejected fraction.
        k_frac: f64,
    },
    /// Gorder's window was zero.
    WindowTooSmall {
        /// The rejected window size.
        window: usize,
    },
    /// METIS was asked for zero parts.
    PartsTooSmall {
        /// The rejected part count.
        parts: usize,
    },
    /// METIS was asked for more parts than the graph has vertices.
    PartsExceedVertices {
        /// The requested part count.
        parts: usize,
        /// The graph's vertex count.
        vertices: usize,
    },
    /// A spec named a scheme that is not in the registry.
    UnknownScheme {
        /// The unrecognized name.
        name: String,
    },
    /// A spec passed a `key=value` parameter the scheme does not accept.
    UnknownParameter {
        /// The scheme's display name.
        scheme: &'static str,
        /// The unrecognized key.
        key: String,
    },
    /// A spec parameter value failed to parse for its key.
    InvalidValue {
        /// The parameter key (or positional parameter name).
        key: String,
        /// The unparseable value text.
        value: String,
    },
    /// A spec passed a parameter to a parameterless scheme.
    UnexpectedParameter {
        /// The scheme's display name.
        scheme: &'static str,
        /// The offending parameter text.
        param: String,
    },
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::KFracOutOfRange { k_frac } => {
                write!(f, "slashburn fraction {k_frac} must be in (0, 1]")
            }
            SchemeError::WindowTooSmall { .. } => write!(f, "gorder window must be at least 1"),
            SchemeError::PartsTooSmall { .. } => write!(f, "metis needs at least 1 part"),
            SchemeError::PartsExceedVertices { parts, vertices } => {
                write!(f, "metis parts {parts} exceed the graph's {vertices} vertices")
            }
            SchemeError::UnknownScheme { name } => write!(
                f,
                "unknown scheme {name:?}; accepted schemes: {}",
                crate::Scheme::ACCEPTED_NAMES.join(", ")
            ),
            SchemeError::UnknownParameter { scheme, key } => {
                write!(f, "scheme {scheme} has no parameter {key:?}")
            }
            SchemeError::InvalidValue { key, value } => {
                write!(f, "invalid value {value:?} for {key}")
            }
            SchemeError::UnexpectedParameter { scheme, param } => {
                write!(f, "scheme {scheme} takes no parameter (got {param:?})")
            }
        }
    }
}

impl std::error::Error for SchemeError {}

/// Why a measure could not be computed.
///
/// Returned by the fallible measure entry points
/// ([`try_gap_measures`](crate::measures::try_gap_measures),
/// [`try_packing_factor`](crate::measures::try_packing_factor),
/// [`PerformanceProfile::try_new`](crate::PerformanceProfile::try_new), …);
/// the panicking wrappers abort with the same message via
/// [`Display`](std::fmt::Display).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MeasureError {
    /// A permutation's length did not match the graph it was measured on.
    PermutationMismatch {
        /// Length of the permutation.
        permutation_len: usize,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// A packing-factor geometry declared zero-byte entries.
    ZeroEntryBytes,
    /// A packing-factor cache line is smaller than one entry.
    LineTooSmall {
        /// Bytes per entry.
        entry_bytes: usize,
        /// Bytes per cache line.
        line_bytes: usize,
    },
    /// A performance profile's method list and score matrix disagree.
    MethodCountMismatch {
        /// Number of method names.
        methods: usize,
        /// Number of score rows.
        rows: usize,
    },
    /// A performance profile was built from zero methods.
    NoMethods,
    /// A performance profile was built from zero instances.
    NoInstances,
    /// A performance profile's score matrix is ragged.
    RaggedScores {
        /// 0-based index of the offending row.
        row: usize,
        /// That row's length.
        len: usize,
        /// The expected instance count (row 0's length).
        expected: usize,
    },
    /// A score was negative, NaN, or infinite.
    InvalidScore {
        /// 0-based method index.
        method: usize,
        /// 0-based instance index.
        instance: usize,
        /// The offending value.
        value: f64,
    },
    /// A performance-profile factor τ was below 1 (or NaN).
    TauOutOfRange {
        /// The offending τ.
        tau: f64,
    },
    /// A performance profile was given no τ sample points.
    NoTaus,
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::PermutationMismatch { permutation_len, num_vertices } => write!(
                f,
                "permutation must cover the graph: length {permutation_len} vs {num_vertices} vertices"
            ),
            MeasureError::ZeroEntryBytes => write!(f, "entries must occupy at least a byte"),
            MeasureError::LineTooSmall { entry_bytes, line_bytes } => write!(
                f,
                "a line must hold at least one entry ({line_bytes}-byte lines, {entry_bytes}-byte entries)"
            ),
            MeasureError::MethodCountMismatch { methods, rows } => {
                write!(f, "one score row per method: {methods} methods, {rows} rows")
            }
            MeasureError::NoMethods => write!(f, "need at least one method"),
            MeasureError::NoInstances => write!(f, "need at least one instance"),
            MeasureError::RaggedScores { row, len, expected } => write!(
                f,
                "score matrix must be rectangular: row {row} has {len} scores, expected {expected}"
            ),
            MeasureError::InvalidScore { method, instance, value } => write!(
                f,
                "scores must be finite and non-negative: method {method}, instance {instance} scored {value}"
            ),
            MeasureError::TauOutOfRange { tau } => {
                write!(f, "factors must be at least 1, got {tau}")
            }
            MeasureError::NoTaus => write!(f, "need at least one factor sample point"),
        }
    }
}

impl std::error::Error for MeasureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_value() {
        let e = SchemeError::KFracOutOfRange { k_frac: 2.0 };
        assert_eq!(e.to_string(), "slashburn fraction 2 must be in (0, 1]");
        let e = SchemeError::PartsExceedVertices { parts: 32, vertices: 5 };
        assert_eq!(e.to_string(), "metis parts 32 exceed the graph's 5 vertices");
        let e = SchemeError::UnknownScheme { name: "nope".into() };
        let msg = e.to_string();
        assert!(msg.starts_with("unknown scheme \"nope\"; accepted schemes: natural, "), "{msg}");
        for name in crate::Scheme::ACCEPTED_NAMES {
            assert!(msg.contains(name), "error must list accepted scheme {name:?}");
        }
        let e = SchemeError::UnknownParameter { scheme: "RCM", key: "window".into() };
        assert_eq!(e.to_string(), "scheme RCM has no parameter \"window\"");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&SchemeError::WindowTooSmall { window: 0 });
        takes_error(&MeasureError::NoMethods);
    }

    #[test]
    fn measure_messages_name_the_offending_value() {
        let e = MeasureError::PermutationMismatch { permutation_len: 3, num_vertices: 5 };
        assert_eq!(e.to_string(), "permutation must cover the graph: length 3 vs 5 vertices");
        let e = MeasureError::LineTooSmall { entry_bytes: 64, line_bytes: 4 };
        assert!(e.to_string().contains("at least one entry"));
        let e = MeasureError::RaggedScores { row: 1, len: 1, expected: 2 };
        assert!(e.to_string().contains("rectangular"));
        let e = MeasureError::InvalidScore { method: 0, instance: 2, value: f64::NAN };
        assert!(e.to_string().contains("finite"));
        let e = MeasureError::TauOutOfRange { tau: 0.5 };
        assert!(e.to_string().contains("at least 1"));
    }

    #[test]
    fn measure_errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MeasureError>();
    }
}
