//! Typed errors for scheme validation and spec parsing.
//!
//! [`SchemeError`](crate::SchemeError) replaces the panics and stringly
//! errors that previously guarded scheme parameters: construction-time
//! ranges (`k_frac ∈ (0, 1]`, `window ≥ 1`, `parts ≥ 1`), graph-dependent
//! constraints (`parts ≤ n`), and the `name[:key=val,...]` spec grammar of
//! [`Scheme::parse`](crate::Scheme::parse).

/// Why a [`Scheme`](crate::Scheme) could not be validated, parsed, or run.
///
/// Returned by [`Scheme::parse`](crate::Scheme::parse),
/// [`Scheme::validate`](crate::Scheme::validate), and
/// [`Scheme::try_reorder`](crate::Scheme::try_reorder);
/// [`Scheme::reorder`](crate::Scheme::reorder) panics with the same
/// message via [`Display`](std::fmt::Display).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchemeError {
    /// SlashBurn's hub fraction was outside `(0, 1]` (or NaN).
    KFracOutOfRange {
        /// The rejected fraction.
        k_frac: f64,
    },
    /// Gorder's window was zero.
    WindowTooSmall {
        /// The rejected window size.
        window: usize,
    },
    /// METIS was asked for zero parts.
    PartsTooSmall {
        /// The rejected part count.
        parts: usize,
    },
    /// METIS was asked for more parts than the graph has vertices.
    PartsExceedVertices {
        /// The requested part count.
        parts: usize,
        /// The graph's vertex count.
        vertices: usize,
    },
    /// A spec named a scheme that is not in the registry.
    UnknownScheme {
        /// The unrecognized name.
        name: String,
    },
    /// A spec passed a `key=value` parameter the scheme does not accept.
    UnknownParameter {
        /// The scheme's display name.
        scheme: &'static str,
        /// The unrecognized key.
        key: String,
    },
    /// A spec parameter value failed to parse for its key.
    InvalidValue {
        /// The parameter key (or positional parameter name).
        key: String,
        /// The unparseable value text.
        value: String,
    },
    /// A spec passed a parameter to a parameterless scheme.
    UnexpectedParameter {
        /// The scheme's display name.
        scheme: &'static str,
        /// The offending parameter text.
        param: String,
    },
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::KFracOutOfRange { k_frac } => {
                write!(f, "slashburn fraction {k_frac} must be in (0, 1]")
            }
            SchemeError::WindowTooSmall { .. } => write!(f, "gorder window must be at least 1"),
            SchemeError::PartsTooSmall { .. } => write!(f, "metis needs at least 1 part"),
            SchemeError::PartsExceedVertices { parts, vertices } => {
                write!(f, "metis parts {parts} exceed the graph's {vertices} vertices")
            }
            SchemeError::UnknownScheme { name } => write!(f, "unknown scheme {name:?}"),
            SchemeError::UnknownParameter { scheme, key } => {
                write!(f, "scheme {scheme} has no parameter {key:?}")
            }
            SchemeError::InvalidValue { key, value } => {
                write!(f, "invalid value {value:?} for {key}")
            }
            SchemeError::UnexpectedParameter { scheme, param } => {
                write!(f, "scheme {scheme} takes no parameter (got {param:?})")
            }
        }
    }
}

impl std::error::Error for SchemeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_value() {
        let e = SchemeError::KFracOutOfRange { k_frac: 2.0 };
        assert_eq!(e.to_string(), "slashburn fraction 2 must be in (0, 1]");
        let e = SchemeError::PartsExceedVertices { parts: 32, vertices: 5 };
        assert_eq!(e.to_string(), "metis parts 32 exceed the graph's 5 vertices");
        let e = SchemeError::UnknownScheme { name: "nope".into() };
        assert_eq!(e.to_string(), "unknown scheme \"nope\"");
        let e = SchemeError::UnknownParameter { scheme: "RCM", key: "window".into() };
        assert_eq!(e.to_string(), "scheme RCM has no parameter \"window\"");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&SchemeError::WindowTooSmall { window: 0 });
    }
}
