//! # reorderlab-core
//!
//! Vertex reordering schemes and linear-arrangement gap measures — the
//! primary contribution of *"Vertex Reordering for Real-World Graphs and
//! Applications: An Empirical Evaluation"* (IISWC 2020), reimplemented as a
//! library.
//!
//! ## What's here
//!
//! - **Gap measures** (§II-A): per-edge gap ξ, average gap profile ξ̂,
//!   graph bandwidth β, average graph bandwidth β̂, plus distribution
//!   summaries (violin plots, Fig. 8) and performance profiles (Figs. 1,
//!   4–7) in [`measures`].
//! - **Thirteen ordering schemes** (§III) in [`schemes`], uniformly
//!   dispatchable through [`Scheme`]: Natural, Random, Degree Sort, Hub
//!   Sort, Hub Clustering, SlashBurn, Gorder, RCM, Nested Dissection,
//!   METIS-induced, Grappolo, Grappolo-RCM, and Rabbit Order.
//!
//! ## Quick start
//!
//! ```
//! use reorderlab_core::{measures::gap_measures, Scheme};
//! use reorderlab_datasets::grid2d;
//!
//! let g = grid2d(16, 16);
//! let natural = gap_measures(&g, &Scheme::Natural.reorder(&g));
//! let rcm = gap_measures(&g, &Scheme::Rcm.reorder(&g));
//! assert!(rcm.bandwidth <= natural.bandwidth);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod measures;
mod scheme;
pub mod schemes;

pub use error::{MeasureError, SchemeError};
pub use measures::{CompressionMeasures, GapDistribution, GapMeasures, PerformanceProfile};
pub use scheme::Scheme;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use reorderlab_graph::{GraphBuilder, Permutation};

    fn arb_graph() -> impl Strategy<Value = reorderlab_graph::Csr> {
        (3usize..30).prop_flat_map(|n| {
            proptest::collection::vec((0..n as u32, 0..n as u32), 1..80)
                .prop_map(move |edges| GraphBuilder::undirected(n).edges(edges).build().unwrap())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn all_schemes_yield_valid_permutations((g, seed) in (arb_graph(), any::<u64>())) {
            for scheme in Scheme::evaluation_suite(seed) {
                match scheme.try_reorder(&g) {
                    Ok(pi) => {
                        prop_assert_eq!(pi.len(), g.num_vertices());
                        prop_assert!(
                            Permutation::from_ranks(pi.ranks().to_vec()).is_ok(),
                            "{} invalid", scheme
                        );
                    }
                    // The arbitrary graphs here have 3..30 vertices, so
                    // METIS's 32 parts are rightly rejected — any other
                    // error would be a bug.
                    Err(e) => prop_assert!(
                        matches!(e, SchemeError::PartsExceedVertices { .. }),
                        "{} unexpectedly failed: {}", scheme, e
                    ),
                }
            }
        }

        #[test]
        fn gap_measures_invariant_under_relabel((g, seed) in (arb_graph(), any::<u64>())) {
            // Measuring (G, Π) must equal measuring (Π(G), identity): the
            // measure depends only on the arrangement, not the labeling.
            let pi = schemes::random_order(&g, seed);
            let direct = measures::gap_measures(&g, &pi);
            let relabeled = g.permuted(&pi).unwrap();
            let id = Permutation::identity(g.num_vertices());
            let indirect = measures::gap_measures(&relabeled, &id);
            prop_assert!((direct.avg_gap - indirect.avg_gap).abs() < 1e-9);
            prop_assert_eq!(direct.bandwidth, indirect.bandwidth);
            prop_assert!((direct.avg_bandwidth - indirect.avg_bandwidth).abs() < 1e-9);
        }

        #[test]
        fn hybrid_and_extensions_yield_valid_permutations((g, seed) in (arb_graph(), any::<u64>())) {
            use schemes::{hybrid_multiscale_order, minla_anneal, cdfs_order, HybridConfig, MinlaConfig};
            let hybrid = hybrid_multiscale_order(&g, &HybridConfig::new().leaf_size(6));
            prop_assert!(Permutation::from_ranks(hybrid.ranks().to_vec()).is_ok());
            let cdfs = cdfs_order(&g);
            prop_assert!(Permutation::from_ranks(cdfs.ranks().to_vec()).is_ok());
            let start = schemes::random_order(&g, seed);
            let annealed = minla_anneal(&g, &start, &MinlaConfig::budget(g.num_vertices(), 10, seed));
            prop_assert!(Permutation::from_ranks(annealed.ranks().to_vec()).is_ok());
            // Annealing never worsens the average gap of the best-seen state.
            let before = measures::gap_measures(&g, &start).avg_gap;
            let after = measures::gap_measures(&g, &annealed).avg_gap;
            prop_assert!(after <= before + 1e-9);
        }

        #[test]
        fn log_gap_bounded_by_log_bandwidth((g, seed) in (arb_graph(), any::<u64>())) {
            let pi = schemes::random_order(&g, seed);
            let m = measures::gap_measures(&g, &pi);
            // log2(1+gap) per edge is at most log2(1+β).
            prop_assert!(m.avg_log_gap <= (1.0 + m.bandwidth as f64).log2() + 1e-9);
            prop_assert!(m.avg_log_gap >= 0.0);
        }

        #[test]
        fn bandwidth_bounds_hold((g, seed) in (arb_graph(), any::<u64>())) {
            let pi = schemes::random_order(&g, seed);
            let m = measures::gap_measures(&g, &pi);
            let n = g.num_vertices() as f64;
            prop_assert!(m.avg_gap <= m.bandwidth as f64 + 1e-9);
            prop_assert!(m.avg_bandwidth <= m.bandwidth as f64 + 1e-9);
            prop_assert!((m.bandwidth as f64) < n.max(1.0));
        }
    }
}
