//! Community-traversal orderings: Louvain communities laid out
//! cluster-major, with a configurable traversal order inside each cluster.
//!
//! Where Grappolo (see [`super::composite`]) keeps the natural order inside
//! each community, this family re-walks every community's induced subgraph:
//! a BFS (gap-tight frontiers), a DFS (depth-first runs, the
//! LeidenDFS-style layout of GraphBrew), or a per-community degree sort
//! (hub-first within the cluster). Communities themselves appear in
//! Louvain's deterministic first-appearance order, so the whole layout is a
//! pure function of the graph.
//!
//! Communities are independent, so the parallel kernel maps over them and
//! concatenates the per-community orders positionally — bit-identical to
//! the serial loop by construction at any thread count.

use rayon::prelude::*;
use reorderlab_community::{louvain, louvain_recorded, LouvainConfig};
use reorderlab_graph::{Csr, Permutation};
use reorderlab_trace::{NoopRecorder, Recorder};
use std::collections::VecDeque;

/// Traversal order applied inside each community.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommIntra {
    /// BFS from the lowest-id unvisited member, neighbors in adjacency
    /// (ascending-id) order, restricted to the community.
    Bfs,
    /// DFS from the lowest-id unvisited member, visiting lower-id
    /// neighbors first, restricted to the community.
    Dfs,
    /// Members sorted by degree, non-increasing, ties by id.
    Degree,
}

impl CommIntra {
    /// Canonical spec suffix (`comm-bfs`, `comm-dfs`, `comm-degree`).
    pub fn token(self) -> &'static str {
        match self {
            CommIntra::Bfs => "bfs",
            CommIntra::Dfs => "dfs",
            CommIntra::Degree => "degree",
        }
    }
}

/// Community-traversal ordering: Louvain communities in first-appearance
/// order, each traversed per `intra`.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::{comm_order, CommIntra};
/// use reorderlab_datasets::clique_chain;
///
/// let g = clique_chain(4, 6);
/// let pi = comm_order(&g, CommIntra::Bfs);
/// assert_eq!(pi.len(), 24);
/// ```
pub fn comm_order(graph: &Csr, intra: CommIntra) -> Permutation {
    comm_order_recorded(graph, intra, &mut NoopRecorder)
}

/// [`comm_order`] with instrumentation: Louvain's phase spans and counters
/// plus a `comm/communities` counter. The recorder only observes — output
/// is bit-identical to [`comm_order`].
pub fn comm_order_recorded(graph: &Csr, intra: CommIntra, rec: &mut dyn Recorder) -> Permutation {
    let r = louvain_recorded(graph, &LouvainConfig::default(), rec);
    rec.counter("comm/communities", r.num_communities as u64);
    let members = community_members(graph, &r.assignment, r.num_communities);
    // Communities are independent; the order-preserving parallel collect
    // reproduces the serial concatenation exactly.
    let blocks: Vec<Vec<u32>> =
        members.into_par_iter().map(|m| intra_order(graph, m, intra)).collect();
    concat_blocks(graph.num_vertices(), &blocks)
}

/// Reference serial implementation of [`comm_order`]: single-threaded
/// Louvain and a plain loop over communities. Retained as the
/// property-test oracle for the community-parallel kernel.
pub fn comm_order_serial(graph: &Csr, intra: CommIntra) -> Permutation {
    let r = louvain(graph, &LouvainConfig::default().threads(1));
    let members = community_members(graph, &r.assignment, r.num_communities);
    let blocks: Vec<Vec<u32>> = members.into_iter().map(|m| intra_order(graph, m, intra)).collect();
    concat_blocks(graph.num_vertices(), &blocks)
}

/// Scatters vertices into per-community member lists; the natural scan
/// order makes each list id-ascending. Louvain's assignment is dense over
/// `0..num_communities` in first-appearance order.
fn community_members(graph: &Csr, assignment: &[u32], num_communities: usize) -> Vec<Vec<u32>> {
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_communities];
    for v in graph.vertices() {
        if let Some(list) = members.get_mut(assignment[v as usize] as usize) {
            list.push(v);
        }
    }
    members
}

fn concat_blocks(n: usize, blocks: &[Vec<u32>]) -> Permutation {
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for block in blocks {
        order.extend_from_slice(block);
    }
    super::order_permutation(&order)
}

/// Orders one community's members (an id-ascending list) per `intra`.
/// Membership tests use binary search on the sorted member list, which is
/// exactly the "same community" predicate.
fn intra_order(graph: &Csr, members: Vec<u32>, intra: CommIntra) -> Vec<u32> {
    match intra {
        CommIntra::Degree => {
            let mut m = members;
            m.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
            m
        }
        CommIntra::Bfs => bfs_local(graph, &members),
        CommIntra::Dfs => dfs_local(graph, &members),
    }
}

/// BFS over the community's induced subgraph: restart at the lowest-id
/// unvisited member, enqueue in-community neighbors in adjacency order.
fn bfs_local(graph: &Csr, members: &[u32]) -> Vec<u32> {
    let mut visited = vec![false; members.len()];
    let mut out: Vec<u32> = Vec::with_capacity(members.len());
    let mut queue: VecDeque<u32> = VecDeque::new();
    for (i, &root) in members.iter().enumerate() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for &u in graph.neighbors(v) {
                if let Ok(j) = members.binary_search(&u) {
                    if !visited[j] {
                        visited[j] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
    }
    out
}

/// DFS over the community's induced subgraph: restart at the lowest-id
/// unvisited member; pushing in-community neighbors in reverse adjacency
/// order makes lower ids surface first.
fn dfs_local(graph: &Csr, members: &[u32]) -> Vec<u32> {
    let mut visited = vec![false; members.len()];
    let mut out: Vec<u32> = Vec::with_capacity(members.len());
    let mut stack: Vec<u32> = Vec::new();
    for (i, &root) in members.iter().enumerate() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        stack.push(root);
        while let Some(v) = stack.pop() {
            out.push(v);
            for &u in graph.neighbors(v).iter().rev() {
                if let Ok(j) = members.binary_search(&u) {
                    if !visited[j] {
                        visited[j] = true;
                        stack.push(u);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{clique_chain, grid2d, path};
    use reorderlab_graph::GraphBuilder;
    use reorderlab_trace::RunRecorder;

    const ALL_INTRA: [CommIntra; 3] = [CommIntra::Bfs, CommIntra::Dfs, CommIntra::Degree];

    #[test]
    fn communities_stay_contiguous_under_every_intra_order() {
        let g = clique_chain(5, 6);
        for intra in ALL_INTRA {
            let pi = comm_order(&g, intra);
            for c in 0..5u32 {
                let ranks: Vec<u32> = (0..6).map(|i| pi.rank(c * 6 + i)).collect();
                let span = ranks.iter().max().unwrap() - ranks.iter().min().unwrap();
                assert_eq!(span, 5, "{intra:?}: community {c} must stay contiguous");
            }
        }
    }

    #[test]
    fn matches_serial_oracle() {
        for g in [clique_chain(4, 5), grid2d(8, 8), path(20)] {
            for intra in ALL_INTRA {
                assert_eq!(comm_order(&g, intra), comm_order_serial(&g, intra), "{intra:?}");
            }
        }
    }

    #[test]
    fn degree_intra_order_puts_community_hub_first() {
        // A star is one community; its hub must take rank 0.
        let g = reorderlab_datasets::star(8);
        let pi = comm_order(&g, CommIntra::Degree);
        assert_eq!(pi.rank(0), 0);
    }

    #[test]
    fn bfs_and_dfs_visit_whole_community_from_low_ids() {
        let g = clique_chain(3, 4);
        for intra in [CommIntra::Bfs, CommIntra::Dfs] {
            let pi = comm_order(&g, intra);
            assert_eq!(pi.len(), 12);
        }
    }

    #[test]
    fn handles_degenerate_graphs() {
        let g0 = GraphBuilder::undirected(0).build().unwrap();
        let g1 = GraphBuilder::undirected(1).build().unwrap();
        let loops = GraphBuilder::undirected(3).edge(0, 0).edge(1, 2).build().unwrap();
        for intra in ALL_INTRA {
            assert!(comm_order(&g0, intra).is_empty());
            assert!(comm_order(&g1, intra).is_identity());
            assert_eq!(comm_order(&loops, intra).len(), 3);
        }
    }

    #[test]
    fn recorded_variant_is_identical_and_counts_communities() {
        let g = clique_chain(5, 6);
        let mut rec = RunRecorder::new();
        assert_eq!(
            comm_order_recorded(&g, CommIntra::Bfs, &mut rec),
            comm_order(&g, CommIntra::Bfs)
        );
        assert_eq!(rec.counters()["comm/communities"], 5);
        assert!(rec.counters()["louvain/phases"] >= 1);
    }
}
