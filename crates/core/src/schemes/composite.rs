//! Orderings induced by the partitioning and community-detection substrates
//! (paper §III-D and §III-E): METIS-style partition ordering, nested
//! dissection, the Grappolo community ordering, and the Grappolo-RCM
//! composite introduced by the paper.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use crate::schemes::rcm::{rcm_order, rcm_order_recorded};
use reorderlab_community::{louvain, louvain_recorded, LouvainConfig};
use reorderlab_graph::{contract, contract_recorded, Csr, Permutation};
use reorderlab_partition::{nested_dissection_order, partition_kway, PartitionConfig};
use reorderlab_trace::Recorder;

/// METIS-induced ordering (§III-D): partition into `parts` parts minimizing
/// edge cut with near-equal sizes, then label vertices contiguously by part
/// (vertices within a part in natural order).
///
/// The relative order of the parts themselves is arbitrary, mirroring
/// METIS's k-way partitioner whose part numbering carries no adjacency
/// meaning — our recursive bisection would otherwise leak a hierarchical
/// part order that real METIS does not provide. A seeded shuffle of the
/// part labels models this.
///
/// The paper sweeps `parts` from 8 to 256 and finds 32 best (Figure 7).
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::metis_order;
/// use reorderlab_datasets::grid2d;
///
/// let g = grid2d(12, 12);
/// let pi = metis_order(&g, 32, 0);
/// assert_eq!(pi.len(), 144);
/// ```
pub fn metis_order(graph: &Csr, parts: usize, seed: u64) -> Permutation {
    let p = partition_kway(graph, &PartitionConfig::new(parts).seed(seed));
    // Deterministically shuffle part labels (arbitrary part numbering).
    let mut label: Vec<u32> = (0..parts as u32).collect();
    let mut x = seed ^ 0x7a3d_55aa;
    for i in (1..label.len()).rev() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        label.swap(i, (x >> 33) as usize % (i + 1));
    }
    let shuffled: Vec<u32> = p.assignment.iter().map(|&a| label[a as usize]).collect();
    order_by_group(&shuffled)
}

/// Nested dissection ordering (§III-E): recursive vertex separators, sides
/// first, separators last.
pub fn nd_order(graph: &Csr, seed: u64) -> Permutation {
    let order = nested_dissection_order(graph, 32, &PartitionConfig::new(2).seed(seed));
    super::order_permutation(&order)
}

/// Grappolo ordering (§III-D): detect communities with parallel Louvain and
/// label each community's vertices contiguously; the relative order of the
/// communities themselves is arbitrary (first-appearance order here).
pub fn grappolo_order(graph: &Csr) -> Permutation {
    grappolo_order_with(graph, &LouvainConfig::default())
}

/// [`grappolo_order`] with an explicit Louvain configuration (thread count,
/// thresholds).
pub fn grappolo_order_with(graph: &Csr, cfg: &LouvainConfig) -> Permutation {
    let r = louvain(graph, cfg);
    order_by_group(&r.assignment)
}

/// [`grappolo_order_with`] with instrumentation: Louvain's phase timings,
/// sweep counters, and modularity trajectory fold into `rec`, plus a
/// `grappolo/communities` counter. The recorder only observes — output is
/// bit-identical to [`grappolo_order_with`].
pub fn grappolo_order_recorded(
    graph: &Csr,
    cfg: &LouvainConfig,
    rec: &mut dyn Recorder,
) -> Permutation {
    let r = louvain_recorded(graph, cfg, rec);
    rec.counter("grappolo/communities", r.num_communities as u64);
    order_by_group(&r.assignment)
}

/// Grappolo-RCM (§III-D, introduced by the paper): communities from Louvain
/// are themselves ordered by running RCM on the community (coarsened) graph,
/// then vertices are labeled contiguously within each community.
///
/// "The intuition is to take advantage of the multilevel hierarchical
/// information exposed by Grappolo to achieve a relative ordering among
/// communities."
pub fn grappolo_rcm_order(graph: &Csr) -> Permutation {
    grappolo_rcm_order_with(graph, &LouvainConfig::default())
}

/// [`grappolo_rcm_order`] with an explicit Louvain configuration.
pub fn grappolo_rcm_order_with(graph: &Csr, cfg: &LouvainConfig) -> Permutation {
    let r = louvain(graph, cfg);
    if r.num_communities == 0 {
        return Permutation::identity(graph.num_vertices());
    }
    // SAFETY: louvain returns a dense assignment over exactly
    // `num_communities` labels, which is what `contract` validates.
    let coarse = contract(graph, &r.assignment, r.num_communities)
        .expect("louvain assignment is valid")
        .coarse;
    let comm_rank = rcm_order(&coarse);
    // Order vertices by (RCM rank of their community, vertex id).
    let mut order: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    order.sort_by_key(|&v| (comm_rank.rank(r.assignment[v as usize]), v));
    super::order_permutation(&order)
}

/// [`grappolo_rcm_order_with`] with instrumentation: Louvain stats, the
/// coarsening's span and size counters, and the community-graph RCM pass
/// all fold into `rec`. The recorder only observes — output is
/// bit-identical to [`grappolo_rcm_order_with`].
pub fn grappolo_rcm_order_recorded(
    graph: &Csr,
    cfg: &LouvainConfig,
    rec: &mut dyn Recorder,
) -> Permutation {
    let r = louvain_recorded(graph, cfg, rec);
    rec.counter("grappolo/communities", r.num_communities as u64);
    if r.num_communities == 0 {
        return Permutation::identity(graph.num_vertices());
    }
    // SAFETY: louvain returns a dense assignment over exactly
    // `num_communities` labels, which is what `contract` validates.
    let coarse = contract_recorded(graph, &r.assignment, r.num_communities, rec)
        .expect("louvain assignment is valid")
        .coarse;
    let comm_rank = rcm_order_recorded(&coarse, rec);
    let mut order: Vec<u32> = (0..graph.num_vertices() as u32).collect();
    order.sort_by_key(|&v| (comm_rank.rank(r.assignment[v as usize]), v));
    super::order_permutation(&order)
}

/// Labels vertices contiguously by group id: rank key is
/// `(group[v], v)`. Shared by the METIS and Grappolo orderings.
fn order_by_group(group: &[u32]) -> Permutation {
    let mut order: Vec<u32> = (0..group.len() as u32).collect();
    order.sort_by_key(|&v| (group[v as usize], v));
    super::order_permutation(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::gap_measures;
    use crate::schemes::random_order;
    use reorderlab_datasets::{clique_chain, grid2d};
    use reorderlab_graph::GraphBuilder;

    fn shuffled_grid(seed: u64) -> Csr {
        let g = grid2d(12, 12);
        let pi = random_order(&g, seed);
        g.permuted(&pi).unwrap()
    }

    #[test]
    fn metis_order_groups_parts_contiguously() {
        let g = grid2d(10, 10);
        let parts = 4;
        let p = partition_kway(&g, &PartitionConfig::new(parts).seed(0));
        let pi = metis_order(&g, parts, 0);
        // Vertices of the same part must form a contiguous rank range.
        let order = pi.to_order();
        let mut seen_parts: Vec<u32> = Vec::new();
        for &v in &order {
            let part = p.assignment[v as usize];
            if seen_parts.last() != Some(&part) {
                assert!(!seen_parts.contains(&part), "part {part} is fragmented");
                seen_parts.push(part);
            }
        }
    }

    #[test]
    fn metis_order_improves_gap_on_shuffled_grid() {
        let g = shuffled_grid(1);
        let natural = gap_measures(&g, &Permutation::identity(144)).avg_gap;
        let metis = gap_measures(&g, &metis_order(&g, 16, 2)).avg_gap;
        assert!(metis < natural, "metis {metis} vs natural {natural}");
    }

    #[test]
    fn nd_order_is_valid() {
        let g = grid2d(9, 9);
        let pi = nd_order(&g, 1);
        assert!(Permutation::from_ranks(pi.ranks().to_vec()).is_ok());
    }

    #[test]
    fn grappolo_keeps_planted_communities_contiguous() {
        let g = clique_chain(5, 6);
        let pi = grappolo_order(&g);
        for c in 0..5u32 {
            let ranks: Vec<u32> = (0..6).map(|i| pi.rank(c * 6 + i)).collect();
            let span = ranks.iter().max().unwrap() - ranks.iter().min().unwrap();
            assert_eq!(span, 5, "community {c} must be contiguous");
        }
    }

    #[test]
    fn grappolo_rcm_orders_communities_along_chain() {
        // On a chain of cliques the community graph is a path; RCM on it
        // orders communities consecutively, so neighboring cliques must get
        // adjacent rank blocks.
        let g = clique_chain(6, 5);
        let pi = grappolo_rcm_order(&g);
        // Block index of each clique = mean rank / 5.
        let mut blocks: Vec<i64> = Vec::new();
        for c in 0..6u32 {
            let mean: u32 = (0..5).map(|i| pi.rank(c * 5 + i)).sum::<u32>() / 5;
            blocks.push(mean as i64 / 5);
        }
        // Adjacent cliques must be in adjacent blocks.
        for w in blocks.windows(2) {
            assert!((w[0] - w[1]).abs() == 1, "chain order broken: {blocks:?}");
        }
    }

    #[test]
    fn grappolo_rcm_beats_grappolo_on_chain_avg_gap() {
        // The paper's motivation: RCM over communities fixes the arbitrary
        // community order, tightening inter-community gaps.
        let g = clique_chain(12, 5);
        // Shuffle so Louvain's first-appearance community order is arbitrary.
        let g = g.permuted(&random_order(&g, 23)).unwrap();
        let plain = gap_measures(&g, &grappolo_order(&g)).avg_gap;
        let with_rcm = gap_measures(&g, &grappolo_rcm_order(&g)).avg_gap;
        assert!(
            with_rcm <= plain * 1.05,
            "grappolo-rcm {with_rcm} should not lose to grappolo {plain}"
        );
    }

    #[test]
    fn composite_schemes_on_empty_graph() {
        let g = GraphBuilder::undirected(0).build().unwrap();
        assert!(metis_order(&g, 8, 0).is_empty());
        assert!(nd_order(&g, 0).is_empty());
        assert!(grappolo_order(&g).is_empty());
        assert!(grappolo_rcm_order(&g).is_empty());
    }

    #[test]
    fn recorded_grappolo_variants_are_identical_and_report_louvain() {
        use reorderlab_trace::RunRecorder;
        let g = clique_chain(5, 6);
        let cfg = LouvainConfig::default().threads(1);

        let mut rec = RunRecorder::new();
        assert_eq!(grappolo_order_recorded(&g, &cfg, &mut rec), grappolo_order_with(&g, &cfg));
        assert_eq!(rec.counters()["grappolo/communities"], 5);
        assert!(rec.counters()["louvain/phases"] >= 1);

        let mut rec = RunRecorder::new();
        assert_eq!(
            grappolo_rcm_order_recorded(&g, &cfg, &mut rec),
            grappolo_rcm_order_with(&g, &cfg)
        );
        assert_eq!(rec.counters()["contract/coarse_vertices"], 5);
        assert_eq!(rec.counters()["rcm/components"], 1, "community graph is one path");
    }

    #[test]
    fn composite_schemes_deterministic() {
        let g = grid2d(8, 8);
        assert_eq!(metis_order(&g, 8, 5), metis_order(&g, 8, 5));
        assert_eq!(nd_order(&g, 5), nd_order(&g, 5));
        let cfg = LouvainConfig::default().threads(1);
        assert_eq!(grappolo_order_with(&g, &cfg), grappolo_order_with(&g, &cfg));
        assert_eq!(grappolo_rcm_order_with(&g, &cfg), grappolo_rcm_order_with(&g, &cfg));
    }
}
