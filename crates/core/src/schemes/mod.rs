//! Implementations of the individual reordering schemes (paper §III).
//!
//! Each scheme is a plain function from a graph to a validated
//! [`Permutation`](reorderlab_graph::Permutation); the
//! [`Scheme`](crate::Scheme) enum provides uniform dispatch over all of
//! them.

mod basic;
mod composite;
mod degree;
mod gorder;
mod hybrid;
mod minla;
mod rabbit;
mod rcm;
mod slashburn;

pub use basic::{natural_order, random_order};
pub use composite::{
    grappolo_order, grappolo_order_recorded, grappolo_order_with, grappolo_rcm_order,
    grappolo_rcm_order_recorded, grappolo_rcm_order_with, metis_order, nd_order,
};
pub use degree::{degree_sort, hub_cluster, hub_sort, hub_threshold, DegreeDirection};
pub use gorder::{gorder, gorder_serial};
pub use hybrid::{hybrid_multiscale_order, HybridConfig};
pub use minla::{minla_anneal, MinlaConfig};
pub use rabbit::{rabbit_order, rabbit_order_serial};
pub use rcm::{
    cdfs_order, cdfs_order_recorded, cdfs_order_serial, cm_order, rcm_order, rcm_order_recorded,
    rcm_order_serial,
};
pub use slashburn::{slashburn_order, slashburn_order_recorded, slashburn_order_serial};
