//! Implementations of the individual reordering schemes (paper §III).
//!
//! Each scheme is a plain function from a graph to a validated
//! [`Permutation`](reorderlab_graph::Permutation); the
//! [`Scheme`](crate::Scheme) enum provides uniform dispatch over all of
//! them.

mod adaptive;
mod basic;
mod comm;
mod composite;
mod degree;
mod gorder;
mod hybrid;
mod lightweight;
mod minla;
mod rabbit;
mod rcm;
mod slashburn;

pub use adaptive::{
    adaptive_decide, adaptive_order, adaptive_order_recorded, adaptive_order_serial,
    AdaptiveChoice, AdaptiveDecision,
};
pub use basic::{natural_order, random_order};
pub use comm::{comm_order, comm_order_recorded, comm_order_serial, CommIntra};
pub use composite::{
    grappolo_order, grappolo_order_recorded, grappolo_order_with, grappolo_rcm_order,
    grappolo_rcm_order_recorded, grappolo_rcm_order_with, metis_order, nd_order,
};
pub use degree::{degree_sort, hub_cluster, hub_sort, hub_threshold, DegreeDirection};
pub use gorder::{gorder, gorder_serial};
pub use hybrid::{hybrid_multiscale_order, HybridConfig};
pub use lightweight::{
    dbg_order, dbg_order_recorded, dbg_order_serial, hub_cluster_dbg_order,
    hub_cluster_dbg_order_recorded, hub_cluster_dbg_order_serial, hub_sort_dbg_order,
    hub_sort_dbg_order_recorded, hub_sort_dbg_order_serial,
};
pub use minla::{minla_anneal, MinlaConfig};
pub use rabbit::{rabbit_order, rabbit_order_serial};
pub use rcm::{
    cdfs_order, cdfs_order_recorded, cdfs_order_serial, cm_order, rcm_order, rcm_order_recorded,
    rcm_order_serial,
};
pub use slashburn::{slashburn_order, slashburn_order_recorded, slashburn_order_serial};

use reorderlab_graph::Permutation;

/// Finalizes a scheme's emission order (vertex ids in visit sequence) into a
/// validated [`Permutation`]. Every scheme routes through here so the
/// "emits each vertex exactly once" invariant has a single audited
/// enforcement point instead of a panic call per scheme.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..n` — a bug in the calling
/// scheme, never an input condition.
pub(crate) fn order_permutation(order: &[u32]) -> Permutation {
    // SAFETY: schemes emit each vertex exactly once by construction (their
    // contract tests pin this); the workspace's single P1-allowlisted
    // order-finalization site.
    Permutation::from_order(order).expect("scheme emitted a non-permutation order (scheme bug)")
}

/// Finalizes a scheme's rank table (`ranks[v]` = new position of `v`) into a
/// validated [`Permutation`]; the rank-shaped twin of [`order_permutation`].
///
/// # Panics
///
/// Panics if `ranks` is not a bijection onto `0..n` — a scheme bug.
pub(crate) fn ranks_permutation(ranks: Vec<u32>) -> Permutation {
    // SAFETY: callers assign each rank exactly once by construction; the
    // single P1-allowlisted rank-finalization site.
    Permutation::from_ranks(ranks).expect("scheme emitted a non-bijective rank table (scheme bug)")
}
