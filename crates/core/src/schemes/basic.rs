//! Baseline orderings: the natural (input) order and a seeded random
//! shuffle. The paper includes both in its 11-scheme evaluation as the
//! "do nothing" and "destroy everything" reference points.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_graph::{Csr, Permutation};

/// The natural ordering: the identity permutation (paper §II).
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::natural_order;
/// use reorderlab_datasets::path;
///
/// let pi = natural_order(&path(4));
/// assert!(pi.is_identity());
/// ```
pub fn natural_order(graph: &Csr) -> Permutation {
    Permutation::identity(graph.num_vertices())
}

/// A uniformly random ordering (Fisher–Yates with a seeded generator).
pub fn random_order(graph: &Csr, seed: u64) -> Permutation {
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ranks: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ranks.swap(i, j);
    }
    Permutation::from_ranks_unchecked(ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{erdos_renyi_gnm, path};

    #[test]
    fn natural_is_identity() {
        let g = path(10);
        assert!(natural_order(&g).is_identity());
    }

    #[test]
    fn random_is_valid_permutation() {
        let g = erdos_renyi_gnm(50, 100, 1);
        let pi = random_order(&g, 42);
        assert_eq!(pi.len(), 50);
        // from_ranks validates; round-trip through it must succeed.
        assert!(Permutation::from_ranks(pi.ranks().to_vec()).is_ok());
    }

    #[test]
    fn random_deterministic_per_seed() {
        let g = path(30);
        assert_eq!(random_order(&g, 7), random_order(&g, 7));
        assert_ne!(random_order(&g, 7), random_order(&g, 8));
    }

    #[test]
    fn random_actually_shuffles() {
        let g = path(100);
        assert!(!random_order(&g, 3).is_identity());
    }

    #[test]
    fn empty_graph() {
        let g = reorderlab_graph::GraphBuilder::undirected(0).build().unwrap();
        assert!(natural_order(&g).is_empty());
        assert!(random_order(&g, 0).is_empty());
    }
}
