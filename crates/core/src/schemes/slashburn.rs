//! SlashBurn (paper §III-B, Kang & Faloutsos \[21\]).
//!
//! A heavyweight hub-based scheme: repeatedly *slash* the k highest-degree
//! hubs (assigning them the lowest available ranks), *burn* the graph into
//! components, push every non-giant component's vertices ("spokes") to the
//! highest available ranks, and recurse on the giant connected component.
//! The result concentrates the adjacency matrix near block-diagonal-plus-
//! hub form.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use rayon::prelude::*;
use reorderlab_graph::{Components, Csr, Permutation};
use reorderlab_trace::{NoopRecorder, Recorder};

/// Packed descending-degree keys for hub selection, computed in parallel:
/// ascending order of `((u32::MAX - degree) << 32) | original_id` equals the
/// serial `(Reverse(degree), original_id)` tuple order. The second element
/// is the local vertex id for marking hubs.
fn hub_keys(sub: &Csr, live: &[u32]) -> Vec<(u64, u32)> {
    let score = |v: u32| {
        let inv_deg = u32::MAX - sub.degree(v) as u32;
        (((u64::from(inv_deg)) << 32) | u64::from(live[v as usize]), v)
    };
    if rayon::current_num_threads() <= 1 {
        (0..live.len() as u32).map(score).collect()
    } else {
        (0..live.len() as u32).into_par_iter().map(score).collect()
    }
}

/// Connected components of `sub` restricted to non-hub vertices, labeled in
/// order of smallest member id. This is exactly the labeling
/// [`Components::find`] produces on the extracted remainder graph (its local
/// ids are monotone in `sub` ids), without materializing that subgraph.
/// Returns the per-vertex component id (`u32::MAX` for hubs) and sizes.
fn masked_components(sub: &Csr, is_hub: &[bool]) -> (Vec<u32>, Vec<usize>) {
    let n = sub.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    for s in 0..n as u32 {
        if is_hub[s as usize] || comp[s as usize] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        comp[s as usize] = c;
        stack.clear();
        stack.push(s);
        let mut size = 0usize;
        while let Some(v) = stack.pop() {
            size += 1;
            for &u in sub.neighbors(v) {
                if !is_hub[u as usize] && comp[u as usize] == u32::MAX {
                    comp[u as usize] = c;
                    stack.push(u);
                }
            }
        }
        sizes.push(size);
    }
    (comp, sizes)
}

/// Computes a SlashBurn ordering.
///
/// `k_frac` is the fraction of (remaining) vertices slashed per round; the
/// original paper uses 0.5% (`0.005`). At least one hub is slashed per
/// round, so the algorithm always terminates.
///
/// Hub extraction scores vertices in parallel (packed descending-degree
/// keys) and selects the exact top `k` with a linear-time partition instead
/// of a full sort per round; burning runs [`masked_components`] directly on
/// the working graph so only the giant component is ever materialized (via
/// the parallel [`Csr::induced_subgraph`] kernel) instead of remainder +
/// giant per round. Bit-identical to [`slashburn_order_serial`] at any
/// thread count.
///
/// # Panics
///
/// Panics if `k_frac` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::slashburn_order;
/// use reorderlab_datasets::star;
///
/// let g = star(100);
/// let pi = slashburn_order(&g, 0.005);
/// assert_eq!(pi.rank(0), 0); // the hub is slashed first
/// ```
pub fn slashburn_order(graph: &Csr, k_frac: f64) -> Permutation {
    slashburn_order_recorded(graph, k_frac, &mut NoopRecorder)
}

/// [`slashburn_order`] with instrumentation: per-round counters
/// (`slashburn/rounds`, `slashburn/hubs`, `slashburn/spokes`) folded into
/// `rec`. The recorder only observes — output is bit-identical to
/// [`slashburn_order`].
///
/// # Panics
///
/// Panics if `k_frac` is not in `(0, 1]`.
pub fn slashburn_order_recorded(graph: &Csr, k_frac: f64, rec: &mut dyn Recorder) -> Permutation {
    assert!(k_frac > 0.0 && k_frac <= 1.0, "k_frac must be in (0, 1]");
    let n = graph.num_vertices();
    let mut ranks = vec![u32::MAX; n];
    let mut front = 0u32;
    let mut back = n as u32; // exclusive
                             // `live` holds original ids of the current working component.
    let mut live: Vec<u32> = (0..n as u32).collect();
    let mut sub = graph.clone();

    loop {
        let remaining = live.len();
        if remaining == 0 {
            break;
        }
        let k = ((remaining as f64 * k_frac).ceil() as usize).max(1);
        rec.counter("slashburn/rounds", 1);
        let mut keyed = hub_keys(&sub, &live);
        if remaining <= k {
            // Terminal round: everything left goes to the front by degree.
            rec.counter("slashburn/hubs", remaining as u64);
            keyed.sort_unstable();
            for &(_, v) in &keyed {
                ranks[live[v as usize] as usize] = front;
                front += 1;
            }
            break;
        }

        // Slash: the k highest-degree vertices get the lowest free ranks.
        // Keys are unique (they embed the original id), so an unstable
        // select + sort of the top-k prefix reproduces the full-sort prefix.
        keyed.select_nth_unstable(k - 1);
        keyed[..k].sort_unstable();
        let mut is_hub = vec![false; remaining];
        for &(_, h) in &keyed[..k] {
            ranks[live[h as usize] as usize] = front;
            front += 1;
            is_hub[h as usize] = true;
        }
        rec.counter("slashburn/hubs", k as u64);

        // Burn: components of the remainder, found in place on `sub` with
        // the hubs masked out.
        let (comp, sizes) = masked_components(&sub, &is_hub);
        let giant = match sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
        {
            Some(g) => g,
            None => break, // nothing left
        };
        let mut members: Vec<Vec<u32>> = sizes.iter().map(|&s| Vec::with_capacity(s)).collect();
        for (v, &c) in comp.iter().enumerate() {
            if c != u32::MAX {
                members[c as usize].push(v as u32);
            }
        }

        // Spokes: vertices of non-giant components take the highest free
        // ranks. Components are ordered by increasing size (ties by id) so
        // the smallest spokes sit at the very end, mirroring SlashBurn's
        // spoke layout.
        let mut spoke_comps: Vec<u32> = (0..sizes.len() as u32).filter(|&c| c != giant).collect();
        spoke_comps.sort_by_key(|&c| (sizes[c as usize], c));
        let spoke_total: usize = spoke_comps.iter().map(|&c| sizes[c as usize]).sum();
        rec.counter("slashburn/spokes", spoke_total as u64);
        for &c in &spoke_comps {
            for &v in members[c as usize].iter().rev() {
                back -= 1;
                ranks[live[v as usize] as usize] = back;
            }
        }

        // Recurse on the giant component, extracted straight from `sub`.
        let (next_sub, next_orig_local) = sub.induced_subgraph(&members[giant as usize]);
        live = next_orig_local.iter().map(|&v| live[v as usize]).collect();
        sub = next_sub;
    }
    debug_assert!(front <= back, "front {front} crossed back {back}");
    super::ranks_permutation(ranks)
}

/// Reference serial implementation of [`slashburn_order`]: full
/// `(Reverse(degree), id)` sort per round, serial subgraph extraction via
/// [`Csr::induced_subgraph_serial`]. Retained as the property-test oracle
/// and bench baseline for the parallel hub-extraction kernel.
///
/// # Panics
///
/// Panics if `k_frac` is not in `(0, 1]`.
pub fn slashburn_order_serial(graph: &Csr, k_frac: f64) -> Permutation {
    assert!(k_frac > 0.0 && k_frac <= 1.0, "k_frac must be in (0, 1]");
    let n = graph.num_vertices();
    let mut ranks = vec![u32::MAX; n];
    let mut front = 0u32;
    let mut back = n as u32; // exclusive
    let mut live: Vec<u32> = (0..n as u32).collect();
    let mut sub = graph.clone();

    loop {
        let remaining = live.len();
        if remaining == 0 {
            break;
        }
        let k = ((remaining as f64 * k_frac).ceil() as usize).max(1);
        if remaining <= k {
            let mut rest: Vec<u32> = (0..remaining as u32).collect();
            rest.sort_by_key(|&v| (std::cmp::Reverse(sub.degree(v)), live[v as usize]));
            for v in rest {
                ranks[live[v as usize] as usize] = front;
                front += 1;
            }
            break;
        }

        let mut by_degree: Vec<u32> = (0..remaining as u32).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(sub.degree(v)), live[v as usize]));
        let hubs = &by_degree[..k];
        let mut is_hub = vec![false; remaining];
        for &h in hubs {
            ranks[live[h as usize] as usize] = front;
            front += 1;
            is_hub[h as usize] = true;
        }

        let keep: Vec<u32> = (0..remaining as u32).filter(|&v| !is_hub[v as usize]).collect();
        let (rest, rest_orig_local) = sub.induced_subgraph_serial(&keep);
        let comps = Components::find(&rest);
        let giant = match comps.largest() {
            Some(g) => g,
            None => break,
        };

        let mut spoke_comps: Vec<u32> = (0..comps.count() as u32).filter(|&c| c != giant).collect();
        spoke_comps.sort_by_key(|&c| (comps.size(c), c));
        let members = comps.members();
        for &c in &spoke_comps {
            for &v in members[c as usize].iter().rev() {
                back -= 1;
                let orig = live[rest_orig_local[v as usize] as usize];
                ranks[orig as usize] = back;
            }
        }

        let giant_local: Vec<u32> = members[giant as usize].clone();
        let (next_sub, next_orig_local) = rest.induced_subgraph_serial(&giant_local);
        live =
            next_orig_local.iter().map(|&v| live[rest_orig_local[v as usize] as usize]).collect();
        sub = next_sub;
    }
    debug_assert!(front <= back, "front {front} crossed back {back}");
    super::ranks_permutation(ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{barabasi_albert, path, star};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn star_hub_slashed_first() {
        let g = star(50);
        let pi = slashburn_order(&g, 0.02); // k = 1
        assert_eq!(pi.rank(0), 0);
    }

    #[test]
    fn produces_valid_permutation_on_powerlaw() {
        let g = barabasi_albert(400, 2, 3);
        let pi = slashburn_order(&g, 0.005);
        assert_eq!(pi.len(), 400);
        assert!(Permutation::from_ranks(pi.ranks().to_vec()).is_ok());
    }

    #[test]
    fn hubs_occupy_low_ranks() {
        let g = barabasi_albert(500, 2, 7);
        let pi = slashburn_order(&g, 0.01);
        // The global max-degree vertex must be slashed in round one.
        let hub = (0..500u32).max_by_key(|&v| g.degree(v)).unwrap();
        assert!(pi.rank(hub) < 5, "hub rank {} should be tiny", pi.rank(hub));
    }

    #[test]
    fn spokes_pushed_to_back() {
        // Star + one disconnected pendant pair: after slashing the hub the
        // leaves and the pair are all spokes.
        let g = GraphBuilder::undirected(7)
            .edges([(0, 1), (0, 2), (0, 3), (0, 4), (5, 6)])
            .build()
            .unwrap();
        let pi = slashburn_order(&g, 0.15); // k = ceil(7*0.15)=2
                                            // Vertex 0 (degree 4) slashed first; ranks of 5,6 (smallest spoke
                                            // component is the pair or singletons after slash) are high.
        assert!(pi.rank(0) <= 1);
        assert!(pi.rank(5) >= 2 && pi.rank(6) >= 2);
    }

    #[test]
    fn path_terminates_and_is_valid() {
        // Paths are SlashBurn's worst case (giant shrinks slowly).
        let g = path(200);
        let pi = slashburn_order(&g, 0.005);
        assert_eq!(pi.len(), 200);
    }

    #[test]
    fn deterministic() {
        let g = barabasi_albert(200, 2, 1);
        assert_eq!(slashburn_order(&g, 0.005), slashburn_order(&g, 0.005));
    }

    #[test]
    fn tiny_graphs() {
        let g1 = GraphBuilder::undirected(1).build().unwrap();
        assert!(slashburn_order(&g1, 0.005).is_identity());
        let g0 = GraphBuilder::undirected(0).build().unwrap();
        assert!(slashburn_order(&g0, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "k_frac")]
    fn rejects_bad_fraction() {
        let g = path(4);
        let _ = slashburn_order(&g, 0.0);
    }

    #[test]
    fn recorded_variant_is_identical_and_accounts_every_vertex() {
        use reorderlab_trace::RunRecorder;
        let g = barabasi_albert(150, 2, 3);
        let mut rec = RunRecorder::new();
        let pi = slashburn_order_recorded(&g, 0.02, &mut rec);
        assert_eq!(pi, slashburn_order(&g, 0.02));
        let c = rec.counters();
        assert!(c["slashburn/rounds"] >= 1);
        // Every vertex ends up a hub or a spoke (the recursion bottoms out
        // in a terminal all-hubs round).
        let spokes = c.get("slashburn/spokes").copied().unwrap_or(0);
        assert_eq!(c["slashburn/hubs"] + spokes, 150);
    }
}
