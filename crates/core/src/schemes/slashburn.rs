//! SlashBurn (paper §III-B, Kang & Faloutsos \[21\]).
//!
//! A heavyweight hub-based scheme: repeatedly *slash* the k highest-degree
//! hubs (assigning them the lowest available ranks), *burn* the graph into
//! components, push every non-giant component's vertices ("spokes") to the
//! highest available ranks, and recurse on the giant connected component.
//! The result concentrates the adjacency matrix near block-diagonal-plus-
//! hub form.

use reorderlab_graph::{Components, Csr, Permutation};

/// Computes a SlashBurn ordering.
///
/// `k_frac` is the fraction of (remaining) vertices slashed per round; the
/// original paper uses 0.5% (`0.005`). At least one hub is slashed per
/// round, so the algorithm always terminates.
///
/// # Panics
///
/// Panics if `k_frac` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::slashburn_order;
/// use reorderlab_datasets::star;
///
/// let g = star(100);
/// let pi = slashburn_order(&g, 0.005);
/// assert_eq!(pi.rank(0), 0); // the hub is slashed first
/// ```
pub fn slashburn_order(graph: &Csr, k_frac: f64) -> Permutation {
    assert!(k_frac > 0.0 && k_frac <= 1.0, "k_frac must be in (0, 1]");
    let n = graph.num_vertices();
    let mut ranks = vec![u32::MAX; n];
    let mut front = 0u32;
    let mut back = n as u32; // exclusive
                             // `live` holds original ids of the current working component.
    let mut live: Vec<u32> = (0..n as u32).collect();
    let mut sub = graph.clone();

    loop {
        let remaining = live.len();
        if remaining == 0 {
            break;
        }
        let k = ((remaining as f64 * k_frac).ceil() as usize).max(1);
        if remaining <= k {
            // Terminal round: everything left goes to the front by degree.
            let mut rest: Vec<u32> = (0..remaining as u32).collect();
            rest.sort_by_key(|&v| (std::cmp::Reverse(sub.degree(v)), live[v as usize]));
            for v in rest {
                ranks[live[v as usize] as usize] = front;
                front += 1;
            }
            break;
        }

        // Slash: the k highest-degree vertices get the lowest free ranks.
        let mut by_degree: Vec<u32> = (0..remaining as u32).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(sub.degree(v)), live[v as usize]));
        let hubs = &by_degree[..k];
        let mut is_hub = vec![false; remaining];
        for &h in hubs {
            ranks[live[h as usize] as usize] = front;
            front += 1;
            is_hub[h as usize] = true;
        }

        // Burn: components of the remainder.
        let keep: Vec<u32> = (0..remaining as u32).filter(|&v| !is_hub[v as usize]).collect();
        let (rest, rest_orig_local) = sub.induced_subgraph(&keep);
        let comps = Components::find(&rest);
        let giant = match comps.largest() {
            Some(g) => g,
            None => break, // nothing left
        };

        // Spokes: vertices of non-giant components take the highest free
        // ranks. Components are ordered by increasing size (ties by id) so
        // the smallest spokes sit at the very end, mirroring SlashBurn's
        // spoke layout.
        let mut spoke_comps: Vec<u32> = (0..comps.count() as u32).filter(|&c| c != giant).collect();
        spoke_comps.sort_by_key(|&c| (comps.size(c), c));
        let members = comps.members();
        for &c in &spoke_comps {
            for &v in members[c as usize].iter().rev() {
                back -= 1;
                let orig = live[rest_orig_local[v as usize] as usize];
                ranks[orig as usize] = back;
            }
        }

        // Recurse on the giant component.
        let giant_local: Vec<u32> = members[giant as usize].clone();
        let (next_sub, next_orig_local) = rest.induced_subgraph(&giant_local);
        live =
            next_orig_local.iter().map(|&v| live[rest_orig_local[v as usize] as usize]).collect();
        sub = next_sub;
    }
    debug_assert!(front <= back, "front {front} crossed back {back}");
    Permutation::from_ranks(ranks).expect("every vertex received exactly one rank")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{barabasi_albert, path, star};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn star_hub_slashed_first() {
        let g = star(50);
        let pi = slashburn_order(&g, 0.02); // k = 1
        assert_eq!(pi.rank(0), 0);
    }

    #[test]
    fn produces_valid_permutation_on_powerlaw() {
        let g = barabasi_albert(400, 2, 3);
        let pi = slashburn_order(&g, 0.005);
        assert_eq!(pi.len(), 400);
        assert!(Permutation::from_ranks(pi.ranks().to_vec()).is_ok());
    }

    #[test]
    fn hubs_occupy_low_ranks() {
        let g = barabasi_albert(500, 2, 7);
        let pi = slashburn_order(&g, 0.01);
        // The global max-degree vertex must be slashed in round one.
        let hub = (0..500u32).max_by_key(|&v| g.degree(v)).unwrap();
        assert!(pi.rank(hub) < 5, "hub rank {} should be tiny", pi.rank(hub));
    }

    #[test]
    fn spokes_pushed_to_back() {
        // Star + one disconnected pendant pair: after slashing the hub the
        // leaves and the pair are all spokes.
        let g = GraphBuilder::undirected(7)
            .edges([(0, 1), (0, 2), (0, 3), (0, 4), (5, 6)])
            .build()
            .unwrap();
        let pi = slashburn_order(&g, 0.15); // k = ceil(7*0.15)=2
                                            // Vertex 0 (degree 4) slashed first; ranks of 5,6 (smallest spoke
                                            // component is the pair or singletons after slash) are high.
        assert!(pi.rank(0) <= 1);
        assert!(pi.rank(5) >= 2 && pi.rank(6) >= 2);
    }

    #[test]
    fn path_terminates_and_is_valid() {
        // Paths are SlashBurn's worst case (giant shrinks slowly).
        let g = path(200);
        let pi = slashburn_order(&g, 0.005);
        assert_eq!(pi.len(), 200);
    }

    #[test]
    fn deterministic() {
        let g = barabasi_albert(200, 2, 1);
        assert_eq!(slashburn_order(&g, 0.005), slashburn_order(&g, 0.005));
    }

    #[test]
    fn tiny_graphs() {
        let g1 = GraphBuilder::undirected(1).build().unwrap();
        assert!(slashburn_order(&g1, 0.005).is_identity());
        let g0 = GraphBuilder::undirected(0).build().unwrap();
        assert!(slashburn_order(&g0, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "k_frac")]
    fn rejects_bad_fraction() {
        let g = path(4);
        let _ = slashburn_order(&g, 0.0);
    }
}
