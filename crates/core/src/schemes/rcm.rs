//! Reverse Cuthill–McKee (paper §III-E, Cuthill & McKee \[9\]).
//!
//! Per connected component: start from a pseudo-peripheral vertex found from
//! the component's minimum-degree vertex, BFS while visiting each vertex's
//! unvisited neighbors in non-decreasing degree order, then reverse the
//! whole visit sequence. RCM is the paper's clear winner on the graph
//! bandwidth measure β (Figure 6a).

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use reorderlab_graph::{
    frontier_candidates, frontier_candidates_by_key, pseudo_peripheral_recorded,
    pseudo_peripheral_serial, Csr, Permutation,
};
use reorderlab_trace::{NoopRecorder, Recorder};
use std::collections::VecDeque;

/// Packed `(degree, id)` sort keys: one `u64` comparison replaces a tuple
/// compare with a repeated degree lookup.
fn degree_keys(graph: &Csr) -> Vec<u64> {
    (0..graph.num_vertices() as u32)
        .map(|v| ((graph.degree(v) as u64) << 32) | u64::from(v))
        .collect()
}

/// Computes the Reverse Cuthill–McKee ordering of `graph`.
///
/// Components are processed in increasing order of their minimum-degree
/// vertex (ties by id), matching the classic formulation ("the search
/// resumes with another unvisited vertex of the smallest current degree").
///
/// The BFS runs level-synchronously: each level's degree-sorted unvisited
/// neighbor lists are gathered in parallel, then committed in stream order
/// (first occurrence wins). That reproduces the serial FIFO visit sequence
/// exactly — see [`rcm_order_serial`], the retained oracle — so the
/// permutation is bit-identical at any thread count.
///
/// # Examples
///
/// On a path graph RCM achieves the optimal bandwidth of 1:
///
/// ```
/// use reorderlab_core::{measures::gap_measures, schemes::rcm_order};
/// use reorderlab_datasets::path;
///
/// let g = path(32);
/// let pi = rcm_order(&g);
/// assert_eq!(gap_measures(&g, &pi).bandwidth, 1);
/// ```
pub fn rcm_order(graph: &Csr) -> Permutation {
    rcm_order_recorded(graph, &mut NoopRecorder)
}

/// [`rcm_order`] with instrumentation: per-component
/// pseudo-peripheral-search spans and an `rcm/components` counter. The
/// recorder only observes — output is bit-identical to [`rcm_order`].
pub fn rcm_order_recorded(graph: &Csr, rec: &mut dyn Recorder) -> Permutation {
    let n = graph.num_vertices();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let key = degree_keys(graph);

    // Vertices sorted by (degree, id) — candidate starting points.
    let mut starts: Vec<u32> = (0..n as u32).collect();
    starts.sort_unstable_by_key(|&v| key[v as usize]);

    // A single-threaded pool takes the FIFO path: the level gather does
    // strictly more sorting (it keys candidates against the level-start
    // snapshot, before same-level commits shrink the lists), which only
    // pays for itself across workers. Both paths are bit-identical — the
    // packed keys sort exactly like the (degree, id) tuples.
    if rayon::current_num_threads() <= 1 {
        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut nbrs: Vec<u32> = Vec::new();
        for &s in &starts {
            if visited[s as usize] {
                continue;
            }
            rec.counter("rcm/components", 1);
            let root = pseudo_peripheral_recorded(graph, s, rec);
            visited[root as usize] = true;
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                nbrs.clear();
                nbrs.extend(graph.neighbors(v).iter().copied().filter(|&u| !visited[u as usize]));
                nbrs.sort_unstable_by_key(|&u| key[u as usize]);
                for &u in &nbrs {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        order.reverse();
        return super::order_permutation(&order);
    }

    for &s in &starts {
        if visited[s as usize] {
            continue;
        }
        // Improve the start: walk to a pseudo-peripheral vertex of this
        // component so the level structure is deep and narrow.
        rec.counter("rcm/components", 1);
        let root = pseudo_peripheral_recorded(graph, s, rec);
        visited[root as usize] = true;
        order.push(root);
        let mut frontier = vec![root];
        while !frontier.is_empty() {
            // Sorting each candidate list before the already-visited entries
            // are dropped at commit matches the serial "filter then sort":
            // removing elements never reorders the survivors.
            let blocks = frontier_candidates_by_key(
                graph,
                &frontier,
                |w| visited[w as usize],
                |w| key[w as usize],
            );
            let mut next = Vec::new();
            for block in blocks {
                for w in block {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        next.push(w);
                    }
                }
            }
            order.extend_from_slice(&next);
            frontier = next;
        }
    }
    debug_assert_eq!(order.len(), n);
    // The "reverse" in RCM.
    order.reverse();
    super::order_permutation(&order)
}

/// Reference serial implementation of [`rcm_order`]: the classic FIFO queue
/// with a per-vertex filter-and-sort of unvisited neighbors. Retained as the
/// property-test oracle and bench baseline for the parallel level gather.
pub fn rcm_order_serial(graph: &Csr) -> Permutation {
    let n = graph.num_vertices();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut nbrs: Vec<u32> = Vec::new();

    let mut starts: Vec<u32> = (0..n as u32).collect();
    starts.sort_by_key(|&v| (graph.degree(v), v));

    for &s in &starts {
        if visited[s as usize] {
            continue;
        }
        let root = pseudo_peripheral_serial(graph, s);
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            nbrs.clear();
            nbrs.extend(graph.neighbors(v).iter().copied().filter(|&u| !visited[u as usize]));
            nbrs.sort_by_key(|&u| (graph.degree(u), u));
            for &u in &nbrs {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order.reverse();
    super::order_permutation(&order)
}

/// Cuthill–McKee *without* the final reversal, exposed because the
/// Grappolo-RCM composite orders the community graph with plain RCM and the
/// distinction occasionally matters when comparing against references.
pub fn cm_order(graph: &Csr) -> Permutation {
    rcm_order(graph).reversed()
}

/// Children Depth-First Search ordering (Banerjee et al. \[3\], the paper's
/// footnote 1): the RCM relaxation where "the renumbering of unvisited
/// neighbors follows an arbitrary order at every level" — i.e. a plain BFS
/// from a pseudo-peripheral start with neighbors in natural order, then
/// reversed. Cheaper than RCM (no per-level sort) at some bandwidth cost.
///
/// Uses the same parallel level gather as [`rcm_order`], minus the per-list
/// sort; bit-identical to [`cdfs_order_serial`] at any thread count.
pub fn cdfs_order(graph: &Csr) -> Permutation {
    cdfs_order_recorded(graph, &mut NoopRecorder)
}

/// [`cdfs_order`] with instrumentation: per-component
/// pseudo-peripheral-search spans and a `cdfs/components` counter. The
/// recorder only observes — output is bit-identical to [`cdfs_order`].
pub fn cdfs_order_recorded(graph: &Csr, rec: &mut dyn Recorder) -> Permutation {
    let n = graph.num_vertices();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let key = degree_keys(graph);

    let mut starts: Vec<u32> = (0..n as u32).collect();
    starts.sort_unstable_by_key(|&v| key[v as usize]);

    // Same adaptive split as `rcm_order`: plain FIFO when single-threaded.
    if rayon::current_num_threads() <= 1 {
        let mut queue: VecDeque<u32> = VecDeque::new();
        for &s in &starts {
            if visited[s as usize] {
                continue;
            }
            rec.counter("cdfs/components", 1);
            let root = pseudo_peripheral_recorded(graph, s, rec);
            visited[root as usize] = true;
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &u in graph.neighbors(v) {
                    if !visited[u as usize] {
                        visited[u as usize] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
        order.reverse();
        return super::order_permutation(&order);
    }

    for &s in &starts {
        if visited[s as usize] {
            continue;
        }
        rec.counter("cdfs/components", 1);
        let root = pseudo_peripheral_recorded(graph, s, rec);
        visited[root as usize] = true;
        order.push(root);
        let mut frontier = vec![root];
        while !frontier.is_empty() {
            let blocks = frontier_candidates(graph, &frontier, |w| visited[w as usize]);
            let mut next = Vec::new();
            for block in blocks {
                for w in block {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        next.push(w);
                    }
                }
            }
            order.extend_from_slice(&next);
            frontier = next;
        }
    }
    order.reverse();
    super::order_permutation(&order)
}

/// Reference serial implementation of [`cdfs_order`]: plain FIFO BFS.
/// Retained as the property-test oracle for the parallel level gather.
pub fn cdfs_order_serial(graph: &Csr) -> Permutation {
    let n = graph.num_vertices();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: VecDeque<u32> = VecDeque::new();

    let mut starts: Vec<u32> = (0..n as u32).collect();
    starts.sort_by_key(|&v| (graph.degree(v), v));
    for &s in &starts {
        if visited[s as usize] {
            continue;
        }
        let root = pseudo_peripheral_serial(graph, s);
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in graph.neighbors(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    order.reverse();
    super::order_permutation(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::gap_measures;
    use reorderlab_datasets::{grid2d, path, star};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn path_bandwidth_is_one() {
        let g = path(50);
        let m = gap_measures(&g, &rcm_order(&g));
        assert_eq!(m.bandwidth, 1);
        assert_eq!(m.avg_gap, 1.0);
    }

    #[test]
    fn grid_bandwidth_near_side_length() {
        // Optimal bandwidth of an r x c grid (r <= c) is r; RCM should land
        // close to it.
        let g = grid2d(8, 16);
        let m = gap_measures(&g, &rcm_order(&g));
        assert!(m.bandwidth <= 12, "grid bandwidth {} should be near 8", m.bandwidth);
    }

    #[test]
    fn rcm_beats_natural_on_shuffled_grid() {
        use crate::schemes::random_order;
        let g = grid2d(10, 10);
        let shuffled = g.permuted(&random_order(&g, 99)).unwrap();
        let natural = gap_measures(&shuffled, &Permutation::identity(100));
        let rcm = gap_measures(&shuffled, &rcm_order(&shuffled));
        assert!(
            rcm.bandwidth < natural.bandwidth / 2,
            "RCM {} vs natural {}",
            rcm.bandwidth,
            natural.bandwidth
        );
    }

    #[test]
    fn star_hub_gets_extreme_rank() {
        // On a star the hub neighbors everything; after reversal the hub
        // (visited first from the periphery... ) — all orderings give
        // bandwidth n-1-ish; just verify validity and determinism.
        let g = star(20);
        let a = rcm_order(&g);
        assert_eq!(a, rcm_order(&g));
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn disconnected_components_all_ordered() {
        let g =
            GraphBuilder::undirected(7).edges([(0, 1), (1, 2), (4, 5), (5, 6)]).build().unwrap();
        let pi = rcm_order(&g);
        assert_eq!(pi.len(), 7);
        // Bandwidth within each path component must be 1.
        let m = gap_measures(&g, &pi);
        assert_eq!(m.bandwidth, 1);
    }

    #[test]
    fn cm_is_reverse_of_rcm() {
        let g = grid2d(5, 5);
        assert_eq!(cm_order(&g), rcm_order(&g).reversed());
    }

    #[test]
    fn cdfs_is_valid_and_near_rcm_on_path() {
        let g = path(30);
        let pi = cdfs_order(&g);
        assert!(Permutation::from_ranks(pi.ranks().to_vec()).is_ok());
        // On a path there are no ties to sort, so CDFS equals RCM exactly.
        assert_eq!(gap_measures(&g, &pi).bandwidth, 1);
    }

    #[test]
    fn cdfs_bandwidth_bounded_by_level_widths() {
        let g = grid2d(8, 8);
        let m = gap_measures(&g, &cdfs_order(&g));
        // BFS-level ordering bounds bandwidth by twice the widest level.
        assert!(m.bandwidth <= 16, "cdfs bandwidth {}", m.bandwidth);
    }

    #[test]
    fn cdfs_covers_disconnected_graphs() {
        let g = GraphBuilder::undirected(6).edge(0, 1).edge(3, 4).build().unwrap();
        assert_eq!(cdfs_order(&g).len(), 6);
    }

    #[test]
    fn empty_and_singleton() {
        let g0 = GraphBuilder::undirected(0).build().unwrap();
        assert!(rcm_order(&g0).is_empty());
        let g1 = GraphBuilder::undirected(1).build().unwrap();
        assert!(rcm_order(&g1).is_identity());
    }

    #[test]
    fn recorded_variants_are_identical_and_count_components() {
        use reorderlab_trace::RunRecorder;
        let g =
            GraphBuilder::undirected(7).edges([(0, 1), (1, 2), (4, 5), (5, 6)]).build().unwrap();
        let mut rec = RunRecorder::new();
        assert_eq!(rcm_order_recorded(&g, &mut rec), rcm_order(&g));
        assert_eq!(rec.counters()["rcm/components"], 3, "two paths plus isolated vertex 3");
        assert_eq!(rec.counters()["pseudo_peripheral/runs"], 3);
        let mut rec = RunRecorder::new();
        assert_eq!(cdfs_order_recorded(&g, &mut rec), cdfs_order(&g));
        assert_eq!(rec.counters()["cdfs/components"], 3);
    }

    #[test]
    fn isolated_vertices_ordered_first_after_reversal() {
        // Isolated vertices have degree 0, are picked as starts first, and
        // land at the *end* after reversal.
        let g = GraphBuilder::undirected(4).edge(2, 3).build().unwrap();
        let pi = rcm_order(&g);
        let order = pi.to_order();
        assert!(order[2..].contains(&0));
        assert!(order[2..].contains(&1));
    }
}
