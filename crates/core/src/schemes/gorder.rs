//! Gorder (paper §III-C, Wei et al. \[37\]): the window-based,
//! cache-miss-minimizing greedy ordering.
//!
//! Vertices are emitted one at a time; the next vertex is the one with the
//! highest *Gscore* against the last `w` emitted vertices, where
//! `S(i, j) = S_s(i, j) + S_n(i, j)` counts shared neighbors plus direct
//! edges. The exact problem is NP-hard; this is the standard greedy
//! approximation that runs in time proportional to the sum of squared
//! degrees, with the usual hub cap that skips two-hop score propagation
//! through very-high-degree intermediates.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use rayon::prelude::*;
use reorderlab_graph::{Csr, Permutation};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Minimum degree of the entering/leaving vertex before the Gscore pass
/// gathers its two-hop credit lists in parallel; below this the serial pass
/// is cheaper. Both paths produce identical output (the gather only
/// precomputes the filters; key updates and heap pushes are committed
/// serially in the exact serial order), so the threshold never affects the
/// permutation.
const GATHER_MIN_DEGREE: usize = 32;

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    key: i64,
    vertex: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max key first; ties toward the smaller vertex id.
        self.key.cmp(&other.key).then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes a Gorder permutation with the given window size (the original
/// paper's default is `w = 5`).
///
/// `hub_cap` bounds two-hop Gscore propagation: shared-neighbor credit is
/// not propagated *through* intermediates of degree above the cap, which
/// keeps the cost near `Σ deg²` on skewed graphs (the same engineering
/// concession the reference implementation makes).
///
/// # Panics
///
/// Panics if `window == 0`.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::gorder;
/// use reorderlab_datasets::clique_chain;
///
/// let g = clique_chain(3, 5);
/// let pi = gorder(&g, 5, usize::MAX);
/// assert_eq!(pi.len(), 15);
/// ```
pub fn gorder(graph: &Csr, window: usize, hub_cap: usize) -> Permutation {
    assert!(window >= 1, "window must be at least 1");
    let n = graph.num_vertices();
    let mut key = vec![0i64; n];
    let mut placed = vec![false; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut recent: VecDeque<u32> = VecDeque::with_capacity(window + 1);
    let mut order: Vec<u32> = Vec::with_capacity(n);

    // Fallback seeds: vertices by decreasing degree (Gorder starts from the
    // highest-degree vertex and reseeds there when a region is exhausted).
    // Packed key: ascending (u32::MAX - degree, id) = descending degree.
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_unstable_by_key(|&v| {
        (u64::from(u32::MAX - graph.degree(v) as u32) << 32) | u64::from(v)
    });
    let mut seed_cursor = 0usize;

    // Applies the Gscore delta of `v` entering (+1) or leaving (-1) the
    // window to all unplaced candidates. `placed` is static for the whole
    // pass (the entering vertex is marked before the call), so the
    // candidate filters are pure; for high-degree `v` the per-intermediate
    // candidate lists are gathered in parallel and then committed serially
    // in intermediate order, reproducing the serial pass's exact sequence
    // of key updates and heap pushes.
    let apply =
        |v: u32, delta: i64, key: &mut [i64], placed: &[bool], heap: &mut BinaryHeap<Entry>| {
            let nbrs = graph.neighbors(v);
            let parallel = nbrs.len() >= GATHER_MIN_DEGREE && rayon::current_num_threads() > 1;
            let mut commit = |u: u32, direct: bool, twohop: &[u32]| {
                if direct {
                    key[u as usize] += delta; // S_n: direct edge credit
                    if delta > 0 {
                        heap.push(Entry { key: key[u as usize], vertex: u });
                    }
                }
                // S_s: shared-neighbor credit through intermediate u.
                for &t in twohop {
                    key[t as usize] += delta;
                    if delta > 0 {
                        heap.push(Entry { key: key[t as usize], vertex: t });
                    }
                }
            };
            if parallel {
                let gathered: Vec<(bool, Vec<u32>)> = nbrs
                    .par_iter()
                    .map(|&u| {
                        let direct = u != v && !placed[u as usize];
                        let twohop: Vec<u32> = if graph.degree(u) <= hub_cap {
                            graph
                                .neighbors(u)
                                .iter()
                                .copied()
                                .filter(|&t| t != v && !placed[t as usize])
                                .collect()
                        } else {
                            Vec::new()
                        };
                        (direct, twohop)
                    })
                    .collect();
                for (&u, (direct, twohop)) in nbrs.iter().zip(&gathered) {
                    commit(u, *direct, twohop);
                }
            } else {
                let mut twohop: Vec<u32> = Vec::new();
                for &u in nbrs {
                    twohop.clear();
                    if graph.degree(u) <= hub_cap {
                        twohop.extend(
                            graph
                                .neighbors(u)
                                .iter()
                                .copied()
                                .filter(|&t| t != v && !placed[t as usize]),
                        );
                    }
                    commit(u, u != v && !placed[u as usize], &twohop);
                }
            }
        };

    for _ in 0..n {
        // Select the unplaced vertex with max key; fall back to the next
        // unplaced high-degree seed when the window has no live candidates.
        let mut chosen: Option<u32> = None;
        while let Some(top) = heap.peek() {
            if placed[top.vertex as usize] || top.key != key[top.vertex as usize] {
                heap.pop(); // stale
                continue;
            }
            if top.key > 0 {
                chosen = heap.pop().map(|entry| entry.vertex);
            }
            break;
        }
        let v = match chosen {
            Some(v) => v,
            None => {
                while placed[seeds[seed_cursor] as usize] {
                    seed_cursor += 1;
                }
                seeds[seed_cursor]
            }
        };

        placed[v as usize] = true;
        order.push(v);
        recent.push_back(v);
        apply(v, 1, &mut key, &placed, &mut heap);
        if recent.len() > window {
            if let Some(evicted) = recent.pop_front() {
                apply(evicted, -1, &mut key, &placed, &mut heap);
            }
        }
    }

    super::order_permutation(&order)
}

/// Reference serial implementation of [`gorder`]: the original single-pass
/// Gscore loop with inline filtering. Retained as the property-test oracle
/// and bench baseline for the parallel two-hop gather.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn gorder_serial(graph: &Csr, window: usize, hub_cap: usize) -> Permutation {
    assert!(window >= 1, "window must be at least 1");
    let n = graph.num_vertices();
    let mut key = vec![0i64; n];
    let mut placed = vec![false; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut recent: VecDeque<u32> = VecDeque::with_capacity(window + 1);
    let mut order: Vec<u32> = Vec::with_capacity(n);

    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    let mut seed_cursor = 0usize;

    let apply =
        |v: u32, delta: i64, key: &mut [i64], placed: &[bool], heap: &mut BinaryHeap<Entry>| {
            for &u in graph.neighbors(v) {
                if u != v && !placed[u as usize] {
                    key[u as usize] += delta; // S_n: direct edge credit
                    if delta > 0 {
                        heap.push(Entry { key: key[u as usize], vertex: u });
                    }
                }
                // S_s: shared-neighbor credit through intermediate u.
                if graph.degree(u) <= hub_cap {
                    for &t in graph.neighbors(u) {
                        if t != v && !placed[t as usize] {
                            key[t as usize] += delta;
                            if delta > 0 {
                                heap.push(Entry { key: key[t as usize], vertex: t });
                            }
                        }
                    }
                }
            }
        };

    for _ in 0..n {
        let mut chosen: Option<u32> = None;
        while let Some(top) = heap.peek() {
            if placed[top.vertex as usize] || top.key != key[top.vertex as usize] {
                heap.pop(); // stale
                continue;
            }
            if top.key > 0 {
                chosen = heap.pop().map(|entry| entry.vertex);
            }
            break;
        }
        let v = match chosen {
            Some(v) => v,
            None => {
                while placed[seeds[seed_cursor] as usize] {
                    seed_cursor += 1;
                }
                seeds[seed_cursor]
            }
        };

        placed[v as usize] = true;
        order.push(v);
        recent.push_back(v);
        apply(v, 1, &mut key, &placed, &mut heap);
        if recent.len() > window {
            if let Some(evicted) = recent.pop_front() {
                apply(evicted, -1, &mut key, &placed, &mut heap);
            }
        }
    }

    super::order_permutation(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::gap_measures;
    use crate::schemes::random_order;
    use reorderlab_datasets::{clique_chain, erdos_renyi_gnm, grid2d, path};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn valid_permutation_on_random_graph() {
        let g = erdos_renyi_gnm(120, 400, 3);
        let pi = gorder(&g, 5, usize::MAX);
        assert!(Permutation::from_ranks(pi.ranks().to_vec()).is_ok());
    }

    #[test]
    fn keeps_cliques_contiguous() {
        // Cliques are the best case for Gscore: once a clique member is
        // placed, the rest of the clique dominates the window scores.
        let g = clique_chain(4, 6);
        let pi = gorder(&g, 5, usize::MAX);
        for c in 0..4u32 {
            let ranks: Vec<u32> = (0..6).map(|i| pi.rank(c * 6 + i)).collect();
            let (lo, hi) =
                (*ranks.iter().min().expect("non-empty"), *ranks.iter().max().expect("non-empty"));
            assert!(hi - lo <= 7, "clique {c} spread over ranks {lo}..{hi}");
        }
    }

    #[test]
    fn improves_avg_gap_over_random_on_shuffled_grid() {
        let g0 = grid2d(12, 12);
        let g = g0.permuted(&random_order(&g0, 5)).unwrap();
        let rand_gap = gap_measures(&g, &random_order(&g, 7)).avg_gap;
        let gord_gap = gap_measures(&g, &gorder(&g, 5, usize::MAX)).avg_gap;
        assert!(gord_gap < rand_gap, "gorder {gord_gap} vs random {rand_gap}");
    }

    #[test]
    fn window_one_still_valid() {
        let g = path(20);
        let pi = gorder(&g, 1, usize::MAX);
        assert_eq!(pi.len(), 20);
    }

    #[test]
    fn path_ordered_contiguously() {
        // On a path, greedy Gorder walks the path: each neighbor of the
        // window's last vertex scores highest.
        let g = path(30);
        let pi = gorder(&g, 5, usize::MAX);
        let m = gap_measures(&g, &pi);
        assert!(m.avg_gap <= 2.0, "path should stay near-contiguous, ξ̂ = {}", m.avg_gap);
    }

    #[test]
    fn hub_cap_changes_nothing_on_low_degree_graphs() {
        let g = grid2d(8, 8);
        assert_eq!(gorder(&g, 5, usize::MAX), gorder(&g, 5, 4));
    }

    #[test]
    fn disconnected_components_all_placed() {
        let g =
            GraphBuilder::undirected(8).edges([(0, 1), (1, 2), (5, 6), (6, 7)]).build().unwrap();
        let pi = gorder(&g, 5, usize::MAX);
        assert_eq!(pi.len(), 8);
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi_gnm(80, 200, 9);
        assert_eq!(gorder(&g, 5, usize::MAX), gorder(&g, 5, usize::MAX));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(0).build().unwrap();
        assert!(gorder(&g, 5, usize::MAX).is_empty());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_zero_window() {
        let g = path(4);
        let _ = gorder(&g, 0, usize::MAX);
    }
}
