//! Degree- and hub-based orderings (paper §III-B): Degree Sort, Hub Sort
//! \[38\], and Hub Clustering \[2\].
//!
//! These lightweight schemes exploit the skew of real-world degree
//! distributions: frequently-accessed hub vertices are packed together so
//! their (large) adjacency data shares cache lines, without attempting to
//! optimize any gap measure directly.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use reorderlab_graph::{Csr, Permutation};

/// Sort direction for [`degree_sort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegreeDirection {
    /// Highest-degree vertices first (the common choice for hub packing).
    #[default]
    Decreasing,
    /// Lowest-degree vertices first.
    Increasing,
}

/// Degree Sort: order vertices by degree, ties broken by original id (a
/// stable sort, so the natural order survives within each degree class).
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::{degree_sort, DegreeDirection};
/// use reorderlab_datasets::star;
///
/// let g = star(5); // hub 0 with degree 4
/// let pi = degree_sort(&g, DegreeDirection::Decreasing);
/// assert_eq!(pi.rank(0), 0); // the hub gets the first slot
/// ```
pub fn degree_sort(graph: &Csr, direction: DegreeDirection) -> Permutation {
    let n = graph.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    match direction {
        DegreeDirection::Decreasing => {
            order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        }
        DegreeDirection::Increasing => {
            order.sort_by_key(|&v| (graph.degree(v), v));
        }
    }
    super::order_permutation(&order)
}

/// The hub threshold used by [`hub_sort`] and [`hub_cluster`]: a vertex is a
/// hub when its degree exceeds the average degree, the standard cutoff from
/// the hub-sorting literature \[38\].
pub fn hub_threshold(graph: &Csr) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    graph.num_arcs() as f64 / n as f64
}

/// Hub Sort \[38\]: hubs (degree above the mean) are placed first in
/// non-increasing degree order; all remaining vertices keep their relative
/// natural order afterwards.
pub fn hub_sort(graph: &Csr) -> Permutation {
    let n = graph.num_vertices();
    let threshold = hub_threshold(graph);
    let mut hubs: Vec<u32> =
        (0..n as u32).filter(|&v| graph.degree(v) as f64 > threshold).collect();
    hubs.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    let mut order = hubs;
    let is_hub: Vec<bool> = {
        let mut flags = vec![false; n];
        for &v in &order {
            flags[v as usize] = true;
        }
        flags
    };
    order.extend((0..n as u32).filter(|&v| !is_hub[v as usize]));
    super::order_permutation(&order)
}

/// Hub Clustering \[2\]: the lighter-weight variant — hubs are made
/// contiguous (first), but *retain their natural relative order* instead of
/// being sorted; non-hubs follow in natural order.
pub fn hub_cluster(graph: &Csr) -> Permutation {
    let n = graph.num_vertices();
    let threshold = hub_threshold(graph);
    let mut order: Vec<u32> = Vec::with_capacity(n);
    order.extend((0..n as u32).filter(|&v| graph.degree(v) as f64 > threshold));
    let hub_count = order.len();
    order.extend((0..n as u32).filter(|&v| graph.degree(v) as f64 <= threshold));
    debug_assert_eq!(order.len(), n);
    let _ = hub_count;
    super::order_permutation(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{barabasi_albert, path, star};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn degree_sort_decreasing_orders_by_degree() {
        let g =
            GraphBuilder::undirected(4).edges([(0, 1), (0, 2), (0, 3), (1, 2)]).build().unwrap();
        // degrees: 0->3, 1->2, 2->2, 3->1
        let pi = degree_sort(&g, DegreeDirection::Decreasing);
        assert_eq!(pi.rank(0), 0);
        assert_eq!(pi.rank(1), 1); // tie with 2 broken by id
        assert_eq!(pi.rank(2), 2);
        assert_eq!(pi.rank(3), 3);
    }

    #[test]
    fn degree_sort_increasing_is_reverse_class_order() {
        let g = star(4);
        let pi = degree_sort(&g, DegreeDirection::Increasing);
        assert_eq!(pi.rank(0), 3, "hub goes last in increasing order");
    }

    #[test]
    fn degree_sort_stable_on_regular_graph() {
        // All degrees equal: the order must be natural.
        let g = path(2); // both endpoints degree 1
        assert!(degree_sort(&g, DegreeDirection::Decreasing).is_identity());
    }

    #[test]
    fn hub_sort_places_hubs_first_sorted() {
        let g = barabasi_albert(300, 2, 5);
        let pi = hub_sort(&g);
        let order = pi.to_order();
        let threshold = hub_threshold(&g);
        let hub_count = (0..300u32).filter(|&v| g.degree(v) as f64 > threshold).count();
        // First hub_count slots hold exactly the hubs, in degree order.
        for i in 0..hub_count {
            assert!(g.degree(order[i]) as f64 > threshold, "slot {i} is not a hub");
            if i > 0 {
                assert!(g.degree(order[i - 1]) >= g.degree(order[i]));
            }
        }
        // Remaining slots keep natural relative order.
        for w in order[hub_count..].windows(2) {
            assert!(w[0] < w[1], "non-hub tail must stay naturally ordered");
        }
    }

    #[test]
    fn hub_cluster_keeps_hub_natural_order() {
        let g = barabasi_albert(300, 2, 5);
        let pi = hub_cluster(&g);
        let order = pi.to_order();
        let threshold = hub_threshold(&g);
        let hub_count = (0..300u32).filter(|&v| g.degree(v) as f64 > threshold).count();
        for w in order[..hub_count].windows(2) {
            assert!(w[0] < w[1], "hubs must stay naturally ordered");
        }
        for w in order[hub_count..].windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn hub_schemes_agree_on_hub_set() {
        let g = barabasi_albert(200, 3, 9);
        let t = hub_threshold(&g);
        let a: std::collections::HashSet<u32> =
            hub_sort(&g).to_order().into_iter().take_while(|&v| g.degree(v) as f64 > t).collect();
        let b: std::collections::HashSet<u32> = hub_cluster(&g)
            .to_order()
            .into_iter()
            .take_while(|&v| g.degree(v) as f64 > t)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn regular_graph_has_no_hubs() {
        let g = reorderlab_datasets::cycle(10); // all degree 2, threshold 2
        assert!(hub_sort(&g).is_identity());
        assert!(hub_cluster(&g).is_identity());
    }

    #[test]
    fn empty_graph_ok() {
        let g = GraphBuilder::undirected(0).build().unwrap();
        assert!(degree_sort(&g, DegreeDirection::Decreasing).is_empty());
        assert!(hub_sort(&g).is_empty());
        assert!(hub_cluster(&g).is_empty());
        assert_eq!(hub_threshold(&g), 0.0);
    }
}
