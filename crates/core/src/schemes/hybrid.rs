//! Multiscale hybrid ordering — the paper's stated future direction
//! ("potential use of coarsening to explore the benefits of a multiscale
//! and/or hybrid ordering engines", §VII).
//!
//! The engine composes the study's two best per-measure schemes across
//! scales: community detection supplies the coarse structure (as in
//! Grappolo-RCM), RCM orders the communities *and recursively orders the
//! inside of each community*, so every level of the hierarchy — not just
//! the top — gets a bandwidth-aware arrangement.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use crate::schemes::rcm::rcm_order;
use reorderlab_community::{louvain, LouvainConfig};
use reorderlab_graph::{contract, Csr, Permutation};

/// Configuration for [`hybrid_multiscale_order`].
#[derive(Debug, Clone, PartialEq)]
pub struct HybridConfig {
    /// Subgraphs of at most this many vertices are ordered directly by RCM.
    pub leaf_size: usize,
    /// Recursion depth cap (safety against non-shrinking community trees).
    pub max_depth: usize,
    /// Louvain settings used at every level.
    pub louvain: LouvainConfig,
}

impl HybridConfig {
    /// Default tuning: 256-vertex leaves, depth ≤ 8, single-threaded
    /// Louvain (recursion supplies the parallelism opportunity instead).
    pub fn new() -> Self {
        HybridConfig { leaf_size: 256, max_depth: 8, louvain: LouvainConfig::default().threads(1) }
    }

    /// Sets the leaf size.
    pub fn leaf_size(mut self, n: usize) -> Self {
        self.leaf_size = n.max(2);
        self
    }

    /// Sets the recursion depth cap.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d.max(1);
        self
    }
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig::new()
    }
}

/// Computes the multiscale hybrid ordering of `graph`.
///
/// Recursively: detect communities (Louvain), order the community graph by
/// RCM, then order each community's interior by the same procedure; leaves
/// fall back to plain RCM. Degenerate levels (a single community, or no
/// merging at all) also fall back to RCM, guaranteeing termination.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::{hybrid_multiscale_order, HybridConfig};
/// use reorderlab_datasets::clique_chain;
///
/// let g = clique_chain(4, 8);
/// let pi = hybrid_multiscale_order(&g, &HybridConfig::new().leaf_size(4));
/// assert_eq!(pi.len(), 32);
/// ```
pub fn hybrid_multiscale_order(graph: &Csr, config: &HybridConfig) -> Permutation {
    let n = graph.num_vertices();
    let mut order = Vec::with_capacity(n);
    let all: Vec<u32> = (0..n as u32).collect();
    recurse(graph, &all, config, 0, &mut order);
    super::order_permutation(&order)
}

fn recurse(
    root: &Csr,
    vertices: &[u32],
    config: &HybridConfig,
    depth: usize,
    order: &mut Vec<u32>,
) {
    let (sub, originals) = root.induced_subgraph(vertices);
    if vertices.len() <= config.leaf_size || depth >= config.max_depth {
        emit_rcm(&sub, &originals, order);
        return;
    }
    let communities = louvain(&sub, &config.louvain);
    let k = communities.num_communities;
    if k <= 1 || k == sub.num_vertices() {
        emit_rcm(&sub, &originals, order);
        return;
    }
    // Order the communities themselves by RCM on the coarse graph.
    // SAFETY: louvain's assignment is dense over exactly `k` labels,
    // which is what `contract` validates.
    let coarse =
        contract(&sub, &communities.assignment, k).expect("louvain assignment is valid").coarse;
    let comm_rank = rcm_order(&coarse);
    let mut comm_order: Vec<u32> = (0..k as u32).collect();
    comm_order.sort_by_key(|&c| comm_rank.rank(c));
    // Group members per community and recurse in community order.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (local, &c) in communities.assignment.iter().enumerate() {
        members[c as usize].push(originals[local]);
    }
    for c in comm_order {
        let group = &members[c as usize];
        if !group.is_empty() {
            recurse(root, group, config, depth + 1, order);
        }
    }
}

/// Orders `sub` by RCM and appends the result (translated back to original
/// ids) to `order`.
fn emit_rcm(sub: &Csr, originals: &[u32], order: &mut Vec<u32>) {
    let local = rcm_order(sub);
    for &v in &local.to_order() {
        order.push(originals[v as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::gap_measures;
    use crate::schemes::{grappolo_order_with, random_order};
    use reorderlab_datasets::{clique_chain, grid2d, path};
    use reorderlab_graph::GraphBuilder;

    fn small_cfg() -> HybridConfig {
        HybridConfig::new().leaf_size(8)
    }

    #[test]
    fn valid_permutation_on_structured_graph() {
        let g = clique_chain(6, 6);
        let pi = hybrid_multiscale_order(&g, &small_cfg());
        assert!(Permutation::from_ranks(pi.ranks().to_vec()).is_ok());
    }

    #[test]
    fn communities_stay_contiguous() {
        let g = clique_chain(5, 6);
        let pi = hybrid_multiscale_order(&g, &small_cfg());
        for c in 0..5u32 {
            let ranks: Vec<u32> = (0..6).map(|i| pi.rank(c * 6 + i)).collect();
            let span = ranks.iter().max().unwrap() - ranks.iter().min().unwrap();
            assert_eq!(span, 5, "clique {c} fragmented");
        }
    }

    #[test]
    fn beats_flat_grappolo_on_shuffled_grid_bandwidth() {
        // The hybrid's intra-community RCM should tighten arrangements a
        // flat community-contiguous order leaves loose.
        let g0 = grid2d(16, 16);
        let g = g0.permuted(&random_order(&g0, 31)).unwrap();
        let hybrid =
            gap_measures(&g, &hybrid_multiscale_order(&g, &HybridConfig::new().leaf_size(32)));
        let flat = gap_measures(&g, &grappolo_order_with(&g, &LouvainConfig::default().threads(1)));
        assert!(
            hybrid.bandwidth <= flat.bandwidth,
            "hybrid β {} vs flat grappolo β {}",
            hybrid.bandwidth,
            flat.bandwidth
        );
    }

    #[test]
    fn leaf_only_equals_rcm() {
        // With a leaf size covering the whole graph, hybrid == RCM.
        let g = grid2d(6, 6);
        let pi = hybrid_multiscale_order(&g, &HybridConfig::new().leaf_size(100));
        assert_eq!(pi, crate::schemes::rcm_order(&g));
    }

    #[test]
    fn depth_cap_terminates_degenerate_recursion() {
        let g = path(64);
        let pi = hybrid_multiscale_order(&g, &HybridConfig::new().leaf_size(2).max_depth(2));
        assert_eq!(pi.len(), 64);
    }

    #[test]
    fn handles_disconnected_and_tiny() {
        let g = GraphBuilder::undirected(5).edge(0, 1).edge(3, 4).build().unwrap();
        assert_eq!(hybrid_multiscale_order(&g, &small_cfg()).len(), 5);
        let g0 = GraphBuilder::undirected(0).build().unwrap();
        assert!(hybrid_multiscale_order(&g0, &small_cfg()).is_empty());
    }

    #[test]
    fn deterministic() {
        let g = clique_chain(4, 7);
        let cfg = small_cfg();
        assert_eq!(hybrid_multiscale_order(&g, &cfg), hybrid_multiscale_order(&g, &cfg));
    }
}
