//! Rabbit Order (paper §III-D, Arai et al. \[1\]): community detection by
//! incremental aggregation, followed by hierarchical DFS numbering.
//!
//! Vertices are scanned in increasing degree order; each is merged into the
//! neighboring community with the largest (positive) modularity gain,
//! building a dendrogram of merges. Ranks are then assigned by depth-first
//! traversal of each dendrogram tree, so vertices merged together early —
//! the tightest sub-communities — receive the closest ids, mapping the
//! community hierarchy onto the cache hierarchy.

use reorderlab_graph::{Csr, Permutation, UnionFind};
use std::collections::HashMap;

/// Computes a Rabbit Order permutation.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::rabbit_order;
/// use reorderlab_datasets::clique_chain;
///
/// let g = clique_chain(3, 6);
/// let pi = rabbit_order(&g);
/// // Each planted clique occupies a contiguous rank range.
/// let ranks: Vec<u32> = (0..6).map(|v| pi.rank(v)).collect();
/// assert!(ranks.iter().max().unwrap() - ranks.iter().min().unwrap() == 5);
/// ```
pub fn rabbit_order(graph: &Csr) -> Permutation {
    let n = graph.num_vertices();
    if n == 0 {
        return Permutation::identity(0);
    }
    // Degree sums for modularity gain; self loops weighted like Louvain.
    let mut k = vec![0.0f64; n];
    for v in 0..n as u32 {
        for (u, w) in graph.weighted_neighbors(v) {
            k[v as usize] += if u == v { 2.0 * w } else { w };
        }
    }
    let m2: f64 = k.iter().sum();

    let mut uf = UnionFind::new(n);
    // Community volume, indexed by union-find root.
    let mut tot = k.clone();
    // Dendrogram: tree_root[uf_root] = vertex id that is the tree root of
    // that community; children[v] = sub-roots merged under v.
    let mut tree_root: Vec<u32> = (0..n as u32).collect();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];

    // Scan in increasing degree order (ties by id), the Rabbit schedule.
    let mut scan: Vec<u32> = (0..n as u32).collect();
    scan.sort_by_key(|&v| (graph.degree(v), v));

    let mut wsum: HashMap<u32, f64> = HashMap::new();
    for &v in &scan {
        let a = uf.find(v);
        // Aggregate edge weight from v toward each neighboring community.
        wsum.clear();
        for (u, w) in graph.weighted_neighbors(v) {
            if u == v {
                continue;
            }
            let b = uf.find(u);
            if b != a {
                *wsum.entry(b).or_insert(0.0) += w;
            }
        }
        // Best positive modularity merge gain:
        //   ΔQ(a, b) = 2 [ w_ab / 2m − tot_a · tot_b / (2m)² ]
        let mut best: Option<(f64, u32)> = None;
        for (&b, &w_ab) in wsum.iter() {
            let gain = 2.0 * (w_ab / m2 - tot[a as usize] * tot[b as usize] / (m2 * m2));
            if gain > 1e-15 {
                let better = match best {
                    None => true,
                    Some((bg, bb)) => gain > bg + 1e-18 || (gain >= bg - 1e-18 && b < bb),
                };
                if better {
                    best = Some((gain, b));
                }
            }
        }
        if let Some((_, b)) = best {
            let (ra, rb) = (tree_root[a as usize], tree_root[b as usize]);
            let merged_tot = tot[a as usize] + tot[b as usize];
            uf.union(a, b);
            let new_root = uf.find(a);
            tot[new_root as usize] = merged_tot;
            // v's community tree hangs under the absorbing community's root.
            children[rb as usize].push(ra);
            tree_root[new_root as usize] = rb;
        }
    }

    // DFS numbering: every final community is one dendrogram tree; traverse
    // each tree (roots in increasing id order) emitting vertices preorder.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut is_root = vec![false; n];
    for v in 0..n as u32 {
        let r = uf.find(v);
        is_root[tree_root[r as usize] as usize] = true;
    }
    let mut stack: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        if !is_root[v as usize] {
            continue;
        }
        stack.push(v);
        while let Some(x) = stack.pop() {
            order.push(x);
            // Children pushed in reverse so earlier merges are visited
            // first (they are the tighter sub-communities).
            for &c in children[x as usize].iter().rev() {
                stack.push(c);
            }
        }
    }
    Permutation::from_order(&order).expect("dendrogram DFS covers every vertex once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::gap_measures;
    use crate::schemes::random_order;
    use reorderlab_datasets::{barabasi_albert, clique_chain, grid2d, path};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn valid_permutation() {
        let g = barabasi_albert(300, 3, 11);
        let pi = rabbit_order(&g);
        assert!(Permutation::from_ranks(pi.ranks().to_vec()).is_ok());
    }

    #[test]
    fn planted_cliques_are_contiguous() {
        let g = clique_chain(5, 7);
        let pi = rabbit_order(&g);
        for c in 0..5u32 {
            let ranks: Vec<u32> = (0..7).map(|i| pi.rank(c * 7 + i)).collect();
            let span = ranks.iter().max().unwrap() - ranks.iter().min().unwrap();
            assert_eq!(span, 6, "clique {c} must occupy a contiguous range");
        }
    }

    #[test]
    fn improves_avg_gap_over_random_on_shuffled_grid() {
        let g0 = grid2d(12, 12);
        let g = g0.permuted(&random_order(&g0, 17)).unwrap();
        let rabbit = gap_measures(&g, &rabbit_order(&g)).avg_gap;
        let random = gap_measures(&g, &random_order(&g, 4)).avg_gap;
        assert!(rabbit < random, "rabbit {rabbit} vs random {random}");
    }

    #[test]
    fn handles_disconnected_graph() {
        let g =
            GraphBuilder::undirected(9).edges([(0, 1), (1, 2), (4, 5), (7, 8)]).build().unwrap();
        let pi = rabbit_order(&g);
        assert_eq!(pi.len(), 9);
    }

    #[test]
    fn deterministic() {
        let g = barabasi_albert(150, 2, 3);
        assert_eq!(rabbit_order(&g), rabbit_order(&g));
    }

    #[test]
    fn path_stays_local() {
        let g = path(40);
        let m = gap_measures(&g, &rabbit_order(&g));
        assert!(m.avg_gap < 6.0, "path under rabbit should stay local, ξ̂ = {}", m.avg_gap);
    }

    #[test]
    fn tiny_graphs() {
        let g0 = GraphBuilder::undirected(0).build().unwrap();
        assert!(rabbit_order(&g0).is_empty());
        let g1 = GraphBuilder::undirected(1).build().unwrap();
        assert!(rabbit_order(&g1).is_identity());
        let g2 = GraphBuilder::undirected(2).edge(0, 1).build().unwrap();
        assert_eq!(rabbit_order(&g2).len(), 2);
    }

    #[test]
    fn edgeless_graph_identity() {
        let g = GraphBuilder::undirected(5).build().unwrap();
        assert!(rabbit_order(&g).is_identity());
    }
}
