//! Rabbit Order (paper §III-D, Arai et al. \[1\]): community detection by
//! incremental aggregation, followed by hierarchical DFS numbering.
//!
//! Vertices are scanned in increasing degree order; each is merged into the
//! neighboring community with the largest (positive) modularity gain,
//! building a dendrogram of merges. Ranks are then assigned by depth-first
//! traversal of each dendrogram tree, so vertices merged together early —
//! the tightest sub-communities — receive the closest ids, mapping the
//! community hierarchy onto the cache hierarchy.
//!
//! Neighbor-community weights are aggregated with an epoch-stamped scatter
//! array in *first-touch (adjacency) order* rather than a `HashMap`. Besides
//! being faster, this removes a latent nondeterminism: the merge tie-break
//! compares gains within an epsilon, so the candidate iteration order is
//! observable, and `std::collections::HashMap` iterates in a per-process
//! randomized order. The scan itself is parallelized speculatively: fixed
//! 512-vertex batches propose merges against a snapshot of the union-find in
//! parallel, and a serial commit replays proposals in scan order, recomputing
//! any proposal whose community footprint changed inside the batch.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use rayon::prelude::*;
use reorderlab_graph::{Csr, Permutation, UnionFind};

/// Speculative batch length. A constant (not derived from the worker count)
/// so the propose/validate/recompute cadence — and therefore every merge
/// decision — is identical at any thread count.
const BATCH: usize = 512;

/// Scatter scratch for aggregating edge weight per neighboring community.
struct WsumScratch {
    acc: Vec<f64>,
    stamp: Vec<u64>,
    epoch: u64,
    touched: Vec<u32>,
}

impl WsumScratch {
    fn new(n: usize) -> Self {
        WsumScratch { acc: vec![0.0; n], stamp: vec![0; n], epoch: 0, touched: Vec::new() }
    }
}

/// A speculative merge proposal for one scanned vertex: the community it
/// was in, the volumes read for the gain computation, and the chosen merge
/// target (if any). The recorded `(root, volume)` pairs double as the
/// validation footprint — any merge involving one of these communities
/// either de-roots it or strictly increases its volume, so bitwise-equal
/// volumes at commit time prove the proposal is still exact.
struct Proposal {
    a: u32,
    tot_a: f64,
    nbr: Vec<(u32, f64)>,
    best: Option<u32>,
}

/// Computes vertex `v`'s merge proposal against the current community
/// state. Candidate communities are visited in first-touch (adjacency)
/// order, which fixes the epsilon tie-break order deterministically.
fn propose(
    graph: &Csr,
    v: u32,
    uf: &UnionFind,
    tot: &[f64],
    m2: f64,
    s: &mut WsumScratch,
) -> Proposal {
    let a = uf.root(v);
    s.epoch += 1;
    s.touched.clear();
    for (u, w) in graph.weighted_neighbors(v) {
        if u == v {
            continue;
        }
        let b = uf.root(u);
        if b == a {
            continue;
        }
        if s.stamp[b as usize] != s.epoch {
            s.stamp[b as usize] = s.epoch;
            s.acc[b as usize] = w;
            s.touched.push(b);
        } else {
            s.acc[b as usize] += w;
        }
    }
    // Best positive modularity merge gain:
    //   ΔQ(a, b) = 2 [ w_ab / 2m − tot_a · tot_b / (2m)² ]
    let mut best: Option<(f64, u32)> = None;
    let mut nbr = Vec::with_capacity(s.touched.len());
    for &b in &s.touched {
        let tot_b = tot[b as usize];
        nbr.push((b, tot_b));
        let gain = 2.0 * (s.acc[b as usize] / m2 - tot[a as usize] * tot_b / (m2 * m2));
        if gain > 1e-15 {
            let better = match best {
                None => true,
                Some((bg, bb)) => gain > bg + 1e-18 || (gain >= bg - 1e-18 && b < bb),
            };
            if better {
                best = Some((gain, b));
            }
        }
    }
    Proposal { a, tot_a: tot[a as usize], nbr, best: best.map(|(_, b)| b) }
}

/// Whether `p` still describes the current state: its source community and
/// every candidate community must still be a root with a bitwise-unchanged
/// volume. Merges strictly grow the surviving root's volume (both sides of
/// a positive-gain merge have positive volume), so any intervening merge
/// involving these communities is detected.
fn still_valid(p: &Proposal, uf: &UnionFind, tot: &[f64]) -> bool {
    uf.root(p.a) == p.a
        && tot[p.a as usize] == p.tot_a
        && p.nbr.iter().all(|&(b, tb)| uf.root(b) == b && tot[b as usize] == tb)
}

/// Merges `v`'s community into community `b`, maintaining the dendrogram.
fn merge_into(
    v: u32,
    b: u32,
    uf: &mut UnionFind,
    tot: &mut [f64],
    tree_root: &mut [u32],
    children: &mut [Vec<u32>],
) {
    let a = uf.find(v);
    let (ra, rb) = (tree_root[a as usize], tree_root[b as usize]);
    let merged_tot = tot[a as usize] + tot[b as usize];
    uf.union(a, b);
    let new_root = uf.find(a);
    tot[new_root as usize] = merged_tot;
    // v's community tree hangs under the absorbing community's root.
    children[rb as usize].push(ra);
    tree_root[new_root as usize] = rb;
}

/// DFS numbering: every final community is one dendrogram tree; traverse
/// each tree (roots in increasing id order) emitting vertices preorder.
fn dendrogram_order(
    n: usize,
    uf: &UnionFind,
    tree_root: &[u32],
    children: &[Vec<u32>],
) -> Permutation {
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut is_root = vec![false; n];
    for v in 0..n as u32 {
        let r = uf.root(v);
        is_root[tree_root[r as usize] as usize] = true;
    }
    let mut stack: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        if !is_root[v as usize] {
            continue;
        }
        stack.push(v);
        while let Some(x) = stack.pop() {
            order.push(x);
            // Children pushed in reverse so earlier merges are visited
            // first (they are the tighter sub-communities).
            for &c in children[x as usize].iter().rev() {
                stack.push(c);
            }
        }
    }
    super::order_permutation(&order)
}

/// Shared setup: Louvain-style degree sums, their total, and the
/// increasing-degree scan schedule.
fn rabbit_setup(graph: &Csr) -> (Vec<f64>, f64, Vec<u32>) {
    let n = graph.num_vertices();
    let mut k = vec![0.0f64; n];
    for v in 0..n as u32 {
        for (u, w) in graph.weighted_neighbors(v) {
            k[v as usize] += if u == v { 2.0 * w } else { w };
        }
    }
    let m2: f64 = k.iter().sum();
    let mut scan: Vec<u32> = (0..n as u32).collect();
    scan.sort_unstable_by_key(|&v| ((graph.degree(v) as u64) << 32) | u64::from(v));
    (k, m2, scan)
}

/// Computes a Rabbit Order permutation.
///
/// The aggregation scan proposes merges for fixed-size batches in parallel
/// and commits them serially in scan order, falling back to an in-place
/// recomputation whenever an earlier commit in the batch touched a
/// proposal's communities. Bit-identical to [`rabbit_order_serial`] at any
/// thread count.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::rabbit_order;
/// use reorderlab_datasets::clique_chain;
///
/// let g = clique_chain(3, 6);
/// let pi = rabbit_order(&g);
/// // Each planted clique occupies a contiguous rank range.
/// let ranks: Vec<u32> = (0..6).map(|v| pi.rank(v)).collect();
/// assert!(ranks.iter().max().unwrap() - ranks.iter().min().unwrap() == 5);
/// ```
pub fn rabbit_order(graph: &Csr) -> Permutation {
    let n = graph.num_vertices();
    if n == 0 {
        return Permutation::identity(0);
    }
    let (k, m2, scan) = rabbit_setup(graph);
    let mut uf = UnionFind::new(n);
    let mut tot = k;
    let mut tree_root: Vec<u32> = (0..n as u32).collect();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];

    let mut scratch = WsumScratch::new(n);
    let speculate = rayon::current_num_threads() > 1;
    for batch in scan.chunks(BATCH) {
        let proposals: Vec<Proposal> = if speculate {
            let uf_ref = &uf;
            let tot_ref = &tot;
            batch
                .par_iter()
                .map_init(|| WsumScratch::new(n), |s, &v| propose(graph, v, uf_ref, tot_ref, m2, s))
                .collect()
        } else {
            Vec::new()
        };
        for (j, &v) in batch.iter().enumerate() {
            let best = if speculate && still_valid(&proposals[j], &uf, &tot) {
                proposals[j].best
            } else {
                // State moved under the proposal (or we're single-threaded):
                // recompute against live state — the serial semantics.
                propose(graph, v, &uf, &tot, m2, &mut scratch).best
            };
            if let Some(b) = best {
                merge_into(v, b, &mut uf, &mut tot, &mut tree_root, &mut children);
            }
        }
    }
    dendrogram_order(n, &uf, &tree_root, &children)
}

/// Reference serial implementation of [`rabbit_order`]: one propose/commit
/// per vertex in scan order, no speculation. Retained as the property-test
/// oracle and bench baseline for the batched parallel scan.
pub fn rabbit_order_serial(graph: &Csr) -> Permutation {
    let n = graph.num_vertices();
    if n == 0 {
        return Permutation::identity(0);
    }
    let (k, m2, scan) = rabbit_setup(graph);
    let mut uf = UnionFind::new(n);
    let mut tot = k;
    let mut tree_root: Vec<u32> = (0..n as u32).collect();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];

    let mut scratch = WsumScratch::new(n);
    for &v in &scan {
        let p = propose(graph, v, &uf, &tot, m2, &mut scratch);
        if let Some(b) = p.best {
            merge_into(v, b, &mut uf, &mut tot, &mut tree_root, &mut children);
        }
    }
    dendrogram_order(n, &uf, &tree_root, &children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::gap_measures;
    use crate::schemes::random_order;
    use reorderlab_datasets::{barabasi_albert, clique_chain, grid2d, path};
    use reorderlab_graph::GraphBuilder;

    #[test]
    fn valid_permutation() {
        let g = barabasi_albert(300, 3, 11);
        let pi = rabbit_order(&g);
        assert!(Permutation::from_ranks(pi.ranks().to_vec()).is_ok());
    }

    #[test]
    fn planted_cliques_are_contiguous() {
        let g = clique_chain(5, 7);
        let pi = rabbit_order(&g);
        for c in 0..5u32 {
            let ranks: Vec<u32> = (0..7).map(|i| pi.rank(c * 7 + i)).collect();
            let span = ranks.iter().max().unwrap() - ranks.iter().min().unwrap();
            assert_eq!(span, 6, "clique {c} must occupy a contiguous range");
        }
    }

    #[test]
    fn improves_avg_gap_over_random_on_shuffled_grid() {
        let g0 = grid2d(12, 12);
        let g = g0.permuted(&random_order(&g0, 17)).unwrap();
        let rabbit = gap_measures(&g, &rabbit_order(&g)).avg_gap;
        let random = gap_measures(&g, &random_order(&g, 4)).avg_gap;
        assert!(rabbit < random, "rabbit {rabbit} vs random {random}");
    }

    #[test]
    fn handles_disconnected_graph() {
        let g =
            GraphBuilder::undirected(9).edges([(0, 1), (1, 2), (4, 5), (7, 8)]).build().unwrap();
        let pi = rabbit_order(&g);
        assert_eq!(pi.len(), 9);
    }

    #[test]
    fn deterministic() {
        let g = barabasi_albert(150, 2, 3);
        assert_eq!(rabbit_order(&g), rabbit_order(&g));
    }

    #[test]
    fn path_stays_local() {
        let g = path(40);
        let m = gap_measures(&g, &rabbit_order(&g));
        assert!(m.avg_gap < 6.0, "path under rabbit should stay local, ξ̂ = {}", m.avg_gap);
    }

    #[test]
    fn tiny_graphs() {
        let g0 = GraphBuilder::undirected(0).build().unwrap();
        assert!(rabbit_order(&g0).is_empty());
        let g1 = GraphBuilder::undirected(1).build().unwrap();
        assert!(rabbit_order(&g1).is_identity());
        let g2 = GraphBuilder::undirected(2).edge(0, 1).build().unwrap();
        assert_eq!(rabbit_order(&g2).len(), 2);
    }

    #[test]
    fn edgeless_graph_identity() {
        let g = GraphBuilder::undirected(5).build().unwrap();
        assert!(rabbit_order(&g).is_identity());
    }

    #[test]
    fn batch_spanning_scan_matches_serial() {
        // More vertices than one speculative batch so cross-batch state
        // carries over.
        let g = barabasi_albert(2 * BATCH + 77, 3, 5);
        assert_eq!(rabbit_order(&g), rabbit_order_serial(&g));
    }
}
