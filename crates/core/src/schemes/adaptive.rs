//! The `Adaptive` meta-scheme: pick a lightweight ordering from cheap
//! structural features, GraphBrew's `AdaptiveOrder` recast over this
//! crate's scheme registry.
//!
//! The decision is a fixed-threshold tree over integer-valued features, in
//! evaluation order:
//!
//! 1. an empty or edgeless graph keeps its natural order;
//! 2. **degree skew** `max_degree / mean_degree ≥ 3` → [`hub_sort_dbg_order`]
//!    (hub-dominated, social/web-like);
//! 3. **clustering** `3·triangles ≥ edges` *and* **community strength**
//!    (Louvain modularity `≥ 0.3`) → [`comm_order`] with BFS intra-order
//!    (community-dominated);
//! 4. **diameter class** `diameter² ≥ n` via the double-sweep BFS bound →
//!    [`rcm_order`] (long-and-thin, mesh/road-like);
//! 5. otherwise → [`dbg_order`] (low-skew, low-structure fallback).
//!
//! Every feature is computed in integers or bit-stable f64 reductions, so
//! the choice is a pure function of the graph: deterministic across thread
//! counts, chaos schedules, and recorder presence. Features are evaluated
//! lazily — a rule that fires short-circuits the remaining features, which
//! then report as zero in the [`AdaptiveDecision`] trail.

use super::basic::natural_order;
use super::comm::{comm_order_recorded, comm_order_serial, CommIntra};
use super::lightweight::{
    dbg_order_recorded, dbg_order_serial, hub_sort_dbg_order_recorded, hub_sort_dbg_order_serial,
};
use super::rcm::{rcm_order_recorded, rcm_order_serial};
use reorderlab_community::{louvain, LouvainConfig};
use reorderlab_graph::{approx_diameter, count_triangles, Csr, Permutation};
use reorderlab_trace::{NoopRecorder, Recorder};

/// Degree-skew threshold (×1000): fire the hub rule at 3× mean degree.
const SKEW_THRESHOLD_X1000: u64 = 3000;
/// Clustering threshold (×1000): fire when each edge carries ⅓ triangle.
const TRIANGLE_THRESHOLD_X1000: u64 = 1000;
/// Modularity threshold (×1000): Louvain Q ≥ 0.3 counts as community-strong.
const MODULARITY_THRESHOLD_X1000: u64 = 300;

/// The scheme [`adaptive_order`] delegates to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveChoice {
    /// Empty or edgeless graph: nothing to optimize.
    Natural,
    /// Hub-dominated degree distribution.
    HubSortDbg,
    /// Strong clustering and community structure.
    CommBfs,
    /// Long-and-thin (mesh/road-like) topology.
    Rcm,
    /// Low-skew, low-structure fallback.
    Dbg,
}

impl AdaptiveChoice {
    /// The chosen scheme's canonical spec string, as recorded in the
    /// manifest note `adaptive/choice`.
    pub fn spec(self) -> &'static str {
        match self {
            AdaptiveChoice::Natural => "natural",
            AdaptiveChoice::HubSortDbg => "hubsort-dbg",
            AdaptiveChoice::CommBfs => "comm-bfs",
            AdaptiveChoice::Rcm => "rcm",
            AdaptiveChoice::Dbg => "dbg",
        }
    }
}

/// The recorded decision trail of one [`adaptive_order`] run: the feature
/// values (fixed-point ×1000 where fractional) and the winning scheme.
/// Features past the rule that fired are not computed and report zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveDecision {
    /// `max_degree · 1000 / mean_degree`; 0 on empty/edgeless graphs.
    pub skew_x1000: u64,
    /// `3 · triangles · 1000 / edges`; 0 when not evaluated.
    pub triangle_rate_x1000: u64,
    /// Louvain modularity ×1000, clamped at 0; 0 when not evaluated.
    pub modularity_x1000: u64,
    /// Double-sweep BFS diameter lower bound; 0 when not evaluated.
    pub diameter: usize,
    /// The scheme the tree selected.
    pub choice: AdaptiveChoice,
}

/// Evaluates the decision tree without computing the permutation.
/// Deterministic: a pure function of the graph.
pub fn adaptive_decide(graph: &Csr) -> AdaptiveDecision {
    let n = graph.num_vertices();
    let m = graph.num_arcs();
    let mut d = AdaptiveDecision {
        skew_x1000: 0,
        triangle_rate_x1000: 0,
        modularity_x1000: 0,
        diameter: 0,
        choice: AdaptiveChoice::Natural,
    };
    if n == 0 || m == 0 {
        return d;
    }
    // skew = max_degree / (m / n), in ×1000 fixed point; u128 keeps the
    // product exact for any u32-bounded vertex count.
    d.skew_x1000 = clamp_u64(graph.max_degree() as u128 * 1000 * n as u128 / m as u128);
    if d.skew_x1000 >= SKEW_THRESHOLD_X1000 {
        d.choice = AdaptiveChoice::HubSortDbg;
        return d;
    }
    let edges = graph.num_edges();
    if edges > 0 {
        d.triangle_rate_x1000 =
            clamp_u64(u128::from(count_triangles(graph)) * 3000 / edges as u128);
    }
    if d.triangle_rate_x1000 >= TRIANGLE_THRESHOLD_X1000 {
        let q = louvain(graph, &LouvainConfig::default()).modularity;
        if q > 0.0 {
            d.modularity_x1000 = (q * 1000.0) as u64;
        }
        if d.modularity_x1000 >= MODULARITY_THRESHOLD_X1000 {
            d.choice = AdaptiveChoice::CommBfs;
            return d;
        }
    }
    d.diameter = approx_diameter(graph);
    d.choice = if (d.diameter as u128) * (d.diameter as u128) >= n as u128 {
        AdaptiveChoice::Rcm
    } else {
        AdaptiveChoice::Dbg
    };
    d
}

fn clamp_u64(x: u128) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// Adaptive ordering: run [`adaptive_decide`] and delegate to the chosen
/// scheme's parallel kernel.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::{adaptive_decide, adaptive_order, AdaptiveChoice};
/// use reorderlab_datasets::grid2d;
///
/// let g = grid2d(16, 16);
/// assert_eq!(adaptive_decide(&g).choice, AdaptiveChoice::Rcm);
/// assert_eq!(adaptive_order(&g).len(), 256);
/// ```
pub fn adaptive_order(graph: &Csr) -> Permutation {
    adaptive_order_recorded(graph, &mut NoopRecorder)
}

/// [`adaptive_order`] with the decision trail folded into `rec`: counters
/// `adaptive/skew_x1000`, `adaptive/triangle_rate_x1000`,
/// `adaptive/modularity_x1000`, and `adaptive/diameter` hold the feature
/// values, the note `adaptive/choice` names the chosen scheme's spec, and
/// the chosen scheme's own recorded kernel runs underneath. The recorder
/// only observes — output is bit-identical to [`adaptive_order`].
pub fn adaptive_order_recorded(graph: &Csr, rec: &mut dyn Recorder) -> Permutation {
    let d = adaptive_decide(graph);
    rec.counter("adaptive/skew_x1000", d.skew_x1000);
    rec.counter("adaptive/triangle_rate_x1000", d.triangle_rate_x1000);
    rec.counter("adaptive/modularity_x1000", d.modularity_x1000);
    rec.counter("adaptive/diameter", d.diameter as u64);
    rec.note("adaptive/choice", d.choice.spec());
    match d.choice {
        AdaptiveChoice::Natural => natural_order(graph),
        AdaptiveChoice::HubSortDbg => hub_sort_dbg_order_recorded(graph, rec),
        AdaptiveChoice::CommBfs => comm_order_recorded(graph, CommIntra::Bfs, rec),
        AdaptiveChoice::Rcm => rcm_order_recorded(graph, rec),
        AdaptiveChoice::Dbg => dbg_order_recorded(graph, rec),
    }
}

/// Reference serial implementation of [`adaptive_order`]: the same decision
/// (which is thread-invariant) dispatched to the chosen scheme's serial
/// oracle. Retained as the property-test oracle.
pub fn adaptive_order_serial(graph: &Csr) -> Permutation {
    match adaptive_decide(graph).choice {
        AdaptiveChoice::Natural => natural_order(graph),
        AdaptiveChoice::HubSortDbg => hub_sort_dbg_order_serial(graph),
        AdaptiveChoice::CommBfs => comm_order_serial(graph, CommIntra::Bfs),
        AdaptiveChoice::Rcm => rcm_order_serial(graph),
        AdaptiveChoice::Dbg => dbg_order_serial(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{barabasi_albert, clique_chain, erdos_renyi_gnm, grid2d, star};
    use reorderlab_graph::GraphBuilder;
    use reorderlab_trace::RunRecorder;

    #[test]
    fn pins_choice_on_structurally_distinct_graphs() {
        // Hub-dominated: preferential attachment and a star.
        assert_eq!(adaptive_decide(&barabasi_albert(300, 3, 5)).choice, AdaptiveChoice::HubSortDbg);
        assert_eq!(adaptive_decide(&star(64)).choice, AdaptiveChoice::HubSortDbg);
        // Community-dominated: a chain of cliques.
        assert_eq!(adaptive_decide(&clique_chain(8, 8)).choice, AdaptiveChoice::CommBfs);
        // Long-and-thin mesh.
        assert_eq!(adaptive_decide(&grid2d(16, 16)).choice, AdaptiveChoice::Rcm);
        // Empty and edgeless graphs keep natural order.
        let g0 = GraphBuilder::undirected(0).build().unwrap();
        let g5 = GraphBuilder::undirected(5).build().unwrap();
        assert_eq!(adaptive_decide(&g0).choice, AdaptiveChoice::Natural);
        assert_eq!(adaptive_decide(&g5).choice, AdaptiveChoice::Natural);
    }

    #[test]
    fn decision_is_deterministic() {
        for g in [barabasi_albert(200, 2, 9), grid2d(10, 10), clique_chain(5, 6)] {
            assert_eq!(adaptive_decide(&g), adaptive_decide(&g));
        }
    }

    #[test]
    fn order_matches_chosen_scheme_and_serial_oracle() {
        use crate::schemes::{hub_sort_dbg_order, rcm_order};
        let ba = barabasi_albert(300, 3, 5);
        assert_eq!(adaptive_order(&ba), hub_sort_dbg_order(&ba));
        let grid = grid2d(16, 16);
        assert_eq!(adaptive_order(&grid), rcm_order(&grid));
        for g in [ba, grid, clique_chain(8, 8), erdos_renyi_gnm(120, 700, 3)] {
            assert_eq!(adaptive_order(&g), adaptive_order_serial(&g));
        }
    }

    #[test]
    fn recorded_variant_reports_the_decision_trail() {
        let g = grid2d(16, 16);
        let mut rec = RunRecorder::new();
        assert_eq!(adaptive_order_recorded(&g, &mut rec), adaptive_order(&g));
        assert_eq!(rec.notes()["adaptive/choice"], "rcm");
        assert!(rec.counters()["adaptive/diameter"] >= 16, "double-sweep bound on a 16×16 grid");
        assert!(rec.counters()["adaptive/skew_x1000"] < SKEW_THRESHOLD_X1000);
        // The delegated scheme's own instrumentation runs underneath.
        assert!(rec.counters().contains_key("rcm/components"));
    }

    #[test]
    fn skew_fires_before_expensive_features() {
        let d = adaptive_decide(&star(64));
        assert!(d.skew_x1000 >= SKEW_THRESHOLD_X1000);
        assert_eq!(d.triangle_rate_x1000, 0, "short-circuited features report zero");
        assert_eq!(d.diameter, 0);
    }
}
