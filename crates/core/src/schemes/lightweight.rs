//! Degree-Based Grouping and its hub-aware refinements (Faldu et al.,
//! "A Closer Look at Lightweight Graph Reordering"): DBG, HubSortDBG, and
//! HubClusterDBG.
//!
//! These near-linear-time schemes trade the precision of a full degree sort
//! for locality preservation: vertices are grouped into power-of-two degree
//! buckets (⌊log₂(d+1)⌋) emitted hottest-first, and within a bucket the
//! input order survives, so structure already present in the natural order
//! (crawl order, community blocks) is not destroyed. The two refinements
//! re-introduce hub precision where it pays: HubSortDBG degree-sorts the
//! hub vertices inside each bucket, HubClusterDBG keeps only the hub/cold
//! split and groups just the hubs by bucket.
//!
//! All three reduce to one composite per-vertex sort key, so the parallel
//! kernel (parallel key computation + per-group parallel ordering) and the
//! serial oracle (one stable global sort) agree bit-for-bit by construction
//! at any thread count.

use super::degree::hub_threshold;
use rayon::prelude::*;
use reorderlab_graph::{Csr, Permutation};
use reorderlab_trace::{NoopRecorder, Recorder};

/// The three members of the DBG family, folded over one key function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DbgVariant {
    /// Power-of-two degree buckets, hottest bucket first, natural order
    /// within a bucket.
    Plain,
    /// DBG buckets with the hubs of each bucket pulled to its front in
    /// non-increasing degree order; non-hub members keep natural order.
    HubSort,
    /// Hubs grouped by degree bucket (hottest first, natural within), all
    /// cold vertices following as one natural-order block.
    HubCluster,
}

/// Bits reserved below the group id for the intra-group sub-key.
const SUB_BITS: u32 = 33;
/// Degree buckets fit `0..=63` for any `usize` degree; subtracting from 63
/// makes hotter buckets sort first.
const HOTTEST: u64 = 63;
/// Group id of HubClusterDBG's cold block — after every hub bucket.
const COLD_GROUP: u64 = HOTTEST + 1;
/// Sub-key placing a bucket's non-hub members after its hubs (every hub
/// sub-key is a `u32`-bounded inverted degree, strictly below this).
const NON_HUB: u64 = 1 << 32;

/// Power-of-two degree bucket: `⌊log₂(d+1)⌋`, so isolated vertices land in
/// bucket 0 and each bucket spans one doubling of degree.
fn degree_bucket(degree: usize) -> u64 {
    u64::from((degree + 1).ilog2())
}

/// The composite sort key of `v` under `variant`: high bits select the
/// emission group, low bits the intra-group refinement; ties are broken by
/// vertex id at the sort sites, preserving natural order.
fn group_key(variant: DbgVariant, degree: usize, threshold: f64) -> u64 {
    let bucket_group = (HOTTEST - degree_bucket(degree)) << SUB_BITS;
    let is_hub = degree as f64 > threshold;
    match variant {
        DbgVariant::Plain => bucket_group,
        DbgVariant::HubSort => {
            if is_hub {
                // Inverted degree sorts hubs hottest-first within the
                // bucket; degree ≤ u32::MAX by the Csr invariant, so the
                // sub-key stays below NON_HUB.
                bucket_group | (u64::from(u32::MAX) - degree as u64)
            } else {
                bucket_group | NON_HUB
            }
        }
        DbgVariant::HubCluster => {
            if is_hub {
                bucket_group
            } else {
                COLD_GROUP << SUB_BITS
            }
        }
    }
}

/// Shared kernel: parallel per-vertex keys, group-major scatter in natural
/// order, parallel per-group refinement, then concatenation in group order.
fn lightweight_order(graph: &Csr, variant: DbgVariant, rec: &mut dyn Recorder) -> Permutation {
    let n = graph.num_vertices();
    let threshold = hub_threshold(graph);
    let ids: Vec<u32> = graph.vertices().collect();
    // Order-preserving parallel collect: keys[i] belongs to vertex ids[i].
    let keys: Vec<u64> = (0..n)
        .into_par_iter()
        .map(|i| group_key(variant, graph.degree(ids[i]), threshold))
        .collect();

    // Scatter vertices group-major; the natural scan order makes every
    // group's member list id-ascending.
    let group_count = usize::try_from(COLD_GROUP).unwrap_or(usize::MAX) + 1;
    let mut groups: Vec<Vec<(u64, u32)>> = vec![Vec::new(); group_count];
    for (i, &v) in ids.iter().enumerate() {
        groups[usize::try_from(keys[i] >> SUB_BITS).unwrap_or(0)].push((keys[i], v));
    }
    rec.counter("dbg/groups", groups.iter().filter(|g| !g.is_empty()).count() as u64);
    rec.counter(
        "dbg/hubs",
        ids.iter().filter(|&&v| graph.degree(v) as f64 > threshold).count() as u64,
    );

    // Groups are independent: refine each in parallel (the per-group sort
    // keys are total with the id tiebreak), concatenate in group order.
    let refined: Vec<Vec<u32>> = groups
        .into_par_iter()
        .map(|mut members| {
            members.sort_unstable_by_key(|&(k, v)| (k, v));
            members.into_iter().map(|(_, v)| v).collect()
        })
        .collect();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for group in &refined {
        order.extend_from_slice(group);
    }
    super::order_permutation(&order)
}

/// The serial oracle shared by the family: one stable global sort by
/// `(composite key, id)`. The parallel kernel partitions by the key's group
/// bits and refines with the same comparator, so both paths agree
/// bit-for-bit.
fn lightweight_order_serial(graph: &Csr, variant: DbgVariant) -> Permutation {
    let threshold = hub_threshold(graph);
    let mut order: Vec<u32> = graph.vertices().collect();
    order.sort_by_key(|&v| (group_key(variant, graph.degree(v), threshold), v));
    super::order_permutation(&order)
}

/// Degree-Based Grouping: power-of-two degree buckets emitted hottest
/// first, natural order within each bucket.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::dbg_order;
/// use reorderlab_datasets::star;
///
/// let g = star(9); // hub 0 (degree 8) + 8 leaves (degree 1)
/// let pi = dbg_order(&g);
/// assert_eq!(pi.rank(0), 0, "the hub bucket is emitted first");
/// assert_eq!(pi.rank(1), 1, "leaves keep natural order");
/// ```
pub fn dbg_order(graph: &Csr) -> Permutation {
    dbg_order_recorded(graph, &mut NoopRecorder)
}

/// [`dbg_order`] with instrumentation: `dbg/groups` counts the non-empty
/// degree buckets. The recorder only observes — output is bit-identical to
/// [`dbg_order`].
pub fn dbg_order_recorded(graph: &Csr, rec: &mut dyn Recorder) -> Permutation {
    lightweight_order(graph, DbgVariant::Plain, rec)
}

/// Reference serial implementation of [`dbg_order`]: one stable sort by
/// `(bucket, id)`. Retained as the property-test oracle.
pub fn dbg_order_serial(graph: &Csr) -> Permutation {
    lightweight_order_serial(graph, DbgVariant::Plain)
}

/// HubSortDBG: DBG buckets, with each bucket's hubs (degree above the mean)
/// pulled to the bucket front in non-increasing degree order; non-hub
/// members keep natural order behind them.
pub fn hub_sort_dbg_order(graph: &Csr) -> Permutation {
    hub_sort_dbg_order_recorded(graph, &mut NoopRecorder)
}

/// [`hub_sort_dbg_order`] with instrumentation: `dbg/groups` and `dbg/hubs`
/// counters. The recorder only observes.
pub fn hub_sort_dbg_order_recorded(graph: &Csr, rec: &mut dyn Recorder) -> Permutation {
    lightweight_order(graph, DbgVariant::HubSort, rec)
}

/// Reference serial implementation of [`hub_sort_dbg_order`].
pub fn hub_sort_dbg_order_serial(graph: &Csr) -> Permutation {
    lightweight_order_serial(graph, DbgVariant::HubSort)
}

/// HubClusterDBG: the hub/cold split of Hub Clustering with DBG's bucket
/// grouping applied to the hubs only — hubs hottest-bucket-first (natural
/// within a bucket), then every cold vertex in one natural-order block.
pub fn hub_cluster_dbg_order(graph: &Csr) -> Permutation {
    hub_cluster_dbg_order_recorded(graph, &mut NoopRecorder)
}

/// [`hub_cluster_dbg_order`] with instrumentation: `dbg/groups` and
/// `dbg/hubs` counters. The recorder only observes.
pub fn hub_cluster_dbg_order_recorded(graph: &Csr, rec: &mut dyn Recorder) -> Permutation {
    lightweight_order(graph, DbgVariant::HubCluster, rec)
}

/// Reference serial implementation of [`hub_cluster_dbg_order`].
pub fn hub_cluster_dbg_order_serial(graph: &Csr) -> Permutation {
    lightweight_order_serial(graph, DbgVariant::HubCluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorderlab_datasets::{barabasi_albert, cycle, star};
    use reorderlab_graph::GraphBuilder;
    use reorderlab_trace::RunRecorder;

    #[test]
    fn degree_buckets_double() {
        assert_eq!(degree_bucket(0), 0);
        assert_eq!(degree_bucket(1), 1);
        assert_eq!(degree_bucket(2), 1);
        assert_eq!(degree_bucket(3), 2);
        assert_eq!(degree_bucket(7), 3);
        assert_eq!(degree_bucket(8), 3);
    }

    #[test]
    fn dbg_emits_buckets_hottest_first_natural_within() {
        let g = barabasi_albert(200, 2, 3);
        let order = dbg_order(&g).to_order();
        let bucket = |v: u32| degree_bucket(g.degree(v));
        for w in order.windows(2) {
            let (a, b) = (bucket(w[0]), bucket(w[1]));
            assert!(a >= b, "buckets must be non-increasing");
            if a == b {
                assert!(w[0] < w[1], "natural order within a bucket");
            }
        }
    }

    #[test]
    fn hub_sort_dbg_sorts_hubs_within_bucket() {
        let g = barabasi_albert(300, 3, 7);
        let t = hub_threshold(&g);
        let order = hub_sort_dbg_order(&g).to_order();
        let bucket = |v: u32| degree_bucket(g.degree(v));
        for w in order.windows(2) {
            if bucket(w[0]) != bucket(w[1]) {
                assert!(bucket(w[0]) > bucket(w[1]));
                continue;
            }
            let (ha, hb) = (g.degree(w[0]) as f64 > t, g.degree(w[1]) as f64 > t);
            match (ha, hb) {
                (true, true) => assert!(
                    (g.degree(w[0]), w[1]) >= (g.degree(w[1]), w[0]),
                    "hubs degree-sorted within bucket"
                ),
                (false, true) => panic!("hubs must precede non-hubs within a bucket"),
                (false, false) => assert!(w[0] < w[1], "non-hubs keep natural order"),
                (true, false) => {}
            }
        }
    }

    #[test]
    fn hub_cluster_dbg_cold_block_is_natural_tail() {
        let g = barabasi_albert(300, 2, 11);
        let t = hub_threshold(&g);
        let order = hub_cluster_dbg_order(&g).to_order();
        let hubs = order.iter().filter(|&&v| g.degree(v) as f64 > t).count();
        for (i, &v) in order.iter().enumerate() {
            assert_eq!(i < hubs, g.degree(v) as f64 > t, "hub block must be contiguous");
        }
        for w in order[hubs..].windows(2) {
            assert!(w[0] < w[1], "cold block keeps natural order");
        }
        let bucket = |v: u32| degree_bucket(g.degree(v));
        for w in order[..hubs].windows(2) {
            assert!(bucket(w[0]) >= bucket(w[1]), "hub buckets hottest first");
            if bucket(w[0]) == bucket(w[1]) {
                assert!(w[0] < w[1], "natural order within a hub bucket");
            }
        }
    }

    #[test]
    fn family_matches_serial_oracle() {
        for g in [
            barabasi_albert(250, 3, 5),
            star(40),
            cycle(17),
            GraphBuilder::undirected(5).edge(0, 0).edge(1, 2).build().unwrap(),
        ] {
            assert_eq!(dbg_order(&g), dbg_order_serial(&g));
            assert_eq!(hub_sort_dbg_order(&g), hub_sort_dbg_order_serial(&g));
            assert_eq!(hub_cluster_dbg_order(&g), hub_cluster_dbg_order_serial(&g));
        }
    }

    #[test]
    fn regular_graph_is_identity_for_all_variants() {
        // One bucket, no hubs: every variant degenerates to natural order.
        let g = cycle(12);
        assert!(dbg_order(&g).is_identity());
        assert!(hub_sort_dbg_order(&g).is_identity());
        assert!(hub_cluster_dbg_order(&g).is_identity());
    }

    #[test]
    fn empty_and_edgeless() {
        let g0 = GraphBuilder::undirected(0).build().unwrap();
        assert!(dbg_order(&g0).is_empty());
        assert!(hub_sort_dbg_order(&g0).is_empty());
        assert!(hub_cluster_dbg_order(&g0).is_empty());
        let g3 = GraphBuilder::undirected(3).build().unwrap();
        assert!(dbg_order(&g3).is_identity());
        assert!(hub_cluster_dbg_order(&g3).is_identity());
    }

    #[test]
    fn recorded_variants_are_identical_and_count_groups() {
        let g = star(16);
        let mut rec = RunRecorder::new();
        assert_eq!(dbg_order_recorded(&g, &mut rec), dbg_order(&g));
        // Star(16): hub in bucket ⌊log₂ 16⌋ = 4, leaves in bucket 1.
        assert_eq!(rec.counters()["dbg/groups"], 2);
        let mut rec = RunRecorder::new();
        assert_eq!(hub_sort_dbg_order_recorded(&g, &mut rec), hub_sort_dbg_order(&g));
        assert_eq!(rec.counters()["dbg/hubs"], 1, "only the star center is a hub");
    }
}
