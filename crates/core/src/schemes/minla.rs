//! Simulated-annealing refinement for the Minimum Linear Arrangement
//! objective (paper §III-A).
//!
//! The paper surveys MinLA \[33\] as the canonical gap-based formulation and
//! notes that its heuristics (simulated annealing \[26, 34\]) "do not have
//! efficient implementations in practice and are considered expensive". It
//! is therefore *not* part of the 11-scheme evaluation — but it is the
//! natural extension feature: a local-search refiner that takes any
//! scheme's output as the starting arrangement and anneals the total gap
//! downward with incremental swap evaluation.

// SAFETY: every `as u32` in this module narrows a vertex count, degree, or
// index that the Csr construction invariant bounds by `u32::MAX` (graphs
// with more vertices are rejected at build/ingest time), so the casts are
// lossless; the C1 budget in analyze.toml pins the audited site count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reorderlab_graph::{Csr, Permutation};

/// Configuration for the MinLA annealer.
#[derive(Debug, Clone, PartialEq)]
pub struct MinlaConfig {
    /// Number of proposed swaps.
    pub iterations: usize,
    /// Initial temperature, in units of total-gap cost.
    pub initial_temperature: f64,
    /// Multiplicative cooling applied every `iterations / 100` steps.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MinlaConfig {
    /// A budgeted configuration: roughly `per_vertex` proposals per vertex.
    pub fn budget(n: usize, per_vertex: usize, seed: u64) -> Self {
        MinlaConfig {
            iterations: n.saturating_mul(per_vertex).max(1),
            initial_temperature: (n as f64).sqrt().max(1.0),
            cooling: 0.97,
            seed,
        }
    }
}

impl Default for MinlaConfig {
    fn default() -> Self {
        MinlaConfig { iterations: 10_000, initial_temperature: 8.0, cooling: 0.97, seed: 0 }
    }
}

/// Total linear-arrangement cost `Σ_e ξ(e)` of an order (`order[r]` =
/// vertex at rank `r`).
fn total_gap(graph: &Csr, ranks: &[u32]) -> u64 {
    graph.edges().map(|(u, v, _)| ranks[u as usize].abs_diff(ranks[v as usize]) as u64).sum()
}

/// Cost contribution of vertex `v` at rank `ranks[v]`: the sum of gaps of
/// its incident edges (self loops contribute 0).
fn vertex_cost(graph: &Csr, ranks: &[u32], v: u32) -> i64 {
    graph.neighbors(v).iter().map(|&u| ranks[v as usize].abs_diff(ranks[u as usize]) as i64).sum()
}

/// Refines `initial` toward a lower total linear-arrangement gap with
/// simulated annealing over rank swaps. Returns the best permutation seen.
///
/// Each proposal swaps the ranks of two random vertices; the cost delta is
/// evaluated incrementally over the two adjacency lists, so a proposal
/// costs `O(deg(a) + deg(b))`.
///
/// # Examples
///
/// ```
/// use reorderlab_core::schemes::{minla_anneal, random_order, MinlaConfig};
/// use reorderlab_core::measures::gap_measures;
/// use reorderlab_datasets::path;
///
/// let g = path(64);
/// let start = random_order(&g, 3);
/// let refined = minla_anneal(&g, &start, &MinlaConfig::budget(64, 200, 1));
/// assert!(
///     gap_measures(&g, &refined).avg_gap <= gap_measures(&g, &start).avg_gap
/// );
/// ```
pub fn minla_anneal(graph: &Csr, initial: &Permutation, config: &MinlaConfig) -> Permutation {
    let n = graph.num_vertices();
    assert_eq!(initial.len(), n, "initial permutation must cover the graph");
    if n < 2 {
        return initial.clone();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ranks: Vec<u32> = initial.ranks().to_vec();
    let mut cost = total_gap(graph, &ranks) as i64;
    let mut best_ranks = ranks.clone();
    let mut best_cost = cost;
    let mut temperature = config.initial_temperature.max(1e-9);
    let cool_every = (config.iterations / 100).max(1);

    for step in 0..config.iterations {
        let a = rng.gen_range(0..n as u32);
        let mut b = rng.gen_range(0..n as u32);
        while b == a {
            b = rng.gen_range(0..n as u32);
        }
        // Incremental delta: only edges at a and b change. If a and b are
        // adjacent, the shared edge's gap is unchanged by the swap and is
        // counted once from each side both before and after — consistent.
        let before = vertex_cost(graph, &ranks, a) + vertex_cost(graph, &ranks, b);
        ranks.swap(a as usize, b as usize);
        let after = vertex_cost(graph, &ranks, a) + vertex_cost(graph, &ranks, b);
        let delta = after - before;
        let accept =
            delta <= 0 || rng.gen::<f64>() < (-(delta as f64) / temperature.max(1e-12)).exp();
        if accept {
            cost += delta;
            if cost < best_cost {
                best_cost = cost;
                best_ranks.copy_from_slice(&ranks);
            }
        } else {
            ranks.swap(a as usize, b as usize); // undo
        }
        if step % cool_every == cool_every - 1 {
            temperature *= config.cooling;
        }
    }
    Permutation::from_ranks_unchecked(best_ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::gap_measures;
    use crate::schemes::{random_order, rcm_order};
    use reorderlab_datasets::{cycle, grid2d, path};

    #[test]
    fn never_worse_than_start() {
        let g = grid2d(6, 6);
        let start = random_order(&g, 9);
        let refined = minla_anneal(&g, &start, &MinlaConfig::budget(36, 100, 2));
        assert!(
            gap_measures(&g, &refined).avg_gap <= gap_measures(&g, &start).avg_gap + 1e-12,
            "the best-seen state can never be worse than the start"
        );
    }

    #[test]
    fn recovers_path_locality_from_shuffle() {
        let g = path(48);
        let start = random_order(&g, 4);
        let refined = minla_anneal(&g, &start, &MinlaConfig::budget(48, 800, 7));
        let before = gap_measures(&g, &start).avg_gap;
        let after = gap_measures(&g, &refined).avg_gap;
        assert!(
            after < before / 2.0,
            "annealing should strongly improve a shuffled path: {before} -> {after}"
        );
    }

    #[test]
    fn refines_rcm_no_worse() {
        let g = cycle(40);
        let start = rcm_order(&g);
        let refined = minla_anneal(&g, &start, &MinlaConfig::budget(40, 200, 3));
        assert!(gap_measures(&g, &refined).avg_gap <= gap_measures(&g, &start).avg_gap + 1e-12);
    }

    #[test]
    fn internal_cost_matches_recount() {
        // best_cost bookkeeping must agree with a from-scratch recount.
        let g = grid2d(5, 5);
        let start = random_order(&g, 1);
        let refined = minla_anneal(&g, &start, &MinlaConfig::budget(25, 300, 5));
        let recount = total_gap(&g, refined.ranks());
        let measured = gap_measures(&g, &refined).avg_gap * g.num_edges() as f64;
        assert!((recount as f64 - measured).abs() < 1e-6);
    }

    #[test]
    fn deterministic() {
        let g = grid2d(4, 4);
        let start = random_order(&g, 2);
        let cfg = MinlaConfig::budget(16, 100, 11);
        assert_eq!(minla_anneal(&g, &start, &cfg), minla_anneal(&g, &start, &cfg));
    }

    #[test]
    fn tiny_graphs() {
        let g = path(1);
        let p = minla_anneal(&g, &Permutation::identity(1), &MinlaConfig::default());
        assert!(p.is_identity());
    }
}
