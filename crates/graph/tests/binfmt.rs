//! Binary CSR contract tests over the degenerate suite: every pathological
//! graph shape must round-trip byte-exactly, and every single-bit
//! corruption of an encoded stream must be detected — never silently
//! accepted as a different graph.

use reorderlab_datasets::degenerate_suite;
use reorderlab_graph::{
    csr_digest, read_binary_csr, write_binary_csr, BinCsrError, BINARY_CSR_MAGIC,
};

fn encode(graph: &reorderlab_graph::Csr) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_binary_csr(graph, &mut bytes).unwrap();
    bytes
}

#[test]
fn every_degenerate_case_round_trips_exactly() {
    for case in degenerate_suite() {
        let bytes = encode(&case.graph);
        let back =
            read_binary_csr(&mut bytes.as_slice()).unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert_eq!(back, case.graph, "{}", case.name);
        assert_eq!(csr_digest(&back), csr_digest(&case.graph), "{}", case.name);
    }
}

#[test]
fn encoding_is_deterministic_and_digest_keyed() {
    for case in degenerate_suite() {
        assert_eq!(encode(&case.graph), encode(&case.graph), "{}", case.name);
    }
    // Distinct degenerate shapes produce distinct digests (the suite has
    // no duplicate graphs).
    let digests: Vec<u64> = degenerate_suite().iter().map(|c| csr_digest(&c.graph)).collect();
    let mut unique = digests.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), digests.len(), "degenerate digests must be distinct");
}

#[test]
fn every_flipped_bit_is_detected() {
    for case in degenerate_suite() {
        let clean = encode(&case.graph);
        // Flip one bit in every byte position (cheap: degenerate graphs
        // are tiny, so this is a full corruption sweep, not a sample).
        for pos in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x01;
            match read_binary_csr(&mut corrupt.as_slice()) {
                Err(_) => {}
                Ok(decoded) => panic!(
                    "{}: flipping byte {pos}/{} went undetected (decoded |V|={}, |E|={})",
                    case.name,
                    clean.len(),
                    decoded.num_vertices(),
                    decoded.num_edges()
                ),
            }
        }
    }
}

#[test]
fn truncation_at_every_length_is_detected() {
    for case in degenerate_suite() {
        let clean = encode(&case.graph);
        for len in 0..clean.len() {
            let err = read_binary_csr(&mut clean[..len].to_vec().as_slice());
            assert!(err.is_err(), "{}: truncation to {len} bytes went undetected", case.name);
        }
    }
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let Some(case) = degenerate_suite().into_iter().next() else {
        panic!("degenerate suite is empty");
    };
    let mut bytes = encode(&case.graph);
    bytes[..8].copy_from_slice(b"NOTACSR!");
    match read_binary_csr(&mut bytes.as_slice()) {
        Err(BinCsrError::BadMagic { found }) => {
            assert_eq!(&found, b"NOTACSR!");
            assert_ne!(found, BINARY_CSR_MAGIC);
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
}
