//! Compressed CSR (`.csrz`) contract tests, mirroring `tests/binfmt.rs`:
//! every pathological graph shape must round-trip byte-exactly through
//! compress → write → read → decode, and every single-bit corruption of an
//! encoded stream must be detected — never silently accepted as a
//! different graph. A proptest additionally drives the round trip across
//! every synthetic generator family.

use proptest::prelude::*;
use reorderlab_datasets::{
    barabasi_albert, binary_tree, clique_chain, complete, cycle, degenerate_suite, erdos_renyi_gnm,
    grid2d, hub_and_spokes, path, random_geometric, rmat, road_fragment, road_network, star,
    stochastic_block_model, tri_mesh, watts_strogatz, RmatParams,
};
use reorderlab_graph::{
    read_compressed_csr, write_compressed_csr, BinCsrError, CompressedCsr, Csr,
    COMPRESSED_CSR_MAGIC,
};

fn encode(graph: &Csr) -> Vec<u8> {
    let cz = CompressedCsr::from_csr(graph).expect("suite graphs have sorted rows");
    let mut bytes = Vec::new();
    write_compressed_csr(&cz, &mut bytes).unwrap();
    bytes
}

#[test]
fn every_degenerate_case_round_trips_exactly() {
    for case in degenerate_suite() {
        let bytes = encode(&case.graph);
        let back = read_compressed_csr(&mut bytes.as_slice())
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert_eq!(back.decode(), case.graph, "{}", case.name);
        // The in-memory compressed forms agree too, not just the decodes.
        assert_eq!(back, CompressedCsr::from_csr(&case.graph).unwrap(), "{}", case.name);
    }
}

#[test]
fn encoding_is_deterministic() {
    for case in degenerate_suite() {
        assert_eq!(encode(&case.graph), encode(&case.graph), "{}", case.name);
    }
}

#[test]
fn every_flipped_bit_is_detected() {
    for case in degenerate_suite() {
        let clean = encode(&case.graph);
        // Flip one bit in every byte position (cheap: degenerate graphs
        // are tiny, so this is a full corruption sweep, not a sample).
        for pos in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x01;
            match read_compressed_csr(&mut corrupt.as_slice()) {
                Err(_) => {}
                Ok(decoded) => panic!(
                    "{}: flipping byte {pos}/{} went undetected (decoded |V|={}, arcs={})",
                    case.name,
                    clean.len(),
                    decoded.num_vertices(),
                    decoded.num_arcs()
                ),
            }
        }
    }
}

#[test]
fn truncation_at_every_length_is_detected() {
    for case in degenerate_suite() {
        let clean = encode(&case.graph);
        for len in 0..clean.len() {
            let err = read_compressed_csr(&mut clean[..len].to_vec().as_slice());
            assert!(err.is_err(), "{}: truncation to {len} bytes went undetected", case.name);
        }
    }
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let Some(case) = degenerate_suite().into_iter().next() else {
        panic!("degenerate suite is empty");
    };
    let mut bytes = encode(&case.graph);
    bytes[..8].copy_from_slice(b"NOTACSR!");
    match read_compressed_csr(&mut bytes.as_slice()) {
        Err(BinCsrError::BadMagic { found }) => {
            assert_eq!(&found, b"NOTACSR!");
            assert_ne!(found, COMPRESSED_CSR_MAGIC);
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn flat_and_compressed_containers_are_distinguishable() {
    // A `.csrbin` stream fed to the `.csrz` reader (and vice versa) is a
    // typed magic error, not garbage or a panic.
    let Some(case) = degenerate_suite().into_iter().next() else {
        panic!("degenerate suite is empty");
    };
    let mut flat = Vec::new();
    reorderlab_graph::write_binary_csr(&case.graph, &mut flat).unwrap();
    assert!(matches!(read_compressed_csr(&mut flat.as_slice()), Err(BinCsrError::BadMagic { .. })));
    let packed = encode(&case.graph);
    assert!(matches!(
        reorderlab_graph::read_binary_csr(&mut packed.as_slice()),
        Err(BinCsrError::BadMagic { .. })
    ));
}

/// One small instance of each synthetic generator family, keyed by seed.
fn family(idx: usize, seed: u64) -> Csr {
    match idx {
        0 => road_network(6, 7, 0.9, seed),
        1 => road_fragment(5, 6, 0.2, seed),
        2 => tri_mesh(5, 5, 0.3, seed),
        3 => barabasi_albert(40, 2, seed),
        4 => rmat(32, 60, RmatParams::graph500(), seed),
        5 => hub_and_spokes(40, 3, 0.4, 15, seed),
        6 => watts_strogatz(30, 4, 0.2, seed),
        7 => erdos_renyi_gnm(30, 50, seed),
        8 => random_geometric(30, 0.25, seed),
        9 => stochastic_block_model(40, 4, 0.4, 0.02, seed).graph,
        10 => binary_tree(31),
        11 => clique_chain(4, 5),
        12 => grid2d(6, 7),
        13 => path(17),
        14 => cycle(13),
        15 => star(11),
        _ => complete(8),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(34))]

    /// Compress → decompress is bit-identical for every generator family,
    /// and the `.csrz` container round-trips the compressed form exactly.
    #[test]
    fn compression_round_trips_every_family(idx in 0usize..17, seed in any::<u64>()) {
        let g = family(idx, seed);
        let cz = CompressedCsr::from_csr(&g).unwrap();
        prop_assert_eq!(&cz.decode(), &g, "family {} decode", idx);
        let mut bytes = Vec::new();
        write_compressed_csr(&cz, &mut bytes).unwrap();
        let back = read_compressed_csr(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(&back, &cz, "family {} container", idx);
        prop_assert_eq!(&back.decode(), &g, "family {} container decode", idx);
    }
}
