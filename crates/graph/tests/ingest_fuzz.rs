//! Fuzz + adversarial-fixture harness for the text readers.
//!
//! The ingestion contract: `read_matrix_market`, `read_edge_list`, and
//! `read_metis` never panic and never pre-allocate from an untrusted
//! declared size, whatever the input bytes; every rejection is a
//! `GraphError::Parse` carrying a 1-based line number.
//!
//! The checked-in corpus lives in `tests/fixtures/adversarial/` at the
//! repo root (see its README for the defect catalogue).

use proptest::prelude::*;
use reorderlab_graph::{read_edge_list, read_matrix_market, read_metis, GraphError};
use std::fs;
use std::path::{Path, PathBuf};

const ADVERSARIAL_DIR: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures/adversarial");

/// Asserts the reader outcome obeys the ingestion contract: any error is a
/// line-numbered parse error.
fn assert_contract(result: Result<reorderlab_graph::Csr, GraphError>, ctx: &str) {
    if let Err(e) = result {
        match e {
            GraphError::Parse { line, .. } => {
                assert!(line >= 1, "{ctx}: parse error with line 0: {e}")
            }
            other => panic!("{ctx}: non-parse error {other:?}"),
        }
    }
}

fn run_all_readers(bytes: &[u8], ctx: &str) {
    assert_contract(read_matrix_market(bytes), &format!("{ctx} as mtx"));
    assert_contract(read_edge_list(bytes), &format!("{ctx} as edge list"));
    assert_contract(read_metis(bytes), &format!("{ctx} as metis"));
}

// ---------------------------------------------------------------------------
// Checked-in adversarial corpus: every file must fail with a line-numbered
// parse error under its matching reader.
// ---------------------------------------------------------------------------

fn corpus_files(ext: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(ADVERSARIAL_DIR)
        .expect("adversarial fixture directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == ext))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .{ext} fixtures found in {ADVERSARIAL_DIR}");
    files
}

fn parse_line_of(result: Result<reorderlab_graph::Csr, GraphError>, path: &Path) -> usize {
    match result {
        Ok(_) => panic!("{} parsed successfully; adversarial fixtures must fail", path.display()),
        Err(GraphError::Parse { line, message }) => {
            assert!(line >= 1, "{}: line 0 in {message:?}", path.display());
            line
        }
        Err(other) => panic!("{}: non-parse error {other:?}", path.display()),
    }
}

#[test]
fn every_adversarial_mtx_fails_with_a_line_number() {
    for path in corpus_files("mtx") {
        let bytes = fs::read(&path).expect("fixture readable");
        let line = parse_line_of(read_matrix_market(&bytes[..]), &path);
        // Spot-check the exact line for the defects with a known location.
        let expected = match path.file_name().and_then(|n| n.to_str()) {
            Some("bad_banner.mtx") | Some("unsupported_field.mtx") | Some("empty.mtx") => Some(1),
            Some("truncated_entries.mtx")
            | Some("huge_nnz.mtx")
            | Some("overflow_dimension.mtx")
            | Some("nonsquare.mtx") => Some(2),
            Some("truncated_header.mtx") | Some("overflow_index.mtx") | Some("nan_value.mtx") => {
                Some(3)
            }
            _ => None,
        };
        if let Some(want) = expected {
            assert_eq!(line, want, "{}: wrong line", path.display());
        }
    }
}

#[test]
fn every_adversarial_edge_list_fails_with_a_line_number() {
    for path in corpus_files("el") {
        let bytes = fs::read(&path).expect("fixture readable");
        let line = parse_line_of(read_edge_list(&bytes[..]), &path);
        let expected = match path.file_name().and_then(|n| n.to_str()) {
            Some("negative_weight.el") => Some(1),
            Some("nan_weight.el") | Some("overflow_id.el") => Some(2),
            Some("missing_target.el") => Some(3),
            _ => None,
        };
        if let Some(want) = expected {
            assert_eq!(line, want, "{}: wrong line", path.display());
        }
    }
}

#[test]
fn every_adversarial_metis_fails_with_a_line_number() {
    for path in corpus_files("graph") {
        let bytes = fs::read(&path).expect("fixture readable");
        parse_line_of(read_metis(&bytes[..]), &path);
    }
}

// ---------------------------------------------------------------------------
// Property fuzz: byte soup and structured near-valid inputs.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through every reader: no panics, no line-0 errors.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        run_all_readers(&bytes, "byte soup");
    }

    /// ASCII-heavy soup (digits, whitespace, separators, signs) hits the
    /// tokenizers much harder than uniform bytes.
    #[test]
    fn ascii_soup_never_panics(picks in proptest::collection::vec(0usize..16, 0..256)) {
        const ALPHABET: &[u8; 16] = b"0123456789 .\n%-\t";
        let bytes: Vec<u8> = picks.iter().map(|&i| ALPHABET[i]).collect();
        run_all_readers(&bytes, "ascii soup");
    }

    /// Structured Matrix Market inputs with adversarial headers: declared
    /// sizes never cause over-allocation, and any mismatch is a
    /// line-numbered error.
    #[test]
    fn mtx_with_forged_headers_never_panics(
        (rows, nnz, entries, weighted) in (
            0usize..6,
            0u64..=u64::MAX,
            proptest::collection::vec((0u32..8, 0u32..8, -2.0f64..2.0), 0..8),
            any::<bool>(),
        )
    ) {
        let field = if weighted { "real" } else { "pattern" };
        let mut text = format!("%%MatrixMarket matrix coordinate {field} symmetric\n");
        text.push_str(&format!("{rows} {rows} {nnz}\n"));
        for (r, c, w) in &entries {
            if weighted {
                text.push_str(&format!("{r} {c} {w}\n"));
            } else {
                text.push_str(&format!("{r} {c}\n"));
            }
        }
        assert_contract(read_matrix_market(text.as_bytes()), "forged mtx");
    }

    /// Structured edge lists with extreme tokens (ids near u32::MAX,
    /// non-finite weight spellings) never panic.
    #[test]
    fn edge_list_with_extreme_tokens_never_panics(
        (lines, tail) in (
            proptest::collection::vec((0u64..=u64::MAX, 0u32..64, 0usize..6), 0..12),
            0usize..4,
        )
    ) {
        const WEIRD: [&str; 6] = ["NaN", "inf", "-inf", "1e308", "-0.0", "0.5"];
        let mut text = String::new();
        for (u, v, pick) in &lines {
            text.push_str(&format!("{u} {v} {}\n", WEIRD[*pick]));
        }
        // Optionally truncate the final newline / token to simulate EOF
        // mid-record.
        for _ in 0..tail {
            text.pop();
        }
        assert_contract(read_edge_list(text.as_bytes()), "extreme edge list");
    }

    /// Structured METIS inputs with forged headers (n/m disagreeing with
    /// the body) never panic or over-allocate.
    #[test]
    fn metis_with_forged_headers_never_panics(
        (n, m, rows) in (
            0u32..6,
            0u32..=u32::MAX,
            proptest::collection::vec(proptest::collection::vec(0u32..9, 0..4), 0..8),
        )
    ) {
        let mut text = format!("{n} {m}\n");
        for row in &rows {
            let toks: Vec<String> = row.iter().map(|t| t.to_string()).collect();
            text.push_str(&toks.join(" "));
            text.push('\n');
        }
        assert_contract(read_metis(text.as_bytes()), "forged metis");
    }
}
