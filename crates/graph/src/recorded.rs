//! Instrumented entry points for the traversal and coarsening kernels.
//!
//! Each wrapper runs the exact same kernel as its plain counterpart — the
//! recorder only *observes* (span timing plus result-derived counters), so
//! outputs are bit-identical with any [`Recorder`] at any thread count.
//! Instrumentation is per *call*, never per vertex or edge, keeping the
//! disabled ([`NoopRecorder`](reorderlab_trace::NoopRecorder)) path at a
//! few virtual calls.

use crate::coarsen::{contract, Contraction};
use crate::csr::Csr;
use crate::error::GraphError;
use crate::traversal::{bfs_levels, pseudo_peripheral, LevelStructure};
use reorderlab_trace::Recorder;

/// [`bfs_levels`] with span timing and level/reach counters.
pub fn bfs_levels_recorded(graph: &Csr, source: u32, rec: &mut dyn Recorder) -> LevelStructure {
    rec.span_enter("bfs_levels");
    let ls = bfs_levels(graph, source);
    rec.span_exit("bfs_levels");
    rec.counter("bfs/runs", 1);
    rec.counter("bfs/levels", ls.eccentricity() as u64 + 1);
    ls
}

/// [`pseudo_peripheral`] with span timing and a run counter.
pub fn pseudo_peripheral_recorded(graph: &Csr, start: u32, rec: &mut dyn Recorder) -> u32 {
    rec.span_enter("pseudo_peripheral");
    let v = pseudo_peripheral(graph, start);
    rec.span_exit("pseudo_peripheral");
    rec.counter("pseudo_peripheral/runs", 1);
    v
}

/// [`contract`] with span timing and coarse-size counters.
pub fn contract_recorded(
    graph: &Csr,
    assignment: &[u32],
    num_groups: usize,
    rec: &mut dyn Recorder,
) -> Result<Contraction, GraphError> {
    rec.span_enter("contract");
    let out = contract(graph, assignment, num_groups);
    rec.span_exit("contract");
    if let Ok(c) = &out {
        rec.counter("contract/runs", 1);
        rec.counter("contract/coarse_vertices", c.coarse.num_vertices() as u64);
        rec.counter("contract/coarse_edges", c.coarse.num_edges() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::coarsen::contract_serial;
    use crate::traversal::bfs_levels_serial;
    use reorderlab_trace::{NoopRecorder, RunRecorder};

    fn sample() -> Csr {
        GraphBuilder::undirected(6)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
            .build()
            .unwrap()
    }

    #[test]
    fn recorded_bfs_is_identical_and_counts_levels() {
        let g = sample();
        let mut rec = RunRecorder::new();
        let live = bfs_levels_recorded(&g, 0, &mut rec);
        let noop = bfs_levels_recorded(&g, 0, &mut NoopRecorder);
        assert_eq!(live.levels, bfs_levels_serial(&g, 0).levels);
        assert_eq!(live.levels, noop.levels);
        assert_eq!(rec.counters()["bfs/levels"], 4, "6-cycle eccentricity 3 -> 4 levels");
        assert_eq!(rec.spans()["bfs_levels"].count, 1);
    }

    #[test]
    fn recorded_pseudo_peripheral_is_identical() {
        let g = sample();
        let mut rec = RunRecorder::new();
        assert_eq!(pseudo_peripheral_recorded(&g, 2, &mut rec), pseudo_peripheral(&g, 2));
        assert_eq!(rec.counters()["pseudo_peripheral/runs"], 1);
    }

    #[test]
    fn recorded_contract_is_identical_and_reports_sizes() {
        let g = sample();
        let assignment = vec![0, 0, 0, 1, 1, 1];
        let mut rec = RunRecorder::new();
        let live = contract_recorded(&g, &assignment, 2, &mut rec).unwrap();
        let oracle = contract_serial(&g, &assignment, 2).unwrap();
        assert_eq!(live.coarse.num_vertices(), oracle.coarse.num_vertices());
        assert_eq!(live.coarse.num_edges(), oracle.coarse.num_edges());
        assert_eq!(rec.counters()["contract/coarse_vertices"], 2);
    }

    #[test]
    fn contract_error_records_nothing() {
        let g = sample();
        let mut rec = RunRecorder::new();
        let bad = vec![0u32; 3]; // wrong length
        assert!(contract_recorded(&g, &bad, 1, &mut rec).is_err());
        assert!(rec.counters().get("contract/runs").is_none());
    }
}
